#!/usr/bin/env bash
# Pre-PR gate: formatting, lints with warnings denied, release build,
# and the tier-1 test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (tier 1)"
cargo test --workspace -q

echo "==> parity smoke (event core vs legacy oracle, all flow patterns)"
cargo test --release -q -p tsc-sim --test parity
cargo test --release -q -p tsc-sim --test golden

echo "==> serve_grid --smoke (serving runtime end-to-end)"
cargo run --release -q -p tsc-bench --bin serve_grid -- --smoke

echo "==> chaos --smoke (mixed faults + resilient serving end-to-end)"
cargo run --release -q -p tsc-bench --bin chaos -- --smoke

echo "==> fleet --smoke (supervised fleet: no abort, replay digest, recovery cycle)"
cargo run --release -q -p tsc-bench --bin fleet -- --smoke

echo "==> loadgen --smoke (admission: no abort, overload replay digest, zero reload-degraded steps, pinned p99)"
cargo run --release -q -p tsc-bench --bin loadgen -- --smoke

echo "==> obs_report --smoke (instrumented training + JSONL stream end-to-end)"
cargo run --release -q -p tsc-bench --bin obs_report -- --smoke

echo "==> forensics --smoke (flight recorder: dump incidents under chaos, replay bit-for-bit)"
cargo run --release -q -p tsc-bench --bin forensics -- --smoke

echo "==> obs_overhead --smoke (observability overhead bars incl. flight-recorder gate)"
cargo run --release -q -p tsc-bench --bin obs_overhead -- --smoke

echo "==> cityscale --smoke (~200-intersection compiled city: conservation + replay identity)"
cargo run --release -q -p tsc-bench --bin cityscale -- --smoke

echo "ci.sh: all gates passed"
