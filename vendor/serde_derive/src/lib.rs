//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(serde::Serialize,
//! serde::Deserialize)]` but never serializes anything (there is no
//! `serde_json` in the tree), so these derives expand to nothing. They
//! exist purely so the annotations keep compiling offline; swap the
//! vendored `serde` pair for the real crates to restore actual
//! serialization support.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
