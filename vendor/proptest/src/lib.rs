//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), range and collection strategies,
//! `prop_map`, and the `prop_assert*`/`prop_assume!` macros. Cases are
//! generated from deterministic per-case RNG streams (no persistence,
//! no shrinking): a failing case prints its index and arguments via
//! `Debug`, and the whole run is reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep CI fast on small hardware.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// A value generator. Unlike upstream there is no shrinking: a
/// strategy is just a deterministic function of an RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Tuples of strategies generate tuples of values (drawn left to
/// right from one RNG stream), matching upstream's tuple strategies.
macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// One boxed generator arm of a [`Union`] (built via [`arm`]).
pub type BoxedGen<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Boxes a strategy into a [`Union`] arm with the given weight.
pub fn arm<T, S>(weight: u32, strat: S) -> (u32, BoxedGen<T>)
where
    S: Strategy<Value = T> + 'static,
{
    (weight, Box::new(move |rng| strat.generate(rng)))
}

/// The weighted-choice strategy behind [`prop_oneof!`]: each draw
/// picks one arm with probability proportional to its weight, then
/// draws from it.
pub struct Union<T> {
    arms: Vec<(u32, BoxedGen<T>)>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// A union over weighted arms. Panics if `arms` is empty or all
    /// weights are zero.
    pub fn new(arms: Vec<(u32, BoxedGen<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, gen_fn) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return gen_fn(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed above")
    }
}

/// Chooses between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`. All arms
/// must generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::arm($weight as u32, $strat) ),+ ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::arm(1u32, $strat) ),+ ])
    };
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

/// The deterministic RNG stream for case number `case` of a test.
pub fn case_rng(case: u64) -> StdRng {
    // Salted so strategies don't share streams with user seeds.
    StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CA5E)
}

/// The common imports of a proptest file.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                let mut __rng = $crate::case_rng(case);
                case += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match result {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(16).max(256),
                            "too many prop_assume! rejections ({rejected})"
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}:\n{}",
                            stringify!($name),
                            case - 1,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn map_applies(v in collection::vec(0usize..5, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mut_bindings_work(mut v in collection::vec(0i32..10, 2..4)) {
            v.push(99);
            prop_assert!(v.contains(&99));
        }

        #[test]
        fn tuples_draw_componentwise((x, y) in (0u64..10, 10u64..20)) {
            prop_assert!(x < 10);
            prop_assert!((10..20).contains(&y));
        }

        #[test]
        fn oneof_honors_arms(v in prop_oneof![1 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn weighted_oneof_skews_toward_heavy_arms() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..200)
            .filter(|&c| s.generate(&mut crate::case_rng(c)))
            .count();
        assert!(hits > 120, "heavy arm should dominate: {hits}/200");
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0.0f64..1.0;
        let a: Vec<f64> = (0..5)
            .map(|c| s.generate(&mut crate::case_rng(c)))
            .collect();
        let b: Vec<f64> = (0..5)
            .map(|c| s.generate(&mut crate::case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }
}
