//! Collection strategies (`proptest::collection` subset).

use rand::{rngs::StdRng, Rng};

use crate::Strategy;

/// Admissible length specs for [`vec`]: a fixed `usize` or a
/// `Range<usize>`.
pub trait IntoSizeRange {
    /// Lower (inclusive) and upper (exclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty size range");
    VecStrategy { element, min, max }
}
