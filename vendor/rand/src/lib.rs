//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the exact API surface it uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not bit-compatible with
//! upstream `StdRng` (ChaCha12), but a high-quality deterministic
//! stream, which is all this repository relies on.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution: uniform over the
/// full integer range, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the receiver of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo with a 128-bit draw: bias below 2^-64, fine for
                // simulation workloads.
                let draw =
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw =
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// One value uniform over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.05 && max > 0.95, "covers the unit interval");
    }

    #[test]
    fn gen_range_int_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_negative_float() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn gen_range_negative_int() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = 0i32;
        let mut hi = 0i32;
        for _ in 0..200 {
            let v = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo <= -8 && hi >= 8);
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }
}
