//! Distribution re-exports for API compatibility with `rand 0.8`
//! (`rand::distributions::Standard` etc.). The workspace samples via
//! [`crate::Rng::gen`]/[`crate::Rng::gen_range`]; this module only
//! keeps the canonical paths alive.

pub use crate::{SampleRange, Standard};
