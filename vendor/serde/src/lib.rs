//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the macro
//! namespace (no-op derives, see the vendored `serde_derive`) and the
//! trait namespace, so `#[derive(serde::Serialize)]` annotations and
//! `T: serde::Serialize` bounds both compile. No actual serialization
//! is implemented — nothing in this workspace serializes (there is no
//! `serde_json`); replace the vendored pair with the real crates if
//! that changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
