//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — as a plain timing loop: short warm-up, then
//! timed batches, reporting mean ns/iteration to stdout. No statistics,
//! plots, or baselines; swap in the real crate for those.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly, timing it, until the measurement target is
    /// reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let start = Instant::now();
        let mut n: u64 = 0;
        loop {
            black_box(f());
            n += 1;
            if start.elapsed() >= self.target {
                break;
            }
        }
        self.elapsed += start.elapsed();
        self.iters_done += n;
    }

    fn report(&self, name: &str) {
        if self.iters_done == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters_done);
        println!(
            "{name}: {per_iter} ns/iter ({} iters in {:.2?})",
            self.iters_done, self.elapsed
        );
    }
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep runs short: this harness is for relative smoke
            // numbers, not publication statistics.
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: self.target,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group; `sample_size` is accepted for API compatibility and
/// ignored.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 1, "the closure ran repeatedly");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            target: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
