//! Structured run logging: the trainer's JSONL event stream.
//!
//! A [`RunLogger`] wraps a [`tsc_obs::EventSink`] and a
//! [`tsc_obs::MetricsRegistry`]. Attached to a learner (see
//! [`PairUpLight::attach_obs`](crate::PairUpLight::attach_obs)), it
//! writes one **manifest** record (config fingerprint, seed,
//! git-describe-style build info, model shape), then streams:
//!
//! * `update` — per PPO round: policy/value loss, approximate KL,
//!   clip fraction, entropy, max gradient norm, and the round's mean
//!   episode reward / queue / waiting time / travel time;
//! * `divergence` / `rollback` — the sentinel tripped (NaN/Inf
//!   gradient, loss explosion, poisoned parameter) at a given round
//!   and the round was rolled back;
//! * `worker_panic_retry` — a panicked rollout worker was retried;
//! * `checkpoint` — a periodic checkpoint was written;
//! * `summary` — final counters and histograms on
//!   [`finish`](RunLogger::finish).
//!
//! Logging is strictly out-of-band: it reads training state and never
//! writes it, so an instrumented run is bit-identical to an
//! uninstrumented one. It is also best-effort: the first I/O failure
//! disables the logger with a warning on stderr instead of killing a
//! training run hours in — observability must never be the fault that
//! fault tolerance has to recover from.
//!
//! `u64` identifiers (fingerprints, seeds) are emitted as strings:
//! JSON numbers are doubles and would silently round anything above
//! 2⁵³.

use std::io;
use std::path::Path;

use tsc_obs::{build_info, EventSink, Json, MetricsRegistry};

/// Everything one PPO update round reports into the `update` record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRecord {
    /// Round index (the learner's lifetime `rounds_trained` counter at
    /// the time of the update).
    pub round: u64,
    /// First episode index of the round.
    pub episode_start: usize,
    /// Episodes merged into the round (`num_envs`).
    pub episodes: usize,
    /// Decision steps per merged episode.
    pub steps: usize,
    /// Mean clipped-surrogate policy loss over minibatch updates.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Max pre-clip global gradient norm.
    pub grad_norm: f32,
    /// Mean approximate KL divergence `E[logπ_old − logπ_new]`.
    pub approx_kl: f32,
    /// Fraction of samples whose importance ratio was clipped.
    pub clip_fraction: f32,
    /// Exploration ε in effect.
    pub epsilon: f32,
    /// Mean absolute regularized message value.
    pub mean_message: f32,
    /// Mean episode total reward over the round's episodes.
    pub mean_reward: f64,
    /// Mean halted-vehicle queue per intersection per step.
    pub mean_queue: f64,
    /// Mean of the episodes' average waiting times (s).
    pub mean_wait_s: f64,
    /// Mean of the episodes' average travel times (s).
    pub mean_travel_s: f64,
    /// Wall-clock nanoseconds the PPO update took.
    pub update_wall_ns: u64,
}

/// JSONL run logger with best-effort delivery (see module docs).
#[derive(Debug)]
pub struct RunLogger {
    sink: EventSink,
    metrics: MetricsRegistry,
    failed: bool,
}

impl RunLogger {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (only creation is fallible at
    /// the API level; later emission failures disable the logger).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(RunLogger {
            sink: EventSink::create(path)?,
            metrics: MetricsRegistry::new(),
            failed: false,
        })
    }

    /// Wraps an existing sink (e.g. one opened in append mode, or one
    /// with an injected write fault for tests).
    pub fn from_sink(sink: EventSink) -> Self {
        RunLogger {
            sink,
            metrics: MetricsRegistry::new(),
            failed: false,
        }
    }

    /// Counters and histograms accumulated so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether an emission failed and the logger went quiescent.
    pub fn failed(&self) -> bool {
        self.failed
    }

    fn emit(&mut self, record: &Json) {
        if self.failed {
            return;
        }
        if let Err(e) = self.sink.emit(record) {
            self.failed = true;
            eprintln!(
                "tsc-obs: run logging disabled after write failure on {}: {e}",
                self.sink.path().display()
            );
        }
    }

    /// Writes the manifest record. Called once by
    /// [`PairUpLight::attach_obs`](crate::PairUpLight::attach_obs).
    pub fn log_manifest(
        &mut self,
        fingerprint: u64,
        seed: u64,
        extra: impl IntoIterator<Item = (String, Json)>,
    ) {
        let mut fields = vec![
            ("type".to_string(), Json::str("manifest")),
            ("schema".to_string(), Json::str("pairuplight-obs v1")),
            (
                "fingerprint".to_string(),
                Json::str(format!("{fingerprint:016x}")),
            ),
            ("seed".to_string(), Json::str(seed.to_string())),
            ("build".to_string(), build_info().to_json()),
        ];
        fields.extend(extra);
        self.emit(&Json::Obj(fields));
    }

    /// Writes a `train_start` record (base seed, target episodes, and
    /// the lifetime counters training resumes from).
    pub fn log_train_start(&mut self, base_seed: u64, episodes: usize, resume_round: u64) {
        self.emit(&Json::obj([
            ("type", Json::str("train_start")),
            ("base_seed", Json::str(base_seed.to_string())),
            ("episodes", Json::num(episodes as f64)),
            ("resume_round", Json::num(resume_round as f64)),
        ]));
    }

    /// Writes one `update` record and rolls its statistics into the
    /// registry.
    pub fn log_update(&mut self, u: &UpdateRecord) {
        self.metrics.inc("train.updates");
        self.metrics.add("train.episodes", u.episodes as u64);
        self.metrics
            .observe_ns("train.update_wall", u.update_wall_ns);
        self.metrics.set_gauge("train.mean_reward", u.mean_reward);
        self.metrics.set_gauge("train.mean_wait_s", u.mean_wait_s);
        self.emit(&Json::obj([
            ("type", Json::str("update")),
            ("round", Json::num(u.round as f64)),
            ("episode_start", Json::num(u.episode_start as f64)),
            ("episodes", Json::num(u.episodes as f64)),
            ("steps", Json::num(u.steps as f64)),
            ("policy_loss", Json::num(f64::from(u.policy_loss))),
            ("value_loss", Json::num(f64::from(u.value_loss))),
            ("entropy", Json::num(f64::from(u.entropy))),
            ("grad_norm", Json::num(f64::from(u.grad_norm))),
            ("approx_kl", Json::num(f64::from(u.approx_kl))),
            ("clip_fraction", Json::num(f64::from(u.clip_fraction))),
            ("epsilon", Json::num(f64::from(u.epsilon))),
            ("mean_message", Json::num(f64::from(u.mean_message))),
            ("mean_reward", Json::num(u.mean_reward)),
            ("mean_queue", Json::num(u.mean_queue)),
            ("mean_wait_s", Json::num(u.mean_wait_s)),
            ("mean_travel_s", Json::num(u.mean_travel_s)),
            (
                "update_wall_us",
                Json::num(u.update_wall_ns as f64 / 1_000.0),
            ),
        ]));
    }

    /// Writes a `divergence` record: the sentinel rejected round
    /// `round` on retry `attempt` for `reason` (NaN/Inf statistics,
    /// loss explosion, or a non-finite parameter).
    pub fn log_divergence(&mut self, round: u64, attempt: u32, reason: &str) {
        self.metrics.inc("train.divergences");
        self.emit(&Json::obj([
            ("type", Json::str("divergence")),
            ("round", Json::num(round as f64)),
            ("attempt", Json::num(f64::from(attempt))),
            ("reason", Json::str(reason)),
        ]));
    }

    /// Writes a `rollback` record: round `round`'s update was undone
    /// and will be retried (or abandoned if the budget is exhausted).
    pub fn log_rollback(&mut self, round: u64, attempt: u32, will_retry: bool) {
        self.metrics.inc("train.rollbacks");
        self.emit(&Json::obj([
            ("type", Json::str("rollback")),
            ("round", Json::num(round as f64)),
            ("attempt", Json::num(f64::from(attempt))),
            ("will_retry", Json::Bool(will_retry)),
        ]));
    }

    /// Writes a `worker_panic_retry` record: env replica `env` of
    /// round `round` panicked and is being retried (`retries` so far,
    /// this one included).
    pub fn log_worker_panic_retry(&mut self, round: u64, env: usize, retries: u32) {
        self.metrics.inc("train.worker_panic_retries");
        self.emit(&Json::obj([
            ("type", Json::str("worker_panic_retry")),
            ("round", Json::num(round as f64)),
            ("env", Json::num(env as f64)),
            ("retries", Json::num(f64::from(retries))),
        ]));
    }

    /// Writes a `checkpoint` record for a successfully written
    /// periodic checkpoint.
    pub fn log_checkpoint(&mut self, round: u64, path: &Path) {
        self.metrics.inc("train.checkpoints");
        self.emit(&Json::obj([
            ("type", Json::str("checkpoint")),
            ("round", Json::num(round as f64)),
            ("path", Json::str(path.display().to_string())),
        ]));
    }

    /// Writes the `summary` record (final counters, gauges, histogram
    /// percentiles) and returns the registry.
    pub fn finish(mut self) -> MetricsRegistry {
        let snapshot = self.metrics.to_json();
        self.emit(&Json::obj([
            ("type", Json::str("summary")),
            ("metrics", snapshot),
        ]));
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_obs::{read_jsonl, WriteFault};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pairuplight-runlog-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn update(round: u64) -> UpdateRecord {
        UpdateRecord {
            round,
            episode_start: round as usize,
            episodes: 1,
            steps: 12,
            policy_loss: -0.01,
            value_loss: 0.4,
            entropy: 1.2,
            grad_norm: 2.0,
            approx_kl: 0.003,
            clip_fraction: 0.1,
            epsilon: 0.15,
            mean_message: 0.5,
            mean_reward: -120.0,
            mean_queue: 3.5,
            mean_wait_s: 14.0,
            mean_travel_s: 190.0,
            update_wall_ns: 5_000_000,
        }
    }

    #[test]
    fn stream_contains_manifest_updates_and_summary() {
        let path = tmp("stream.jsonl");
        let mut log = RunLogger::create(&path).unwrap();
        log.log_manifest(0xABCD, 7, [("agents".to_string(), Json::num(4u32))]);
        log.log_train_start(1, 3, 0);
        for r in 0..3 {
            log.log_update(&update(r));
        }
        log.log_divergence(1, 0, "policy loss is non-finite (NaN)");
        log.log_rollback(1, 0, true);
        log.log_worker_panic_retry(2, 0, 1);
        let metrics = log.finish();
        assert_eq!(metrics.counter("train.updates"), 3);
        assert_eq!(metrics.counter("train.divergences"), 1);
        assert_eq!(metrics.counter("train.worker_panic_retries"), 1);

        let (records, warnings) = read_jsonl(&path).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(records[0].get_str("type"), Some("manifest"));
        assert_eq!(records[0].get_str("fingerprint"), Some("000000000000abcd"));
        assert_eq!(records[0].get_num("agents"), Some(4.0));
        let updates = records
            .iter()
            .filter(|r| r.get_str("type") == Some("update"))
            .count();
        assert_eq!(updates, 3);
        assert_eq!(
            records.last().unwrap().get_str("type"),
            Some("summary"),
            "stream ends with the summary"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_failure_disables_logging_without_panicking() {
        let path = tmp("fail.jsonl");
        let mut sink = EventSink::create(&path).unwrap();
        sink.inject_write_fault(WriteFault {
            after_records: 1,
            keep_bytes: 5,
        });
        let mut log = RunLogger::from_sink(sink);
        log.log_manifest(1, 2, []);
        assert!(!log.failed());
        log.log_update(&update(0)); // torn write → logger quiesces
        assert!(log.failed());
        log.log_update(&update(1)); // no-op, must not panic
        let (records, warnings) = read_jsonl(&path).unwrap();
        assert_eq!(records.len(), 1, "manifest survived");
        assert_eq!(warnings.len(), 1, "torn update skipped with warning");
        std::fs::remove_file(&path).ok();
    }
}
