//! The CTDE training loop of Algorithm 1 and the decentralized
//! execution controller.
//!
//! Centralized training: all agents' experience is gathered into one
//! rollout buffer; with parameter sharing (homogeneous grids) one
//! actor/critic pair is updated from everyone's data, otherwise
//! (Monaco) each agent owns its networks. Decentralized execution: the
//! trained [`PairUpLightController`] runs each intersection from local
//! observations plus the single incoming message.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tsc_nn::{Adam, Graph, LstmState, Params, Tensor};
use tsc_rl::buffer::{RolloutBuffer, Trajectory, Transition};
use tsc_rl::distribution::{Categorical, LinearSchedule};
use tsc_rl::ppo::{clipped_policy_loss, entropy_bonus, value_loss};
use tsc_rl::sentinel::{check_finite_params, check_update, UpdateStats};
use tsc_sim::rollout::{derive_rollout_seed, RolloutSet};
use tsc_sim::{Controller, EpisodeStats, IntersectionObs, SimError, TscEnv};

use crate::checkpoint::{Checkpoint, CheckpointManager};
use crate::config::{CriticMode, PairUpLightConfig};
use crate::error::TrainError;
use crate::fault::FaultPlan;
use crate::message::regularize_into;
use crate::model::{ActorBuffers, ActorNet, CriticBuffers, CriticNet};
use crate::obs::{ObsEncoder, ObsNorm};
use crate::pairing::PairingTable;
use crate::runlog::{RunLogger, UpdateRecord};

/// One actor/critic pair with its optimizer state.
#[derive(Debug)]
struct NetBundle {
    params: Params,
    actor: ActorNet,
    critic: CriticNet,
    opt: Adam,
}

impl NetBundle {
    fn new(cfg: &PairUpLightConfig, obs_dim: usize, critic_dim: usize, rng: &mut StdRng) -> Self {
        let mut params = Params::new();
        let actor = ActorNet::new(
            &mut params,
            obs_dim,
            cfg.bandwidth,
            cfg.hidden,
            cfg.lstm_hidden,
            cfg.max_phases,
            rng,
        );
        let critic = CriticNet::new(&mut params, critic_dim, cfg.hidden, cfg.lstm_hidden, rng);
        let opt = Adam::new(&params, cfg.ppo.lr);
        NetBundle {
            params,
            actor,
            critic,
            opt,
        }
    }
}

/// An in-memory restore point: cloned weights and optimizer state plus
/// the counters that drive every derived seed. Taken before each
/// checkpointed round so the divergence sentinel can roll the round
/// back without touching the filesystem.
struct TrainerState {
    bundles: Vec<(Params, Adam)>,
    episodes_trained: usize,
    rounds_trained: u64,
}

/// Losses and diagnostics of one minibatch step, or their aggregate
/// over a PPO round (means, except `grad_norm` which takes the max).
#[derive(Debug, Clone, Copy, Default)]
struct RoundLosses {
    policy_loss: f32,
    value_loss: f32,
    entropy: f32,
    grad_norm: f32,
    approx_kl: f32,
    clip_fraction: f32,
}

/// Everything one environment replica produces in one collection
/// round: the on-policy trajectory (with bootstrap values) plus the
/// episode's diagnostics. Produced by [`PairUpLight::collect_rollout`]
/// against an immutable policy snapshot; consumed (in env-index order)
/// by the PPO update.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Per-agent transitions and bootstrap values.
    pub trajectory: Trajectory,
    /// Environment statistics of the collected episode.
    pub stats: EpisodeStats,
    /// Mean absolute regularized message value sent (0 when
    /// communication is disabled).
    pub mean_message: f32,
    /// Mean halted-vehicle queue per intersection per decision step
    /// (Eq. 6's queue term, averaged over the episode) — the traffic
    /// health signal for the observability stream.
    pub mean_queue: f64,
}

/// Per-episode training diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainEpisode {
    /// Episode index (0-based).
    pub episode: usize,
    /// Environment statistics of the episode.
    pub stats: EpisodeStats,
    /// Exploration ε used.
    pub epsilon: f32,
    /// Mean absolute regularized message value sent this episode
    /// (0 when communication is disabled).
    pub mean_message: f32,
    /// Mean clipped-surrogate policy loss over the episode's updates.
    pub policy_loss: f32,
    /// Mean value loss (in critic-scale units) over the updates.
    pub value_loss: f32,
    /// Mean policy entropy over the updates.
    pub entropy: f32,
    /// Maximum pre-clip global gradient norm over the episode's
    /// minibatch updates — the divergence sentinel's early-warning
    /// statistic.
    pub grad_norm: f32,
    /// Mean approximate KL divergence `E[logπ_old − logπ_new]` over
    /// the round's minibatch updates (PPO's trust-region health
    /// signal; large values mean the policy moved too far).
    pub approx_kl: f32,
    /// Fraction of samples whose importance ratio hit the PPO clip
    /// range over the round's minibatch updates.
    pub clip_fraction: f32,
}

/// The PairUpLight learner (paper §V, Algorithm 1).
///
/// All randomness is derived, never free-running: exploration streams
/// come from the rollout seed, and the minibatch-shuffle RNG is a pure
/// function of `(cfg.seed, rounds_trained)`. That makes the counters
/// below the *complete* RNG state, which is what lets a checkpoint
/// (weights + Adam state + counters) resume training bit-for-bit
/// identically to an uninterrupted run without serializing any RNG.
#[derive(Debug)]
pub struct PairUpLight {
    cfg: PairUpLightConfig,
    encoder: ObsEncoder,
    pairing: PairingTable,
    bundles: Vec<NetBundle>,
    num_agents: usize,
    phases_per_agent: Vec<usize>,
    episodes_trained: usize,
    /// PPO update rounds completed over the model's lifetime (one round
    /// merges `num_envs` episodes).
    rounds_trained: u64,
    /// Injected faults for exercising the recovery machinery (empty in
    /// production). Behind a mutex so concurrent rollout workers can
    /// consume entries.
    faults: Mutex<FaultPlan>,
    /// Optional JSONL run logger (see [`RunLogger`]). Behind a mutex
    /// because retry events are emitted from `&self` collection paths;
    /// strictly out-of-band — it never feeds back into training state.
    logger: Mutex<Option<RunLogger>>,
}

impl PairUpLight {
    /// Creates a learner for the environment's scenario.
    pub fn new(env: &TscEnv, cfg: PairUpLightConfig) -> Self {
        let scenario = env.scenario();
        let agents = scenario.agents();
        let encoder = ObsEncoder::new(
            &scenario.network,
            &agents,
            cfg.max_phases,
            ObsNorm::default(),
        );
        let pairing = PairingTable::new(&scenario.network, &agents, &encoder);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let critic_dim = match cfg.critic_mode {
            CriticMode::Local => encoder.local_dim(),
            CriticMode::Centralized => encoder.critic_dim(),
        };
        let num_bundles = if cfg.parameter_sharing {
            1
        } else {
            agents.len()
        };
        let bundles = (0..num_bundles)
            .map(|_| NetBundle::new(&cfg, encoder.local_dim(), critic_dim, &mut rng))
            .collect();
        let phases_per_agent = scenario
            .signal_plans
            .iter()
            .map(|p| p.num_phases().min(cfg.max_phases))
            .collect();
        PairUpLight {
            cfg,
            encoder,
            pairing,
            bundles,
            num_agents: agents.len(),
            phases_per_agent,
            episodes_trained: 0,
            rounds_trained: 0,
            faults: Mutex::new(FaultPlan::new()),
            logger: Mutex::new(None),
        }
    }

    /// Attaches a JSONL run logger and immediately writes the manifest
    /// record (config fingerprint, seed, build info, model shape).
    /// Instrumentation is out-of-band: an instrumented run trains
    /// bit-identically to an uninstrumented one.
    pub fn attach_obs(&self, sink: tsc_obs::EventSink) {
        use tsc_obs::Json;
        let mut logger = RunLogger::from_sink(sink);
        logger.log_manifest(
            self.config_fingerprint(),
            self.cfg.seed,
            [
                ("num_agents".to_string(), Json::num(self.num_agents as f64)),
                (
                    "num_envs".to_string(),
                    Json::num(self.cfg.num_envs.max(1) as f64),
                ),
                (
                    "parameter_sharing".to_string(),
                    Json::Bool(self.cfg.parameter_sharing),
                ),
                (
                    "num_params".to_string(),
                    Json::num(self.num_parameters() as f64),
                ),
                (
                    "episodes_trained".to_string(),
                    Json::num(self.episodes_trained as f64),
                ),
                (
                    "rounds_trained".to_string(),
                    Json::num(self.rounds_trained as f64),
                ),
            ],
        );
        *self.logger.lock().expect("run logger lock") = Some(logger);
    }

    /// Detaches the run logger, writing its `summary` record, and
    /// returns the accumulated metrics registry. `None` when no logger
    /// was attached (or it was already finished).
    pub fn finish_obs(&self) -> Option<tsc_obs::MetricsRegistry> {
        self.logger
            .lock()
            .expect("run logger lock")
            .take()
            .map(RunLogger::finish)
    }

    /// Runs `f` against the attached run logger, if any.
    fn with_obs(&self, f: impl FnOnce(&mut RunLogger)) {
        if let Some(log) = self.logger.lock().expect("run logger lock").as_mut() {
            f(log);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PairUpLightConfig {
        &self.cfg
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// PPO update rounds completed so far (one round merges
    /// `cfg.num_envs` episodes).
    pub fn rounds_trained(&self) -> u64 {
        self.rounds_trained
    }

    /// Replaces the injected-fault schedule (test instrumentation; see
    /// [`FaultPlan`]). An empty plan — the default — injects nothing.
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.faults.lock().expect("fault plan lock") = plan;
    }

    /// Total trainable scalars across bundles.
    pub fn num_parameters(&self) -> usize {
        self.bundles.iter().map(|b| b.params.num_scalars()).sum()
    }

    fn bundle_idx(&self, agent: usize) -> usize {
        if self.cfg.parameter_sharing {
            0
        } else {
            agent
        }
    }

    /// The critic predicts *average-reward-scaled* returns
    /// `(1-γ)·R` so its targets stay in the clamped reward range
    /// regardless of γ; this factor converts back to return units for
    /// GAE. Without it the value loss dwarfs the policy loss under
    /// oversaturation and the clipped gradient erases the policy
    /// signal.
    fn value_scale(&self) -> f32 {
        1.0 / (1.0 - self.cfg.ppo.gamma).max(0.01)
    }

    fn epsilon(&self) -> f32 {
        LinearSchedule {
            start: self.cfg.eps_start,
            end: self.cfg.eps_end,
            decay_steps: self.cfg.eps_decay_episodes as u64,
        }
        .value(self.episodes_trained as u64)
    }

    fn critic_input(&self, all: &[IntersectionObs], agent: usize) -> Vec<f32> {
        match self.cfg.critic_mode {
            CriticMode::Local => self.encoder.encode_local(&all[agent]),
            CriticMode::Centralized => self.encoder.encode_critic(all, agent),
        }
    }

    /// Samples an action for `agent` from masked policy probabilities
    /// with ε-greedy exploration (Algorithm 1 line 13). Returns
    /// `(action, log_prob)`.
    fn sample_action(
        &self,
        probs: &[f32],
        agent: usize,
        epsilon: f32,
        rng: &mut StdRng,
    ) -> (usize, f32) {
        let n = self.phases_per_agent[agent];
        // Mask to the agent's valid phases and renormalize.
        let mut masked: Vec<f32> = probs[..n].to_vec();
        let sum: f32 = masked.iter().sum();
        if sum <= 0.0 {
            masked = vec![1.0 / n as f32; n];
        } else {
            for p in &mut masked {
                *p /= sum;
            }
        }
        let action = if rng.gen::<f32>() < epsilon {
            rng.gen_range(0..n)
        } else {
            Categorical::new(&masked).sample(rng)
        };
        (action, Categorical::new(&masked).log_prob(action))
    }

    /// Collects one full episode of on-policy experience against the
    /// *current* (frozen) policy — pure with respect to the learner:
    /// `&self` only, with all randomness (exploration, message noise,
    /// random pairing) drawn from a private RNG derived from `seed` and
    /// `cfg.seed`. This is what makes data-parallel collection sound:
    /// any number of workers can run it concurrently on independent
    /// env replicas and the result for a given `(policy, seed)` pair is
    /// always the same.
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn collect_rollout(&self, env: &mut TscEnv, seed: u64) -> Result<Rollout, SimError> {
        let _span = tsc_obs::span!("rollout.episode");
        let epsilon = self.epsilon();
        let n = self.num_agents;
        let lstm = self.cfg.lstm_hidden;
        let bw = self.cfg.bandwidth;
        // The policy stream is salted with `cfg.seed` so two learners
        // that differ only in their model seed also explore
        // differently on the same episode seed.
        let mut rng = StdRng::seed_from_u64(derive_rollout_seed(self.cfg.seed, seed, 0x5A17));
        let mut all_obs = env.reset(seed);
        let mut actor_states: Vec<LstmState> = (0..n).map(|_| LstmState::zeros(1, lstm)).collect();
        let mut critic_states: Vec<LstmState> = (0..n).map(|_| LstmState::zeros(1, lstm)).collect();
        let mut messages: Vec<Vec<f32>> = vec![vec![0.0; bw]; n];
        // Double-buffered outgoing messages plus tape-free inference
        // scratch, all allocated once per episode and reused every
        // step: the per-step hot loop builds no autograd tape and
        // allocates only the vectors stored in the trajectory itself.
        let mut next_messages: Vec<Vec<f32>> = vec![vec![0.0; bw]; n];
        let mut abuf = ActorBuffers::new();
        let mut cbuf = CriticBuffers::new();
        let mut x = Tensor::zeros(1, self.encoder.local_dim() + bw);
        let critic_dim = match self.cfg.critic_mode {
            CriticMode::Local => self.encoder.local_dim(),
            CriticMode::Centralized => self.encoder.critic_dim(),
        };
        let mut cx = Tensor::zeros(1, critic_dim);
        let mut probs = Tensor::zeros(1, self.cfg.max_phases);
        let mut actions = vec![0usize; n];
        let mut traj = Trajectory::new(n);
        let mut total_reward = 0.0f64;
        let mut msg_abs_sum = 0.0f32;
        let mut msg_count = 0usize;
        let mut queue_sum = 0.0f64;
        let mut queue_steps = 0usize;

        loop {
            let partners = match self.cfg.pairing {
                crate::config::PairingMode::CongestedUpstream => self.pairing.partners(&all_obs),
                crate::config::PairingMode::SelfLoop => self.pairing.self_partners(),
                crate::config::PairingMode::RandomUpstream => {
                    self.pairing.random_partners(&mut rng)
                }
            };
            let mut step_transitions: Vec<Transition> = Vec::with_capacity(n);
            for a in 0..n {
                let _infer = tsc_obs::span!("rollout.infer");
                let local = self.encoder.encode_local(&all_obs[a]);
                let msg_in: Vec<f32> = if bw > 0 {
                    messages[partners[a]].clone()
                } else {
                    Vec::new()
                };
                {
                    let row = x.row_mut(0);
                    row[..local.len()].copy_from_slice(&local);
                    row[local.len()..].copy_from_slice(&msg_in);
                }
                let b = self.bundle_idx(a);
                let bundle = &self.bundles[b];
                // Actor forward (tape-free, bit-identical to the graph
                // path — see `ActorNet::infer`).
                bundle.actor.infer(
                    &bundle.params,
                    &x,
                    &actor_states[a].h,
                    &actor_states[a].c,
                    &mut abuf,
                );
                tsc_nn::softmax_rows_into(&abuf.logits, &mut probs);
                // Critic forward.
                let critic_in = self.critic_input(&all_obs, a);
                cx.row_mut(0).copy_from_slice(&critic_in);
                bundle.critic.infer(
                    &bundle.params,
                    &cx,
                    &critic_states[a].h,
                    &critic_states[a].c,
                    &mut cbuf,
                );
                let value = cbuf.value.get(0, 0) * self.value_scale();
                let (action, log_prob) = self.sample_action(probs.row(0), a, epsilon, &mut rng);
                actions[a] = action;
                if bw > 0 {
                    let m_hat = &mut next_messages[a];
                    regularize_into(abuf.message.row(0), self.cfg.sigma, &mut rng, m_hat);
                    msg_abs_sum += m_hat.iter().map(|x| x.abs()).sum::<f32>();
                    msg_count += m_hat.len();
                }
                step_transitions.push(Transition {
                    obs: local,
                    critic_obs: critic_in,
                    action,
                    reward: 0.0, // filled after env.step
                    value,
                    log_prob,
                    actor_h: (
                        actor_states[a].h.row(0).to_vec(),
                        actor_states[a].c.row(0).to_vec(),
                    ),
                    critic_h: (
                        critic_states[a].h.row(0).to_vec(),
                        critic_states[a].c.row(0).to_vec(),
                    ),
                    message_in: msg_in,
                    aux: Vec::new(), // filled after env.step
                });
                actor_states[a].h.copy_from(&abuf.h);
                actor_states[a].c.copy_from(&abuf.c);
                critic_states[a].h.copy_from(&cbuf.h);
                critic_states[a].c.copy_from(&cbuf.c);
            }
            let step = env.step(&actions)?;
            queue_sum += step
                .obs
                .iter()
                .map(IntersectionObs::total_halting)
                .sum::<f64>();
            queue_steps += 1;
            for (a, mut t) in step_transitions.into_iter().enumerate() {
                t.reward = ((step.rewards[a] as f32) * self.cfg.reward_scale)
                    .clamp(-self.cfg.reward_clip, 0.0);
                total_reward += step.rewards[a];
                t.aux = vec![self.encoder.message_target(&step.obs[a])];
                traj.push(a, t);
            }
            // Swap rather than reallocate; when `bw > 0` every slot was
            // overwritten above, and when `bw == 0` both are empty.
            std::mem::swap(&mut messages, &mut next_messages);
            all_obs = step.obs;
            if step.done {
                break;
            }
        }

        // Bootstrap values V(s_{B+1}) (Algorithm 1 line 24).
        for (a, state) in critic_states.iter().enumerate() {
            let b = self.bundle_idx(a);
            let critic_in = self.critic_input(&all_obs, a);
            cx.row_mut(0).copy_from_slice(&critic_in);
            self.bundles[b].critic.infer(
                &self.bundles[b].params,
                &cx,
                &state.h,
                &state.c,
                &mut cbuf,
            );
            traj.last_values[a] = cbuf.value.get(0, 0) * self.value_scale();
        }

        let stats = EpisodeStats {
            steps: traj.agents.first().map_or(0, Vec::len),
            total_reward,
            avg_waiting_time: env.sim().metrics().avg_waiting_time(),
            avg_travel_time: env.sim().avg_travel_time(),
            finished: env.sim().metrics().finished(),
            spawned: env.sim().metrics().spawned(),
        };
        Ok(Rollout {
            trajectory: traj,
            stats,
            mean_message: if msg_count > 0 {
                msg_abs_sum / msg_count as f32
            } else {
                0.0
            },
            mean_queue: if queue_steps > 0 {
                queue_sum / (queue_steps * n) as f64
            } else {
                0.0
            },
        })
    }

    /// Collects one rollout per replica in `set`, seeding replica `e`
    /// with `seeds[e]`, and returns the rollouts **in env-index order**
    /// regardless of worker scheduling.
    ///
    /// With `parallel`, replicas are driven by scoped worker threads
    /// sharing the frozen policy read-only; each worker writes into its
    /// own pre-allocated slot, so no result ever moves between lanes
    /// and no floating-point value is accumulated across threads —
    /// the output is bit-identical to the serial path.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest env index) environment failure.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() != set.len()`.
    pub fn collect_rollouts(
        &self,
        set: &mut RolloutSet,
        seeds: &[u64],
        parallel: bool,
    ) -> Result<Vec<Rollout>, SimError> {
        assert_eq!(seeds.len(), set.len(), "one seed per replica");
        let mut slots: Vec<Option<Result<Rollout, SimError>>> =
            (0..set.len()).map(|_| None).collect();
        if parallel && set.len() > 1 {
            let this = self;
            std::thread::scope(|scope| {
                for ((env, &seed), slot) in
                    set.envs_mut().iter_mut().zip(seeds).zip(slots.iter_mut())
                {
                    scope.spawn(move || {
                        *slot = Some(this.collect_rollout(env, seed));
                        // thread::scope waits for this closure, not for
                        // TLS destructors: fold span stats in now so a
                        // report taken right after the scope sees them.
                        tsc_obs::span::flush_thread();
                    });
                }
            });
        } else {
            for ((env, &seed), slot) in set.envs_mut().iter_mut().zip(seeds).zip(slots.iter_mut()) {
                *slot = Some(self.collect_rollout(env, seed));
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every worker fills its slot"))
            .collect()
    }

    /// Merges a round of rollouts (already in env-index order) into one
    /// multi-env batch, runs the PPO update, and returns one
    /// [`TrainEpisode`] record per rollout (sharing the round's losses).
    fn update_round(&mut self, rollouts: Vec<Rollout>) -> Vec<TrainEpisode> {
        let epsilon = self.epsilon();
        let round = self.rounds_trained;
        let episode_start = self.episodes_trained;
        let mut metas = Vec::with_capacity(rollouts.len());
        let mut trajs = Vec::with_capacity(rollouts.len());
        for r in rollouts {
            metas.push((r.stats, r.mean_message, r.mean_queue));
            trajs.push(r.trajectory);
        }
        let (mut buffer, last_values) = RolloutBuffer::from_trajectories(trajs);
        buffer.compute_targets(&last_values, self.cfg.ppo.gamma, self.cfg.ppo.lambda);
        let update_started = Instant::now();
        let losses = self.update(&buffer);
        let update_wall_ns = u64::try_from(update_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.rounds_trained += 1;
        // Out-of-band observability: aggregates over the round's
        // episodes, written after the update so a crash mid-update
        // never logs a round that didn't happen.
        self.with_obs(|log| {
            let k = metas.len().max(1) as f64;
            log.log_update(&UpdateRecord {
                round,
                episode_start,
                episodes: metas.len(),
                steps: metas.first().map_or(0, |(s, _, _)| s.steps),
                policy_loss: losses.policy_loss,
                value_loss: losses.value_loss,
                entropy: losses.entropy,
                grad_norm: losses.grad_norm,
                approx_kl: losses.approx_kl,
                clip_fraction: losses.clip_fraction,
                epsilon,
                mean_message: metas.iter().map(|(_, m, _)| m).sum::<f32>() / k as f32,
                mean_reward: metas.iter().map(|(s, _, _)| s.total_reward).sum::<f64>() / k,
                mean_queue: metas.iter().map(|(_, _, q)| q).sum::<f64>() / k,
                mean_wait_s: metas
                    .iter()
                    .map(|(s, _, _)| s.avg_waiting_time)
                    .sum::<f64>()
                    / k,
                mean_travel_s: metas.iter().map(|(s, _, _)| s.avg_travel_time).sum::<f64>() / k,
                update_wall_ns,
            });
        });
        metas
            .into_iter()
            .map(|(stats, mean_message, _)| {
                let ep = TrainEpisode {
                    episode: self.episodes_trained,
                    stats,
                    epsilon,
                    mean_message,
                    policy_loss: losses.policy_loss,
                    value_loss: losses.value_loss,
                    entropy: losses.entropy,
                    grad_norm: losses.grad_norm,
                    approx_kl: losses.approx_kl,
                    clip_fraction: losses.clip_fraction,
                };
                self.episodes_trained += 1;
                ep
            })
            .collect()
    }

    /// Runs one training episode (explore + update) and returns its
    /// diagnostics. Equivalent to a `num_envs = 1` collection round.
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn train_episode(&mut self, env: &mut TscEnv, seed: u64) -> Result<TrainEpisode, SimError> {
        let rollout = self.collect_rollout(env, seed)?;
        Ok(self.update_round(vec![rollout]).remove(0))
    }

    /// PPO update (Algorithm 1 line 29): K epochs over minibatches.
    /// Returns mean losses/diagnostics and max pre-clip gradient norm
    /// over minibatch updates.
    ///
    /// The minibatch-shuffle RNG is derived fresh from
    /// `(cfg.seed, rounds_trained)` every round rather than carried in
    /// the learner, so the round counter alone reproduces the shuffle —
    /// the property checkpoint resume relies on.
    fn update(&mut self, buffer: &RolloutBuffer) -> RoundLosses {
        let _span = tsc_obs::span!("ppo.update");
        let epochs = self.cfg.ppo.epochs;
        let minibatch = self.cfg.ppo.minibatch;
        let mut rng = StdRng::seed_from_u64(derive_rollout_seed(
            self.cfg.seed,
            self.rounds_trained,
            0x0BB5,
        ));
        let mut acc = RoundLosses::default();
        let mut count = 0usize;
        let fold = |acc: &mut RoundLosses, l: RoundLosses| {
            acc.policy_loss += l.policy_loss;
            acc.value_loss += l.value_loss;
            acc.entropy += l.entropy;
            acc.approx_kl += l.approx_kl;
            acc.clip_fraction += l.clip_fraction;
            acc.grad_norm = acc.grad_norm.max(l.grad_norm);
        };
        for _epoch in 0..epochs {
            let batches = buffer.minibatches(minibatch, &mut rng);
            for batch in batches {
                if self.cfg.parameter_sharing {
                    let l = self.update_minibatch(0, buffer, &batch);
                    fold(&mut acc, l);
                    count += 1;
                } else {
                    // Group the minibatch by owning agent. Buffer lanes
                    // are env-major (`lane = env * num_agents + agent`),
                    // so the owning agent — and therefore the bundle —
                    // is `lane % num_agents`.
                    let mut per_agent: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_agents];
                    for (lane, t) in batch {
                        per_agent[lane % self.num_agents].push((lane, t));
                    }
                    for (a, items) in per_agent.into_iter().enumerate() {
                        if !items.is_empty() {
                            let l = self.update_minibatch(a, buffer, &items);
                            fold(&mut acc, l);
                            count += 1;
                        }
                    }
                }
            }
        }
        let n = count.max(1) as f32;
        RoundLosses {
            policy_loss: acc.policy_loss / n,
            value_loss: acc.value_loss / n,
            entropy: acc.entropy / n,
            grad_norm: acc.grad_norm,
            approx_kl: acc.approx_kl / n,
            clip_fraction: acc.clip_fraction / n,
        }
    }

    /// One gradient step of bundle `b` on the given `(agent, step)`
    /// items. Returns the step's losses and diagnostics.
    fn update_minibatch(
        &mut self,
        b: usize,
        buffer: &RolloutBuffer,
        items: &[(usize, usize)],
    ) -> RoundLosses {
        let _span = tsc_obs::span!("ppo.minibatch");
        let bw = self.cfg.bandwidth;
        let rows = items.len();
        let mut actor_in = Vec::with_capacity(rows);
        let mut actor_h = Vec::with_capacity(rows);
        let mut actor_c = Vec::with_capacity(rows);
        let mut critic_in = Vec::with_capacity(rows);
        let mut critic_h = Vec::with_capacity(rows);
        let mut critic_c = Vec::with_capacity(rows);
        let mut actions = Vec::with_capacity(rows);
        let mut old_logp = Vec::with_capacity(rows);
        let mut advs = Vec::with_capacity(rows);
        let mut rets = Vec::with_capacity(rows);
        let mut aux_targets = Vec::with_capacity(rows);
        for &(a, t) in items {
            let tr = &buffer.transitions(a)[t];
            let mut input = tr.obs.clone();
            input.extend_from_slice(&tr.message_in);
            actor_in.push(input);
            actor_h.push(tr.actor_h.0.clone());
            actor_c.push(tr.actor_h.1.clone());
            critic_in.push(tr.critic_obs.clone());
            critic_h.push(tr.critic_h.0.clone());
            critic_c.push(tr.critic_h.1.clone());
            actions.push(tr.action);
            old_logp.push(tr.log_prob);
            let target = buffer.target(a, t);
            advs.push(target.advantage);
            rets.push(target.ret / self.value_scale());
            aux_targets.push(tr.aux.first().copied().unwrap_or(0.0));
        }
        let stack = |rows: &[Vec<f32>]| {
            let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
            Tensor::from_rows(&refs)
        };
        let bundle = &mut self.bundles[b];
        let mut g = Graph::new();
        let x = g.input(stack(&actor_in));
        let h = g.input(stack(&actor_h));
        let c = g.input(stack(&actor_c));
        let (out, _) = bundle.actor.forward(&mut g, &bundle.params, x, h, c);
        let logp_all = g.log_softmax(out.logits);
        let picked = g.gather_cols(logp_all, actions);
        let pl = clipped_policy_loss(&mut g, picked, &old_logp, &advs, self.cfg.ppo.clip);
        let ent = entropy_bonus(&mut g, out.logits);
        // Critic.
        let cx = g.input(stack(&critic_in));
        let ch = g.input(stack(&critic_h));
        let cc = g.input(stack(&critic_c));
        let (v, _, _) = bundle.critic.forward(&mut g, &bundle.params, cx, ch, cc);
        let vl = value_loss(&mut g, v, &rets);
        // Assemble: policy + c_v·value − β·entropy (+ message aux).
        let vls = g.scale(vl, self.cfg.ppo.value_coef);
        let ents = g.scale(ent, -self.cfg.ppo.entropy_coef);
        let mut loss = g.add(pl, vls);
        loss = g.add(loss, ents);
        if bw > 0 {
            if let Some(msg) = out.message {
                // Message auxiliary objective: the regularized message
                // must encode local congestion (see DESIGN.md).
                let squashed = g.sigmoid(msg);
                let first = g.slice_cols(squashed, 0, 1);
                let target = g.input(Tensor::from_vec(rows, 1, aux_targets));
                let d = g.sub(first, target);
                let sq = g.square(d);
                let ml = g.mean(sq);
                let mls = g.scale(ml, self.cfg.message_coef);
                loss = g.add(loss, mls);
            }
        }
        let stats = (
            g.value(pl).get(0, 0),
            g.value(vl).get(0, 0),
            g.value(ent).get(0, 0),
        );
        // Post-hoc diagnostics (pure reads of forward values — no
        // effect on the gradient or on any RNG, so instrumented and
        // uninstrumented runs stay bit-identical): approximate KL
        // `E[logπ_old − logπ_new]` and the fraction of importance
        // ratios outside the clip range.
        let new_logp = g.value(picked);
        let mut kl_sum = 0.0f32;
        let mut clipped = 0usize;
        for (i, &old) in old_logp.iter().enumerate() {
            let new = new_logp.get(i, 0);
            kl_sum += old - new;
            if ((new - old).exp() - 1.0).abs() > self.cfg.ppo.clip {
                clipped += 1;
            }
        }
        g.backward(loss, &mut bundle.params);
        let grad_norm = bundle.params.clip_grad_norm(self.cfg.ppo.max_grad_norm);
        bundle.opt.step(&mut bundle.params);
        RoundLosses {
            policy_loss: stats.0,
            value_loss: stats.1,
            entropy: stats.2,
            grad_norm,
            approx_kl: kl_sum / rows as f32,
            clip_fraction: clipped as f32 / rows as f32,
        }
    }

    /// Trains for at least `episodes` episodes, invoking `on_episode`
    /// after each.
    ///
    /// With `cfg.num_envs = 1` this is the classic loop: one episode
    /// per PPO update, episode `i` seeded `base_seed + i`. With
    /// `K = num_envs > 1`, each update consumes a *round* of `K`
    /// episodes collected from independent env replicas against a
    /// frozen policy snapshot, replica `e` of round `r` seeded
    /// [`derive_rollout_seed`]`(base_seed, r, e)`; rounds repeat until
    /// `episodes` is reached, so the history length rounds up to a
    /// multiple of `K`. Results are bit-identical whether the replicas
    /// run on worker threads (`cfg.parallel_rollouts`) or serially.
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn train(
        &mut self,
        env: &mut TscEnv,
        episodes: usize,
        base_seed: u64,
        mut on_episode: impl FnMut(&TrainEpisode),
    ) -> Result<Vec<TrainEpisode>, SimError> {
        let k = self.cfg.num_envs.max(1);
        self.with_obs(|log| log.log_train_start(base_seed, episodes, self.rounds_trained));
        let mut history = Vec::with_capacity(episodes);
        if k == 1 {
            for i in 0..episodes {
                let ep = self.train_episode(env, base_seed + i as u64)?;
                on_episode(&ep);
                history.push(ep);
            }
            return Ok(history);
        }
        // `env` serves as the prototype; replicas are reset with their
        // derived seeds before every round, so its current state never
        // leaks into training.
        let mut set = RolloutSet::new(env, k);
        let mut round: u64 = 0;
        while history.len() < episodes {
            let seeds: Vec<u64> = (0..k)
                .map(|e| derive_rollout_seed(base_seed, round, e as u64))
                .collect();
            let rollouts = self.collect_rollouts(&mut set, &seeds, self.cfg.parallel_rollouts)?;
            for ep in self.update_round(rollouts) {
                on_episode(&ep);
                history.push(ep);
            }
            round += 1;
        }
        Ok(history)
    }

    /// FNV-1a-64 over the configuration's debug representation —
    /// written into every checkpoint so restore can refuse state from a
    /// differently-configured learner (wrong shapes would be caught
    /// anyway; wrong hyper-parameters would silently train the wrong
    /// model). Shared with checkpoint consumers as
    /// [`crate::checkpoint::config_fingerprint`].
    fn config_fingerprint(&self) -> u64 {
        crate::checkpoint::config_fingerprint(&self.cfg)
    }

    fn snapshot(&self) -> TrainerState {
        TrainerState {
            bundles: self
                .bundles
                .iter()
                .map(|b| (b.params.clone(), b.opt.clone()))
                .collect(),
            episodes_trained: self.episodes_trained,
            rounds_trained: self.rounds_trained,
        }
    }

    fn restore(&mut self, state: &TrainerState) {
        for (bundle, (params, opt)) in self.bundles.iter_mut().zip(&state.bundles) {
            bundle.params.copy_from(params);
            bundle.opt = opt.clone();
        }
        self.episodes_trained = state.episodes_trained;
        self.rounds_trained = state.rounds_trained;
    }

    /// Simulates the aftermath of a non-finite gradient step by
    /// poisoning one weight with NaN. Only reachable through
    /// [`FaultPlan::nan_gradient`].
    fn poison_first_parameter(&mut self) {
        if let Some(bundle) = self.bundles.first_mut() {
            if let Some(id) = bundle.params.ids().next() {
                bundle.params.value_mut(id).data_mut()[0] = f32::NAN;
            }
        }
    }

    /// Writes the full training state (weights, Adam moments and
    /// timestep, episode/round counters, `base_seed`, config
    /// fingerprint) to `path` atomically. See [`Checkpoint`] for the
    /// format and the bit-identical-resume guarantee.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
        base_seed: u64,
    ) -> std::io::Result<()> {
        self.checkpoint_state(base_seed).write_atomic(path)
    }

    /// Snapshots the full training state as a [`Checkpoint`] value
    /// (the serialization side of
    /// [`save_checkpoint`](Self::save_checkpoint)).
    fn checkpoint_state(&self, base_seed: u64) -> Checkpoint {
        Checkpoint {
            fingerprint: self.config_fingerprint(),
            episodes_trained: self.episodes_trained,
            rounds_trained: self.rounds_trained,
            base_seed,
            bundles: self
                .bundles
                .iter()
                .map(|b| (b.params.clone(), b.opt.clone()))
                .collect(),
        }
    }

    /// Restores a checkpoint written by
    /// [`save_checkpoint`](Self::save_checkpoint) into this learner and
    /// returns the `base_seed` of the interrupted run. All-or-nothing:
    /// the checksum, fingerprint, and every bundle's layout are
    /// validated before the first weight is touched, so a rejected
    /// checkpoint leaves the learner exactly as it was.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Load`] for corrupt/truncated files,
    /// fingerprint mismatches, and layout mismatches; [`TrainError::Io`]
    /// wrapped inside [`TrainError::Load`] for filesystem failures.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<u64, TrainError> {
        let ck = Checkpoint::read(path)?;
        if ck.fingerprint != self.config_fingerprint() {
            return Err(TrainError::Load(tsc_nn::LoadError::Format(format!(
                "configuration fingerprint mismatch: checkpoint {:016x}, learner {:016x}",
                ck.fingerprint,
                self.config_fingerprint()
            ))));
        }
        if ck.bundles.len() != self.bundles.len() {
            return Err(TrainError::Load(tsc_nn::LoadError::Format(format!(
                "expected {} bundles, found {}",
                self.bundles.len(),
                ck.bundles.len()
            ))));
        }
        for (bundle, (params, opt)) in self.bundles.iter().zip(&ck.bundles) {
            Self::check_layout(&bundle.params, params)?;
            if !opt.matches(&bundle.params) {
                return Err(TrainError::Load(tsc_nn::LoadError::Format(
                    "optimizer state does not match parameter layout".into(),
                )));
            }
        }
        for (bundle, (params, opt)) in self.bundles.iter_mut().zip(ck.bundles) {
            bundle.params.copy_from(&params);
            bundle.opt = opt;
        }
        self.episodes_trained = ck.episodes_trained;
        self.rounds_trained = ck.rounds_trained;
        Ok(ck.base_seed)
    }

    /// Reconstructs a learner from a checkpoint: builds a fresh model
    /// for `env` with `cfg`, restores the checkpoint into it, and
    /// returns the learner together with the interrupted run's
    /// `base_seed`. Continuing with
    /// [`train_checkpointed`](Self::train_checkpointed) and that seed
    /// produces the exact byte-for-byte parameter trajectory of the run
    /// that was never interrupted.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint validation failures; `cfg` must match the
    /// checkpointed configuration (enforced via fingerprint).
    pub fn resume(
        env: &TscEnv,
        cfg: PairUpLightConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, u64), TrainError> {
        let mut model = PairUpLight::new(env, cfg);
        let base_seed = model.load_checkpoint(path)?;
        Ok((model, base_seed))
    }

    /// Collects one round of rollouts with panic isolation: each worker
    /// runs inside `catch_unwind`, and a panicked replica is retried
    /// with the **same** derived seed (bounded by
    /// `cfg.max_round_retries`). Because [`collect_rollout`]
    /// (Self::collect_rollout) takes `&self` and starts from
    /// `env.reset(seed)`, a retry observes no trace of the aborted
    /// attempt — the recovered round is bit-identical to one where the
    /// panic never happened, which is why `AssertUnwindSafe` is sound
    /// here.
    fn collect_round_isolated(
        &self,
        set: &mut RolloutSet,
        seeds: &[u64],
        round: u64,
    ) -> Result<Vec<Rollout>, TrainError> {
        assert_eq!(seeds.len(), set.len(), "one seed per replica");
        let run = |env: &mut TscEnv, seed: u64, e: usize| {
            catch_unwind(AssertUnwindSafe(|| {
                if self
                    .faults
                    .lock()
                    .expect("fault plan lock")
                    .take_panic(round, e)
                {
                    panic!("injected rollout worker fault (round {round}, env {e})");
                }
                self.collect_rollout(env, seed)
            }))
        };
        let run = &run;
        let mut slots: Vec<Option<std::thread::Result<Result<Rollout, SimError>>>> =
            (0..set.len()).map(|_| None).collect();
        if self.cfg.parallel_rollouts && set.len() > 1 {
            std::thread::scope(|scope| {
                for (e, ((env, &seed), slot)) in set
                    .envs_mut()
                    .iter_mut()
                    .zip(seeds)
                    .zip(slots.iter_mut())
                    .enumerate()
                {
                    scope.spawn(move || {
                        *slot = Some(run(env, seed, e));
                        tsc_obs::span::flush_thread();
                    });
                }
            });
        } else {
            for (e, ((env, &seed), slot)) in set
                .envs_mut()
                .iter_mut()
                .zip(seeds)
                .zip(slots.iter_mut())
                .enumerate()
            {
                *slot = Some(run(env, seed, e));
            }
        }
        // Retry panicked replicas serially (panics are the rare path);
        // healthy replicas' results are already in their slots.
        let mut out = Vec::with_capacity(set.len());
        for (e, (slot, env)) in slots.into_iter().zip(set.envs_mut()).enumerate() {
            let mut result = slot.expect("every worker fills its slot");
            let mut retries = 0u32;
            while result.is_err() {
                if retries >= self.cfg.max_round_retries {
                    return Err(TrainError::WorkerPanic {
                        round,
                        env: e,
                        retries,
                    });
                }
                retries += 1;
                self.with_obs(|log| log.log_worker_panic_retry(round, e, retries));
                result = run(env, seeds[e], e);
            }
            let Ok(rollout) = result else {
                unreachable!("loop above exits only on success")
            };
            out.push(rollout?);
        }
        Ok(out)
    }

    /// The fault-tolerant training loop: [`train`](Self::train)'s
    /// schedule plus panic-isolated workers, the divergence sentinel
    /// with rollback, and periodic atomic checkpoints.
    ///
    /// Per round it (1) snapshots the full training state in memory,
    /// (2) collects rollouts with panicked workers retried on the same
    /// seed, (3) runs the PPO update, (4) checks the update statistics
    /// and parameters for divergence — on a trip the snapshot is
    /// restored and the round retried with a deterministically reseeded
    /// schedule (the same seed would diverge identically), bounded by
    /// `cfg.max_round_retries` — and (5) writes a checkpoint through
    /// `manager` when one is due, pruning to the retention policy.
    ///
    /// Seeding continues from the learner's lifetime counters rather
    /// than restarting at zero: round `r` of a resumed learner draws
    /// the same seeds as round `r` of one that never stopped, which is
    /// what makes resume-from-checkpoint bit-identical.
    ///
    /// # Errors
    ///
    /// [`TrainError::Sim`] for deterministic environment failures
    /// (never retried), [`TrainError::WorkerPanic`] /
    /// [`TrainError::Diverged`] when a retry budget is exhausted,
    /// [`TrainError::Io`] for checkpoint failures, and
    /// [`TrainError::Aborted`] for an injected abort.
    pub fn train_checkpointed(
        &mut self,
        env: &mut TscEnv,
        episodes: usize,
        base_seed: u64,
        manager: Option<&CheckpointManager>,
        mut on_episode: impl FnMut(&TrainEpisode),
    ) -> Result<Vec<TrainEpisode>, TrainError> {
        /// Salts the reseeded retry of a diverged round so it draws
        /// fresh episodes instead of replaying the divergent ones.
        const RETRY_SALT: u64 = 0x8E7B_11F5;
        let k = self.cfg.num_envs.max(1);
        self.with_obs(|log| log.log_train_start(base_seed, episodes, self.rounds_trained));
        let mut set = RolloutSet::new(env, k);
        let mut history = Vec::with_capacity(episodes);
        while history.len() < episodes {
            let round = self.rounds_trained;
            let restore_point = self.snapshot();
            let mut attempt: u32 = 0;
            let round_records = loop {
                // Attempt 0 reproduces `train`'s nominal seed schedule
                // (continued across resume via the lifetime counters);
                // retries derive a fresh deterministic schedule.
                let seeds: Vec<u64> = if k == 1 {
                    let nominal = base_seed + self.episodes_trained as u64;
                    vec![if attempt == 0 {
                        nominal
                    } else {
                        derive_rollout_seed(nominal, u64::from(attempt), RETRY_SALT)
                    }]
                } else {
                    let round_key = if attempt == 0 {
                        round
                    } else {
                        derive_rollout_seed(round, u64::from(attempt), RETRY_SALT)
                    };
                    (0..k)
                        .map(|e| derive_rollout_seed(base_seed, round_key, e as u64))
                        .collect()
                };
                let rollouts = self.collect_round_isolated(&mut set, &seeds, round)?;
                let records = self.update_round(rollouts);
                if self.faults.lock().expect("fault plan lock").take_nan(round) {
                    self.poison_first_parameter();
                }
                let stats = UpdateStats {
                    policy_loss: records[0].policy_loss,
                    value_loss: records[0].value_loss,
                    entropy: records[0].entropy,
                    grad_norm: records[0].grad_norm,
                };
                match check_update(&stats, self.cfg.divergence_loss_limit)
                    .and_then(|()| check_finite_params(self.parameter_vector()))
                {
                    Ok(()) => break records,
                    Err(diagnosis) => {
                        self.restore(&restore_point);
                        let exhausted = attempt >= self.cfg.max_round_retries;
                        self.with_obs(|log| {
                            log.log_divergence(round, attempt, &diagnosis.to_string());
                            log.log_rollback(round, attempt, !exhausted);
                        });
                        if exhausted {
                            return Err(TrainError::Diverged {
                                round,
                                retries: attempt,
                                reason: diagnosis.to_string(),
                            });
                        }
                        attempt += 1;
                    }
                }
            };
            for ep in round_records {
                on_episode(&ep);
                history.push(ep);
            }
            if let Some(manager) = manager {
                if manager.due(self.rounds_trained) {
                    let path = manager.path_for(self.rounds_trained);
                    if self
                        .faults
                        .lock()
                        .expect("fault plan lock")
                        .take_checkpoint_fail(round)
                    {
                        // Injected disk-full: the write tears mid-file
                        // and the real error surfaces. The previous
                        // checkpoint must survive untouched.
                        return Err(TrainError::Io(
                            self.checkpoint_state(base_seed).write_torn(path),
                        ));
                    }
                    self.save_checkpoint(&path, base_seed)?;
                    self.with_obs(|log| log.log_checkpoint(self.rounds_trained, &path));
                    manager.prune()?;
                }
            }
            if self
                .faults
                .lock()
                .expect("fault plan lock")
                .take_abort(round)
            {
                return Err(TrainError::Aborted { round });
            }
        }
        Ok(history)
    }

    /// All trainable scalars across bundles, concatenated in a stable
    /// (bundle, parameter, element) order. Intended for exact
    /// (bit-for-bit) equality checks between training runs.
    pub fn parameter_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for b in &self.bundles {
            for id in b.params.ids() {
                out.extend_from_slice(b.params.value(id).data());
            }
        }
        out
    }

    /// Saves every bundle's weights to `path` (tsc-nn text format; one
    /// concatenated stream with a bundle-count header line).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        use std::io::Write as _;
        writeln!(w, "pairuplight-model v1 bundles={}", self.bundles.len())?;
        for b in &self.bundles {
            tsc_nn::save_params(&b.params, &mut w)?;
        }
        Ok(())
    }

    /// Restores weights saved by [`save`](Self::save) into this
    /// learner. The learner must have been constructed with the same
    /// configuration (bundle count and tensor shapes must match).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failures, malformed files, or layout
    /// mismatches.
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), tsc_nn::LoadError> {
        let file = std::fs::File::open(path).map_err(tsc_nn::LoadError::Io)?;
        let mut r = std::io::BufReader::new(file);
        use std::io::BufRead as _;
        let mut header = String::new();
        r.read_line(&mut header).map_err(tsc_nn::LoadError::Io)?;
        let expect = format!("pairuplight-model v1 bundles={}", self.bundles.len());
        if header.trim() != expect {
            return Err(tsc_nn::LoadError::Format(format!(
                "expected header {expect:?}, found {header:?}"
            )));
        }
        // The tsc-nn streams are written back to back; parse each by
        // buffering the full remainder and splitting on headers.
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut r, &mut rest).map_err(tsc_nn::LoadError::Io)?;
        let mut sections: Vec<String> = Vec::new();
        for line in rest.lines() {
            if line.trim() == "tsc-nn-params v1" {
                sections.push(String::new());
            }
            let Some(last) = sections.last_mut() else {
                return Err(tsc_nn::LoadError::Format("missing params header".into()));
            };
            last.push_str(line);
            last.push('\n');
        }
        if sections.len() != self.bundles.len() {
            return Err(tsc_nn::LoadError::Format(format!(
                "expected {} bundles, found {}",
                self.bundles.len(),
                sections.len()
            )));
        }
        // Parse and validate *every* section before copying anything,
        // so a failure in a later bundle cannot leave the learner with
        // a half-restored (bundle 0 new, bundle 1 old) parameter set.
        let mut parsed = Vec::with_capacity(sections.len());
        for section in &sections {
            parsed.push(tsc_nn::load_params(section.as_bytes())?);
        }
        for (bundle, loaded) in self.bundles.iter().zip(&parsed) {
            Self::check_layout(&bundle.params, loaded)?;
        }
        for (bundle, loaded) in self.bundles.iter_mut().zip(parsed) {
            bundle.params.copy_from(&loaded);
        }
        Ok(())
    }

    /// Validates that `loaded` has exactly the tensor count and shapes
    /// of `expected`, returning a typed error (never panicking) on
    /// mismatch. Crate-visible so
    /// [`PolicySnapshot`](crate::policy::PolicySnapshot) hot-reload
    /// validates checkpoints with the same rules.
    pub(crate) fn check_layout(
        expected: &Params,
        loaded: &Params,
    ) -> Result<(), tsc_nn::LoadError> {
        if loaded.len() != expected.len() {
            return Err(tsc_nn::LoadError::Format(format!(
                "parameter layout mismatch: expected {} tensors, found {}",
                expected.len(),
                loaded.len()
            )));
        }
        for (a, b) in expected.ids().zip(loaded.ids()) {
            if expected.value(a).shape() != loaded.value(b).shape() {
                return Err(tsc_nn::LoadError::Format(format!(
                    "parameter layout mismatch: tensor {} is {:?}, expected {:?}",
                    expected.name(a),
                    loaded.value(b).shape(),
                    expected.value(a).shape()
                )));
            }
        }
        Ok(())
    }

    /// Snapshots the deployable policy state (actor weights, encoder,
    /// pairing, phase counts) for a serving runtime. See
    /// [`PolicySnapshot`](crate::policy::PolicySnapshot).
    pub fn policy_snapshot(&self) -> crate::policy::PolicySnapshot {
        crate::policy::PolicySnapshot::new(
            self.cfg,
            self.encoder.clone(),
            self.pairing.clone(),
            self.bundles
                .iter()
                .map(|b| (b.params.clone(), b.actor.clone()))
                .collect(),
            self.phases_per_agent.clone(),
            self.num_agents,
        )
    }

    /// Snapshots the current policy as a decentralized execution
    /// controller (greedy, σ = 0; the critic is not deployed — paper
    /// Fig. 4).
    pub fn controller(&self) -> PairUpLightController {
        PairUpLightController {
            cfg: self.cfg,
            encoder: self.encoder.clone(),
            pairing: self.pairing.clone(),
            actors: self
                .bundles
                .iter()
                .map(|b| (b.params.clone(), b.actor.clone()))
                .collect(),
            phases_per_agent: self.phases_per_agent.clone(),
            states: Vec::new(),
            messages: Vec::new(),
            num_agents: self.num_agents,
            rng: StdRng::seed_from_u64(self.cfg.seed ^ 0xC0FFEE),
        }
    }
}

/// The deployed (inference-only) PairUpLight policy: local observations
/// plus one incoming message per intersection, greedy phase selection.
#[derive(Debug)]
pub struct PairUpLightController {
    cfg: PairUpLightConfig,
    encoder: ObsEncoder,
    pairing: PairingTable,
    /// `(params, net)` per bundle (1 when shared).
    actors: Vec<(Params, ActorNet)>,
    phases_per_agent: Vec<usize>,
    states: Vec<LstmState>,
    messages: Vec<Vec<f32>>,
    num_agents: usize,
    rng: StdRng,
}

impl PairUpLightController {
    fn bundle_idx(&self, agent: usize) -> usize {
        if self.actors.len() == 1 {
            0
        } else {
            agent
        }
    }

    /// Forces greedy (argmax) execution instead of sampling.
    pub fn set_greedy(&mut self) {
        self.cfg.stochastic_execution = false;
    }
}

impl Controller for PairUpLightController {
    fn reset(&mut self) {
        self.states = (0..self.num_agents)
            .map(|_| LstmState::zeros(1, self.cfg.lstm_hidden))
            .collect();
        self.messages = vec![vec![0.0; self.cfg.bandwidth]; self.num_agents];
        // Reseed so evaluation episodes are reproducible.
        self.rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xC0FFEE);
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        if self.states.len() != self.num_agents {
            self.reset();
        }
        let partners = match self.cfg.pairing {
            crate::config::PairingMode::CongestedUpstream => self.pairing.partners(obs),
            crate::config::PairingMode::SelfLoop => self.pairing.self_partners(),
            crate::config::PairingMode::RandomUpstream => {
                self.pairing.random_partners(&mut self.rng)
            }
        };
        let mut actions = Vec::with_capacity(self.num_agents);
        let mut next_messages = vec![vec![0.0f32; self.cfg.bandwidth]; self.num_agents];
        for a in 0..self.num_agents {
            let mut input = self.encoder.encode_local(&obs[a]);
            if self.cfg.bandwidth > 0 {
                input.extend_from_slice(&self.messages[partners[a]]);
            }
            let b = self.bundle_idx(a);
            let (params, actor) = &self.actors[b];
            let mut g = Graph::new();
            let (out, next) = actor.step(
                &mut g,
                params,
                Tensor::row_from_slice(&input),
                &self.states[a],
            );
            let n = self.phases_per_agent[a];
            let probs = tsc_nn::softmax_rows(g.value(out.logits));
            let mut masked: Vec<f32> = probs.row(0)[..n].to_vec();
            let sum: f32 = masked.iter().sum();
            for p in &mut masked {
                *p /= sum.max(1e-8);
            }
            let dist = Categorical::new(&masked);
            let action = if self.cfg.stochastic_execution {
                dist.sample(&mut self.rng)
            } else {
                dist.argmax()
            };
            if self.cfg.bandwidth > 0 {
                if let Some(m) = out.message {
                    // σ = 0 at execution: deterministic logistic squash.
                    next_messages[a] = g
                        .value(m)
                        .row(0)
                        .iter()
                        .map(|&x| crate::message::logistic(x))
                        .collect();
                }
            }
            self.states[a] = next;
            actions.push(action);
        }
        self.messages = next_messages;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{EnvConfig, SimConfig};

    fn tiny_scenario() -> tsc_sim::Scenario {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        grid.scenario("tiny", f).unwrap()
    }

    fn tiny_env(horizon: u32) -> TscEnv {
        TscEnv::new(
            tiny_scenario(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: horizon,
            },
            0,
        )
        .unwrap()
    }

    /// Same environment, but stepped by the legacy tick oracle instead
    /// of the event core.
    fn tiny_env_legacy(horizon: u32) -> TscEnv {
        TscEnv::new_legacy(
            tiny_scenario(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: horizon,
            },
            0,
        )
        .unwrap()
    }

    fn small_cfg() -> PairUpLightConfig {
        let mut cfg = PairUpLightConfig {
            hidden: 16,
            lstm_hidden: 16,
            ..Default::default()
        };
        cfg.ppo.minibatch = 32;
        cfg.ppo.epochs = 2;
        cfg
    }

    #[test]
    fn one_training_episode_runs_and_updates() {
        let mut env = tiny_env(140);
        let mut model = PairUpLight::new(&env, small_cfg());
        let before = model.num_parameters();
        let ep = model.train_episode(&mut env, 1).unwrap();
        assert_eq!(model.num_parameters(), before);
        assert_eq!(ep.stats.steps, env.steps_per_episode());
        assert!(ep.stats.spawned > 0);
        assert_eq!(model.episodes_trained(), 1);
        assert!(ep.mean_message > 0.0, "messages flow by default");
    }

    /// End-to-end pin of the simulator migration: a short training run
    /// must produce bit-identical weights whether the environment is
    /// stepped by the event core or the legacy tick oracle. This pushes
    /// the parity contract through the full stack — observations,
    /// rewards, rollout collection, GAE and PPO updates.
    #[test]
    fn training_bitwise_identical_on_event_and_legacy_cores() {
        let run = |legacy: bool| {
            let mut env = if legacy {
                tiny_env_legacy(140)
            } else {
                tiny_env(140)
            };
            let mut model = PairUpLight::new(&env, small_cfg());
            let history = model.train(&mut env, 2, 42, |_| {}).unwrap();
            let bits: Vec<u32> = model
                .parameter_vector()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let rewards: Vec<u64> = history
                .iter()
                .map(|r| r.stats.total_reward.to_bits())
                .collect();
            (bits, rewards)
        };
        let (event_bits, event_rewards) = run(false);
        let (legacy_bits, legacy_rewards) = run(true);
        assert_eq!(event_rewards, legacy_rewards, "episode rewards diverged");
        assert_eq!(event_bits, legacy_bits, "trained weights diverged");
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let run = || {
            let mut env = tiny_env(140);
            let mut model = PairUpLight::new(&env, small_cfg());
            let a = model.train_episode(&mut env, 5).unwrap();
            let b = model.train_episode(&mut env, 6).unwrap();
            (a.stats.total_reward, b.stats.total_reward, a.mean_message)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_env_round_counts_episodes_and_shares_losses() {
        let mut env = tiny_env(140);
        let mut cfg = small_cfg();
        cfg.num_envs = 2;
        let mut model = PairUpLight::new(&env, cfg);
        let history = model.train(&mut env, 2, 0, |_| {}).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(model.episodes_trained(), 2);
        assert_eq!(history[0].episode, 0);
        assert_eq!(history[1].episode, 1);
        // One PPO update per round: its diagnostics are shared by the
        // round's episode records.
        assert_eq!(history[0].policy_loss, history[1].policy_loss);
        assert_eq!(history[0].value_loss, history[1].value_loss);
        // Replicas got distinct derived seeds, so their episodes differ.
        assert_ne!(history[0].stats.total_reward, history[1].stats.total_reward);
    }

    #[test]
    fn collect_rollout_is_pure_and_repeatable() {
        let mut env = tiny_env(140);
        let model = PairUpLight::new(&env, small_cfg());
        let a = model.collect_rollout(&mut env, 3).unwrap();
        let b = model.collect_rollout(&mut env, 3).unwrap();
        assert_eq!(a.stats.total_reward, b.stats.total_reward);
        assert_eq!(a.trajectory.last_values, b.trajectory.last_values);
        assert_eq!(a.trajectory.total(), b.trajectory.total());
    }

    /// The pre-buffer-reuse collection loop: every forward pass builds
    /// an autograd tape and every step reallocates its scratch. Kept as
    /// the reference implementation for the bit-identity test below.
    fn collect_rollout_tape_reference(
        model: &PairUpLight,
        env: &mut TscEnv,
        seed: u64,
    ) -> Trajectory {
        let epsilon = model.epsilon();
        let n = model.num_agents;
        let lstm = model.cfg.lstm_hidden;
        let bw = model.cfg.bandwidth;
        let mut rng = StdRng::seed_from_u64(derive_rollout_seed(model.cfg.seed, seed, 0x5A17));
        let mut all_obs = env.reset(seed);
        let mut actor_states: Vec<LstmState> = (0..n).map(|_| LstmState::zeros(1, lstm)).collect();
        let mut critic_states: Vec<LstmState> = (0..n).map(|_| LstmState::zeros(1, lstm)).collect();
        let mut messages: Vec<Vec<f32>> = vec![vec![0.0; bw]; n];
        let mut traj = Trajectory::new(n);
        loop {
            let partners = match model.cfg.pairing {
                crate::config::PairingMode::CongestedUpstream => model.pairing.partners(&all_obs),
                crate::config::PairingMode::SelfLoop => model.pairing.self_partners(),
                crate::config::PairingMode::RandomUpstream => {
                    model.pairing.random_partners(&mut rng)
                }
            };
            let mut actions = vec![0usize; n];
            let mut step_transitions: Vec<Transition> = Vec::with_capacity(n);
            let mut next_messages = vec![vec![0.0f32; bw]; n];
            for a in 0..n {
                let local = model.encoder.encode_local(&all_obs[a]);
                let msg_in: Vec<f32> = if bw > 0 {
                    messages[partners[a]].clone()
                } else {
                    Vec::new()
                };
                let mut input = local.clone();
                input.extend_from_slice(&msg_in);
                let b = model.bundle_idx(a);
                let mut g = Graph::new();
                let (out, next_state) = model.bundles[b].actor.step(
                    &mut g,
                    &model.bundles[b].params,
                    Tensor::row_from_slice(&input),
                    &actor_states[a],
                );
                let probs = tsc_nn::softmax_rows(g.value(out.logits));
                let raw_msg: Vec<f32> = out
                    .message
                    .map(|m| g.value(m).row(0).to_vec())
                    .unwrap_or_default();
                let critic_in = model.critic_input(&all_obs, a);
                let mut gc = Graph::new();
                let (v, next_cstate) = model.bundles[b].critic.step(
                    &mut gc,
                    &model.bundles[b].params,
                    Tensor::row_from_slice(&critic_in),
                    &critic_states[a],
                );
                let value = gc.value(v).get(0, 0) * model.value_scale();
                let (action, log_prob) = model.sample_action(probs.row(0), a, epsilon, &mut rng);
                actions[a] = action;
                if bw > 0 {
                    next_messages[a] =
                        crate::message::regularize(&raw_msg, model.cfg.sigma, &mut rng);
                }
                step_transitions.push(Transition {
                    obs: local,
                    critic_obs: critic_in,
                    action,
                    reward: 0.0,
                    value,
                    log_prob,
                    actor_h: (
                        actor_states[a].h.row(0).to_vec(),
                        actor_states[a].c.row(0).to_vec(),
                    ),
                    critic_h: (
                        critic_states[a].h.row(0).to_vec(),
                        critic_states[a].c.row(0).to_vec(),
                    ),
                    message_in: msg_in,
                    aux: Vec::new(),
                });
                actor_states[a] = next_state;
                critic_states[a] = next_cstate;
            }
            let step = env.step(&actions).unwrap();
            for (a, mut t) in step_transitions.into_iter().enumerate() {
                t.reward = ((step.rewards[a] as f32) * model.cfg.reward_scale)
                    .clamp(-model.cfg.reward_clip, 0.0);
                t.aux = vec![model.encoder.message_target(&step.obs[a])];
                traj.push(a, t);
            }
            messages = next_messages;
            all_obs = step.obs;
            if step.done {
                break;
            }
        }
        for (a, state) in critic_states.iter().enumerate() {
            let b = model.bundle_idx(a);
            let critic_in = model.critic_input(&all_obs, a);
            let mut g = Graph::new();
            let (v, _) = model.bundles[b].critic.step(
                &mut g,
                &model.bundles[b].params,
                Tensor::row_from_slice(&critic_in),
                state,
            );
            traj.last_values[a] = g.value(v).get(0, 0) * model.value_scale();
        }
        traj
    }

    #[test]
    fn buffer_reusing_rollout_is_bit_identical_to_tape_reference() {
        let mut env = tiny_env(140);
        let model = PairUpLight::new(&env, small_cfg());
        let fast = model.collect_rollout(&mut env, 3).unwrap().trajectory;
        let reference = collect_rollout_tape_reference(&model, &mut env, 3);
        assert_eq!(fast.last_values, reference.last_values);
        assert_eq!(fast.agents, reference.agents);
    }

    #[test]
    fn buffer_reusing_rollout_matches_reference_without_communication() {
        let mut env = tiny_env(140);
        let model = PairUpLight::new(&env, small_cfg().without_communication());
        let fast = model.collect_rollout(&mut env, 9).unwrap().trajectory;
        let reference = collect_rollout_tape_reference(&model, &mut env, 9);
        assert_eq!(fast.agents, reference.agents);
        assert_eq!(fast.last_values, reference.last_values);
    }

    #[test]
    fn no_communication_ablation_sends_nothing() {
        let mut env = tiny_env(140);
        let cfg = small_cfg().without_communication();
        let mut model = PairUpLight::new(&env, cfg);
        let ep = model.train_episode(&mut env, 1).unwrap();
        assert_eq!(ep.mean_message, 0.0);
    }

    #[test]
    fn controller_runs_an_episode() {
        let mut env = tiny_env(140);
        let mut model = PairUpLight::new(&env, small_cfg());
        model.train_episode(&mut env, 1).unwrap();
        let mut ctl = model.controller();
        let stats = env.run_episode(&mut ctl, 99).unwrap();
        assert!(stats.steps > 0);
        assert!(stats.spawned > 0);
    }

    #[test]
    fn per_agent_parameters_when_sharing_disabled() {
        let env = tiny_env(140);
        let mut cfg = small_cfg();
        cfg.parameter_sharing = false;
        let model = PairUpLight::new(&env, cfg);
        let shared = PairUpLight::new(&env, small_cfg());
        assert_eq!(model.num_parameters(), 4 * shared.num_parameters());
    }

    #[test]
    fn save_load_round_trips_policy() {
        let mut env = tiny_env(140);
        let mut model = PairUpLight::new(&env, small_cfg());
        model.train_episode(&mut env, 1).unwrap();
        let path = std::env::temp_dir().join("pairuplight_test_model.txt");
        model.save(&path).unwrap();
        // A fresh model with the same config but different weights.
        let mut cfg2 = small_cfg();
        cfg2.seed = 99;
        let mut restored = PairUpLight::new(&env, cfg2);
        restored.load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // Both controllers must now act identically.
        let mut a = model.controller();
        let mut b = restored.controller();
        let obs = env.reset(5);
        // Seeded execution RNGs differ (seed in cfg), so force greedy.
        a.set_greedy();
        b.set_greedy();
        a.reset();
        b.reset();
        assert_eq!(a.decide(&obs), b.decide(&obs));
    }

    #[test]
    fn load_rejects_mismatched_layout() {
        let env = tiny_env(140);
        let model = PairUpLight::new(&env, small_cfg());
        let path = std::env::temp_dir().join("pairuplight_test_mismatch.txt");
        model.save(&path).unwrap();
        let mut cfg2 = small_cfg();
        cfg2.parameter_sharing = false; // 4 bundles instead of 1
        let mut other = PairUpLight::new(&env, cfg2);
        assert!(other.load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn epsilon_decays_with_episodes() {
        let env = tiny_env(140);
        let mut model = PairUpLight::new(&env, small_cfg());
        let e0 = model.epsilon();
        model.episodes_trained = model.cfg.eps_decay_episodes;
        assert!(model.epsilon() < e0);
        assert_eq!(model.epsilon(), model.cfg.eps_end);
    }
}
