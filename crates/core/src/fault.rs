//! Deterministic fault injection for exercising the fault-tolerance
//! machinery.
//!
//! A [`FaultPlan`] is a list of faults to fire at specific points of a
//! checkpointed training run: panic a rollout worker, poison the model
//! with a non-finite parameter after an update, tear a checkpoint write
//! partway through (simulating a full disk), or abort training
//! outright (simulating a crash/kill so resume can be tested). Each
//! entry fires **once** and is then consumed, which is what lets the
//! recovery path (same-seed worker retry, rollback + reseed) succeed on
//! its next attempt — exactly like a transient real-world fault.
//!
//! The plan lives behind a mutex inside the learner, so concurrent
//! rollout workers can consume entries without races; an empty plan
//! (the default) costs one uncontended lock per query.

/// A consumable schedule of injected faults, keyed by training round.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(round, env)` pairs whose rollout worker panics.
    panics: Vec<(u64, usize)>,
    /// Rounds after whose PPO update a parameter is set to NaN,
    /// simulating a divergent (non-finite) gradient step.
    nan_rounds: Vec<u64>,
    /// Abort training after this round completes (checkpoint included),
    /// simulating the process being killed.
    abort_after: Option<u64>,
    /// Rounds whose due checkpoint write fails partway through,
    /// simulating a full disk / torn write.
    checkpoint_write_fails: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules the rollout worker driving env replica `env` of
    /// training round `round` to panic once.
    pub fn panic_worker(mut self, round: u64, env: usize) -> Self {
        self.panics.push((round, env));
        self
    }

    /// Schedules the PPO update of `round` to leave a NaN parameter
    /// behind once, as a diverged gradient step would.
    pub fn nan_gradient(mut self, round: u64) -> Self {
        self.nan_rounds.push(round);
        self
    }

    /// Schedules training to stop with
    /// [`TrainError::Aborted`](crate::TrainError::Aborted) after
    /// `round` completes (its checkpoint, if due, is still written).
    pub fn abort_after_round(mut self, round: u64) -> Self {
        self.abort_after = Some(round);
        self
    }

    /// Schedules the checkpoint write due at `round` to fail once,
    /// leaving only a torn temp file behind — the checkpointer's
    /// atomic temp-then-rename protocol must keep the previous
    /// checkpoint intact.
    pub fn fail_checkpoint_write(mut self, round: u64) -> Self {
        self.checkpoint_write_fails.push(round);
        self
    }

    /// Whether any fault is still pending.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.nan_rounds.is_empty()
            && self.abort_after.is_none()
            && self.checkpoint_write_fails.is_empty()
    }

    /// Consumes one pending panic for `(round, env)`; returns whether
    /// one fired.
    pub(crate) fn take_panic(&mut self, round: u64, env: usize) -> bool {
        match self.panics.iter().position(|&p| p == (round, env)) {
            Some(i) => {
                self.panics.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Consumes one pending NaN injection for `round`; returns whether
    /// one fired.
    pub(crate) fn take_nan(&mut self, round: u64) -> bool {
        match self.nan_rounds.iter().position(|&r| r == round) {
            Some(i) => {
                self.nan_rounds.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Consumes one pending checkpoint-write failure for `round`;
    /// returns whether one fired.
    pub(crate) fn take_checkpoint_fail(&mut self, round: u64) -> bool {
        match self.checkpoint_write_fails.iter().position(|&r| r == round) {
            Some(i) => {
                self.checkpoint_write_fails.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Consumes a pending abort scheduled for `round`; returns whether
    /// it fired.
    pub(crate) fn take_abort(&mut self, round: u64) -> bool {
        if self.abort_after == Some(round) {
            self.abort_after = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let mut plan = FaultPlan::new().panic_worker(2, 1).nan_gradient(3);
        assert!(!plan.take_panic(2, 0), "wrong env does not fire");
        assert!(plan.take_panic(2, 1));
        assert!(!plan.take_panic(2, 1), "consumed");
        assert!(plan.take_nan(3));
        assert!(!plan.take_nan(3));
        assert!(plan.is_empty());
    }

    #[test]
    fn repeated_entries_fire_repeatedly() {
        // Two scheduled panics for the same point exhaust two attempts,
        // which is how tests drive the retry budget to its limit.
        let mut plan = FaultPlan::new().panic_worker(0, 0).panic_worker(0, 0);
        assert!(plan.take_panic(0, 0));
        assert!(plan.take_panic(0, 0));
        assert!(!plan.take_panic(0, 0));
    }

    #[test]
    fn checkpoint_write_failure_fires_exactly_once() {
        let mut plan = FaultPlan::new().fail_checkpoint_write(4);
        assert!(!plan.is_empty());
        assert!(!plan.take_checkpoint_fail(3), "wrong round does not fire");
        assert!(plan.take_checkpoint_fail(4));
        assert!(!plan.take_checkpoint_fail(4), "consumed");
        assert!(plan.is_empty());
    }

    #[test]
    fn abort_fires_only_on_its_round() {
        let mut plan = FaultPlan::new().abort_after_round(5);
        assert!(!plan.take_abort(4));
        assert!(plan.take_abort(5));
        assert!(!plan.take_abort(5));
        assert!(plan.is_empty());
    }
}
