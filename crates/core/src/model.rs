//! The coordinated Actor and centralized Critic networks (paper Fig. 5).
//!
//! Both networks share the same shape — a fully-connected trunk into an
//! LSTM — and diverge at the heads: the actor emits an action
//! distribution *and* a raw outgoing message (Eq. 8); the critic emits
//! a scalar value (Eq. 9). As in the paper, actor and critic are fully
//! separate networks (no shared trunk). Hidden LSTM states are carried
//! by the caller and stored in the rollout buffer (Algorithm 1
//! line 20), giving truncated backpropagation-through-time of length 1.

use rand::Rng;

use tsc_nn::{Graph, Init, Linear, LstmCell, LstmScratch, LstmState, Params, Tensor, Var};

/// Reusable activation buffers for the tape-free actor forward pass
/// ([`ActorNet::infer`]). All tensors are sized on first use and then
/// reused allocation-free; [`alloc_events`](Self::alloc_events) counts
/// (re)allocations so tests can assert a zero-allocation steady state.
#[derive(Debug, Clone)]
pub struct ActorBuffers {
    fc: Tensor,
    scratch: LstmScratch,
    /// Next LSTM hidden output `h'` (`batch × lstm_hidden`).
    pub h: Tensor,
    /// Next LSTM cell state `c'` (`batch × lstm_hidden`).
    pub c: Tensor,
    /// Policy logits (`batch × max_phases`).
    pub logits: Tensor,
    /// Raw outgoing messages (`batch × bandwidth`; left `0 × 0` when
    /// the communication module is ablated).
    pub message: Tensor,
    allocs: u64,
}

impl ActorBuffers {
    /// Empty buffers, sized lazily by the first [`ActorNet::infer`].
    pub fn new() -> Self {
        ActorBuffers {
            fc: Tensor::zeros(0, 0),
            scratch: LstmScratch::new(),
            h: Tensor::zeros(0, 0),
            c: Tensor::zeros(0, 0),
            logits: Tensor::zeros(0, 0),
            message: Tensor::zeros(0, 0),
            allocs: 0,
        }
    }

    /// Cumulative buffer (re)allocation count. Constant across steps
    /// once shapes have stabilized — the inference path's allocation
    /// probe.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }
}

impl Default for ActorBuffers {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable activation buffers for [`CriticNet::infer`]; see
/// [`ActorBuffers`].
#[derive(Debug, Clone)]
pub struct CriticBuffers {
    fc: Tensor,
    scratch: LstmScratch,
    /// Next LSTM hidden output (`batch × lstm_hidden`).
    pub h: Tensor,
    /// Next LSTM cell state (`batch × lstm_hidden`).
    pub c: Tensor,
    /// State values (`batch × 1`).
    pub value: Tensor,
    allocs: u64,
}

impl CriticBuffers {
    /// Empty buffers, sized lazily by the first [`CriticNet::infer`].
    pub fn new() -> Self {
        CriticBuffers {
            fc: Tensor::zeros(0, 0),
            scratch: LstmScratch::new(),
            h: Tensor::zeros(0, 0),
            c: Tensor::zeros(0, 0),
            value: Tensor::zeros(0, 0),
            allocs: 0,
        }
    }

    /// Cumulative buffer (re)allocation count (see
    /// [`ActorBuffers::alloc_events`]).
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }
}

impl Default for CriticBuffers {
    fn default() -> Self {
        Self::new()
    }
}

/// The coordinated actor: `FC → LSTM → {policy head, message head}`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ActorNet {
    fc: Linear,
    lstm: LstmCell,
    policy_head: Linear,
    message_head: Option<Linear>,
    obs_dim: usize,
    bandwidth: usize,
}

/// Output of one actor forward pass (graph nodes).
#[derive(Debug, Clone, Copy)]
pub struct ActorOut {
    /// `batch × max_phases` policy logits.
    pub logits: Var,
    /// `batch × bandwidth` raw outgoing messages (`None` when the
    /// communication module is ablated).
    pub message: Option<Var>,
    /// LSTM hidden output (graph node), for further heads if needed.
    pub h: Var,
}

impl ActorNet {
    /// Builds an actor for `obs_dim`-dimensional local observations,
    /// `bandwidth` incoming/outgoing messages and `max_phases` actions.
    pub fn new<R: Rng>(
        params: &mut Params,
        obs_dim: usize,
        bandwidth: usize,
        hidden: usize,
        lstm_hidden: usize,
        max_phases: usize,
        rng: &mut R,
    ) -> Self {
        let input_dim = obs_dim + bandwidth;
        let fc = Linear::new(
            params,
            "actor.fc",
            input_dim,
            hidden,
            Init::Orthogonal { gain: 2f32.sqrt() },
            rng,
        );
        let lstm = LstmCell::new(params, "actor.lstm", hidden, lstm_hidden, rng);
        let policy_head = Linear::new(
            params,
            "actor.pi",
            lstm_hidden,
            max_phases,
            Init::Orthogonal { gain: 0.01 },
            rng,
        );
        let message_head = (bandwidth > 0).then(|| {
            Linear::new(
                params,
                "actor.msg",
                lstm_hidden,
                bandwidth,
                Init::Orthogonal { gain: 0.5 },
                rng,
            )
        });
        ActorNet {
            fc,
            lstm,
            policy_head,
            message_head,
            obs_dim,
            bandwidth,
        }
    }

    /// Local-observation dimension (message excluded).
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Message bandwidth.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// LSTM hidden width.
    pub fn lstm_hidden(&self) -> usize {
        self.lstm.hidden()
    }

    /// Forward pass from an already-assembled input
    /// `[obs ⊕ incoming message]` (`batch × (obs_dim + bandwidth)`)
    /// and explicit previous LSTM state vars.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: Var,
        h_prev: Var,
        c_prev: Var,
    ) -> (ActorOut, Var) {
        let z = self.fc.forward(g, params, x);
        let z = g.relu(z);
        let (h, c) = self.lstm.forward(g, params, z, h_prev, c_prev);
        let logits = self.policy_head.forward(g, params, h);
        let message = self
            .message_head
            .as_ref()
            .map(|mh| mh.forward(g, params, h));
        (ActorOut { logits, message, h }, c)
    }

    /// Tape-free forward pass, bit-identical to
    /// [`forward`](Self::forward) on the same inputs: `x` is the
    /// assembled `batch × (obs_dim + bandwidth)` input, `h_prev` /
    /// `c_prev` the previous LSTM state, and all activations land in
    /// `buf` (logits, raw message, next `h` / `c`). Records no autograd
    /// tape and allocates nothing once `buf`'s shapes have stabilized,
    /// which is what makes the serving hot loop and rollout collection
    /// cheap.
    pub fn infer(
        &self,
        params: &Params,
        x: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
        buf: &mut ActorBuffers,
    ) {
        let mut allocs = self.fc.infer_into(params, x, &mut buf.fc);
        for v in buf.fc.data_mut() {
            *v = v.max(0.0);
        }
        allocs += self.lstm.infer_into(
            params,
            &buf.fc,
            h_prev,
            c_prev,
            &mut buf.scratch,
            &mut buf.h,
            &mut buf.c,
        );
        allocs += self.policy_head.infer_into(params, &buf.h, &mut buf.logits);
        if let Some(mh) = &self.message_head {
            allocs += mh.infer_into(params, &buf.h, &mut buf.message);
        }
        buf.allocs += allocs;
    }

    /// Convenience single-step forward from plain tensors: returns
    /// logits, raw message row-major data, and the next LSTM state.
    pub fn step(
        &self,
        g: &mut Graph,
        params: &Params,
        input: Tensor,
        state: &LstmState,
    ) -> (ActorOut, LstmState) {
        let x = g.input(input);
        let h_prev = g.input(state.h.clone());
        let c_prev = g.input(state.c.clone());
        let (out, c) = self.forward(g, params, x, h_prev, c_prev);
        let next = LstmState {
            h: g.value(out.h).clone(),
            c: g.value(c).clone(),
        };
        (out, next)
    }
}

/// The centralized critic: `FC → LSTM → value` (Eq. 9).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CriticNet {
    fc: Linear,
    lstm: LstmCell,
    value_head: Linear,
    input_dim: usize,
}

impl CriticNet {
    /// Builds a critic for `input_dim`-dimensional inputs (local or
    /// centralized, per [`CriticMode`](crate::config::CriticMode)).
    pub fn new<R: Rng>(
        params: &mut Params,
        input_dim: usize,
        hidden: usize,
        lstm_hidden: usize,
        rng: &mut R,
    ) -> Self {
        let fc = Linear::new(
            params,
            "critic.fc",
            input_dim,
            hidden,
            Init::Orthogonal { gain: 2f32.sqrt() },
            rng,
        );
        let lstm = LstmCell::new(params, "critic.lstm", hidden, lstm_hidden, rng);
        let value_head = Linear::new(
            params,
            "critic.v",
            lstm_hidden,
            1,
            Init::Orthogonal { gain: 1.0 },
            rng,
        );
        CriticNet {
            fc,
            lstm,
            value_head,
            input_dim,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// LSTM hidden width.
    pub fn lstm_hidden(&self) -> usize {
        self.lstm.hidden()
    }

    /// Forward pass with explicit previous-state vars; returns the
    /// `batch × 1` value node and the new `(h, c)` nodes.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: Var,
        h_prev: Var,
        c_prev: Var,
    ) -> (Var, Var, Var) {
        let z = self.fc.forward(g, params, x);
        let z = g.relu(z);
        let (h, c) = self.lstm.forward(g, params, z, h_prev, c_prev);
        let v = self.value_head.forward(g, params, h);
        (v, h, c)
    }

    /// Single-step forward from plain tensors.
    pub fn step(
        &self,
        g: &mut Graph,
        params: &Params,
        input: Tensor,
        state: &LstmState,
    ) -> (Var, LstmState) {
        let x = g.input(input);
        let h_prev = g.input(state.h.clone());
        let c_prev = g.input(state.c.clone());
        let (v, h, c) = self.forward(g, params, x, h_prev, c_prev);
        let next = LstmState {
            h: g.value(h).clone(),
            c: g.value(c).clone(),
        };
        (v, next)
    }

    /// Tape-free forward pass, bit-identical to
    /// [`forward`](Self::forward); see [`ActorNet::infer`].
    pub fn infer(
        &self,
        params: &Params,
        x: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
        buf: &mut CriticBuffers,
    ) {
        let mut allocs = self.fc.infer_into(params, x, &mut buf.fc);
        for v in buf.fc.data_mut() {
            *v = v.max(0.0);
        }
        allocs += self.lstm.infer_into(
            params,
            &buf.fc,
            h_prev,
            c_prev,
            &mut buf.scratch,
            &mut buf.h,
            &mut buf.c,
        );
        allocs += self.value_head.infer_into(params, &buf.h, &mut buf.value);
        buf.allocs += allocs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn actor_emits_policy_and_message() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let actor = ActorNet::new(&mut params, 20, 1, 32, 32, 4, &mut rng);
        let mut g = Graph::new();
        let state = LstmState::zeros(3, 32);
        let input = Tensor::zeros(3, 21);
        let (out, next) = actor.step(&mut g, &params, input, &state);
        assert_eq!(g.value(out.logits).shape(), (3, 4));
        assert_eq!(g.value(out.message.unwrap()).shape(), (3, 1));
        assert_eq!(next.h.shape(), (3, 32));
    }

    #[test]
    fn zero_bandwidth_actor_has_no_message_head() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let actor = ActorNet::new(&mut params, 20, 0, 32, 32, 4, &mut rng);
        let mut g = Graph::new();
        let (out, _) = actor.step(
            &mut g,
            &params,
            Tensor::zeros(1, 20),
            &LstmState::zeros(1, 32),
        );
        assert!(out.message.is_none());
    }

    #[test]
    fn actor_policy_depends_on_incoming_message() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let actor = ActorNet::new(&mut params, 4, 1, 16, 16, 4, &mut rng);
        let state = LstmState::zeros(1, 16);
        let run = |msg: f32| {
            let mut g = Graph::new();
            let mut input = Tensor::zeros(1, 5);
            input.set(0, 4, msg);
            let (out, _) = actor.step(&mut g, &params, input, &state);
            g.value(out.logits).clone()
        };
        assert_ne!(run(0.0), run(1.0), "message reaches the policy");
    }

    #[test]
    fn critic_value_is_scalar_per_row() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let critic = CriticNet::new(&mut params, 36, 32, 32, &mut rng);
        let mut g = Graph::new();
        let (v, next) = critic.step(
            &mut g,
            &params,
            Tensor::zeros(5, 36),
            &LstmState::zeros(5, 32),
        );
        assert_eq!(g.value(v).shape(), (5, 1));
        assert_eq!(next.c.shape(), (5, 32));
    }

    #[test]
    fn actor_infer_is_bit_identical_to_graph_step() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let actor = ActorNet::new(&mut params, 8, 2, 16, 16, 4, &mut rng);
        let x = Tensor::randn(3, 10, 1.0, &mut rng);
        let state = LstmState {
            h: Tensor::randn(3, 16, 0.3, &mut rng),
            c: Tensor::randn(3, 16, 0.3, &mut rng),
        };
        let mut g = Graph::new();
        let (out, next) = actor.step(&mut g, &params, x.clone(), &state);
        let mut buf = ActorBuffers::new();
        actor.infer(&params, &x, &state.h, &state.c, &mut buf);
        assert_eq!(&buf.logits, g.value(out.logits));
        assert_eq!(&buf.message, g.value(out.message.unwrap()));
        assert_eq!(buf.h, next.h);
        assert_eq!(buf.c, next.c);
        // Steady state: repeating the same step allocates nothing.
        let after_first = buf.alloc_events();
        for _ in 0..10 {
            actor.infer(&params, &x, &state.h, &state.c, &mut buf);
        }
        assert_eq!(buf.alloc_events(), after_first);
    }

    #[test]
    fn critic_infer_is_bit_identical_to_graph_step() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = Params::new();
        let critic = CriticNet::new(&mut params, 12, 16, 16, &mut rng);
        let x = Tensor::randn(2, 12, 1.0, &mut rng);
        let state = LstmState {
            h: Tensor::randn(2, 16, 0.3, &mut rng),
            c: Tensor::randn(2, 16, 0.3, &mut rng),
        };
        let mut g = Graph::new();
        let (v, next) = critic.step(&mut g, &params, x.clone(), &state);
        let mut buf = CriticBuffers::new();
        critic.infer(&params, &x, &state.h, &state.c, &mut buf);
        assert_eq!(&buf.value, g.value(v));
        assert_eq!(buf.h, next.h);
        assert_eq!(buf.c, next.c);
        let after_first = buf.alloc_events();
        critic.infer(&params, &x, &state.h, &state.c, &mut buf);
        assert_eq!(buf.alloc_events(), after_first);
    }

    #[test]
    fn actor_and_critic_have_separate_parameters() {
        // Paper §V-A: completely separate networks.
        let mut rng = StdRng::seed_from_u64(4);
        let mut actor_params = Params::new();
        let _actor = ActorNet::new(&mut actor_params, 20, 1, 32, 32, 4, &mut rng);
        let mut critic_params = Params::new();
        let _critic = CriticNet::new(&mut critic_params, 36, 32, 32, &mut rng);
        assert!(actor_params.num_scalars() > 0);
        assert!(critic_params.num_scalars() > 0);
        // Separate Params sets: updating one cannot touch the other.
        assert_ne!(
            actor_params.num_scalars(),
            0,
            "actor owns its own parameters"
        );
    }
}
