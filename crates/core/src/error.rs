//! Typed errors of the fault-tolerant training loop.

use std::error::Error;
use std::fmt;

use tsc_sim::SimError;

/// Errors produced by checkpointed training
/// ([`PairUpLight::train_checkpointed`](crate::PairUpLight::train_checkpointed))
/// and checkpoint restore ([`PairUpLight::resume`](crate::PairUpLight::resume)).
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainError {
    /// An environment replica failed with a simulator error (a real
    /// error, not a panic — these are never retried because they are
    /// deterministic: the same seed would fail the same way).
    Sim(SimError),
    /// A filesystem failure while writing or managing checkpoints.
    Io(std::io::Error),
    /// A checkpoint file could not be parsed or failed validation.
    Load(tsc_nn::LoadError),
    /// A PPO round kept diverging after exhausting its rollback
    /// retries.
    Diverged {
        /// The round (0-based, counted over the model's lifetime) that
        /// could not be completed.
        round: u64,
        /// Reseeded retries attempted after the first failure.
        retries: u32,
        /// Human-readable description of the last divergence.
        reason: String,
    },
    /// A rollout worker kept panicking after exhausting its same-seed
    /// retries.
    WorkerPanic {
        /// The round during which the worker panicked.
        round: u64,
        /// The environment replica index the worker was driving.
        env: usize,
        /// Same-seed retries attempted after the first panic.
        retries: u32,
    },
    /// Training was stopped by an injected abort fault (test-only; see
    /// [`FaultPlan::abort_after_round`](crate::FaultPlan::abort_after_round)).
    Aborted {
        /// The last round completed before the abort.
        round: u64,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Sim(e) => write!(f, "simulation error: {e}"),
            TrainError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            TrainError::Load(e) => write!(f, "checkpoint load error: {e}"),
            TrainError::Diverged {
                round,
                retries,
                reason,
            } => write!(
                f,
                "round {round} still diverged after {retries} reseeded retries: {reason}"
            ),
            TrainError::WorkerPanic {
                round,
                env,
                retries,
            } => write!(
                f,
                "rollout worker for env {env} panicked in round {round} and \
                 {retries} same-seed retries did not recover it"
            ),
            TrainError::Aborted { round } => {
                write!(f, "training aborted by fault plan after round {round}")
            }
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Sim(e) => Some(e),
            TrainError::Io(e) => Some(e),
            TrainError::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for TrainError {
    fn from(e: SimError) -> Self {
        TrainError::Sim(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Io(e)
    }
}

impl From<tsc_nn::LoadError> for TrainError {
    fn from(e: tsc_nn::LoadError) -> Self {
        TrainError::Load(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failed_round() {
        let e = TrainError::Diverged {
            round: 7,
            retries: 2,
            reason: "policy loss is NaN".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("round 7"));
        assert!(msg.contains("2 reseeded retries"));
        let e = TrainError::WorkerPanic {
            round: 3,
            env: 1,
            retries: 2,
        };
        assert!(e.to_string().contains("env 1"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrainError>();
    }
}
