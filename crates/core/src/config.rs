//! PairUpLight hyper-parameters.

use tsc_rl::PpoConfig;

/// How each agent's communication partner is chosen each step — the
/// design choice ablated by the `ablation_pairing` experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PairingMode {
    /// The paper's rule: the most congested upstream intersection,
    /// falling back to self when nothing upstream is congested.
    CongestedUpstream,
    /// Always listen to your own previous message (no inter-agent
    /// communication topology).
    SelfLoop,
    /// A uniformly random upstream neighbor each step.
    RandomUpstream,
}

/// How the critic's input is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CriticMode {
    /// Local observation only (the SingleAgentRL baseline and the
    /// decentralized-critic ablation).
    Local,
    /// Centralized: local observation plus one-hop and two-hop neighbor
    /// traffic, zero-padded at grid edges (paper §V-B, Eq. 9).
    Centralized,
}

/// Full configuration of a PairUpLight model (paper §V, Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairUpLightConfig {
    /// PPO backbone hyper-parameters (γ, λ, clip ε, lr, β, K, M).
    pub ppo: PpoConfig,
    /// Width of the fully-connected trunk.
    pub hidden: usize,
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// Communication bandwidth: number of 32-bit messages exchanged per
    /// step. The paper finds 1 optimal (Table IV, Fig. 11); 0 disables
    /// communication (the ablation of Fig. 8).
    pub bandwidth: usize,
    /// Standard deviation σ of the message regularizer
    /// `m̂ = logistic(N(m, σ))` (Algorithm 1 line 16). Applied during
    /// training only.
    pub sigma: f32,
    /// Weight of the message head's congestion-prediction auxiliary
    /// loss (see DESIGN.md: this replaces cross-time channel
    /// backpropagation, which the stored-buffer PPO of Algorithm 1
    /// cannot provide).
    pub message_coef: f32,
    /// Communication-partner selection rule.
    pub pairing: PairingMode,
    /// Critic input assembly.
    pub critic_mode: CriticMode,
    /// Share one actor/critic across agents (paper: on for homogeneous
    /// grids, off for Monaco).
    pub parameter_sharing: bool,
    /// ε-greedy exploration at the start of training.
    pub eps_start: f32,
    /// ε-greedy floor.
    pub eps_end: f32,
    /// Episodes over which ε decays linearly.
    pub eps_decay_episodes: usize,
    /// Multiplies raw rewards (Eq. 6 values are large negatives; the
    /// networks train on `reward * reward_scale`).
    pub reward_scale: f32,
    /// Scaled rewards are clamped to `[-reward_clip, 0]`: under
    /// gridlock the Eq. 6 waiting term grows without bound, which would
    /// otherwise blow up the value targets and stall policy learning.
    pub reward_clip: f32,
    /// Execute the deployed policy stochastically (sample from π) or
    /// greedily (argmax). PPO learns a stochastic policy whose phase
    /// rotation lives partly in its randomness, so sampling is the
    /// faithful execution mode.
    pub stochastic_execution: bool,
    /// Maximum phases any agent can select (action-space width).
    pub max_phases: usize,
    /// Seed for weight initialization and exploration.
    pub seed: u64,
    /// Environment replicas collected per PPO update. 1 reproduces the
    /// classic one-episode-per-update loop; K > 1 collects K episodes
    /// against a frozen policy snapshot and merges them (env-index
    /// order) into one multi-env batch.
    pub num_envs: usize,
    /// Drive the K replicas from scoped worker threads (`true`) or a
    /// serial loop (`false`). Both produce bit-identical results; the
    /// switch exists so tests can prove it and single-core hosts can
    /// skip thread overhead.
    pub parallel_rollouts: bool,
    /// Maximum automatic retries of one training round before the
    /// fault-tolerant loop gives up with a typed error. Applies both to
    /// panicked rollout workers (retried with the *same* derived seed,
    /// preserving determinism) and to diverged PPO updates (rolled back
    /// and retried with a reseeded round).
    pub max_round_retries: u32,
    /// Divergence-sentinel threshold: a PPO round whose policy or value
    /// loss exceeds this magnitude (or is non-finite, or leaves a
    /// non-finite parameter behind) is rolled back to the pre-round
    /// state instead of poisoning the model.
    pub divergence_loss_limit: f32,
}

impl Default for PairUpLightConfig {
    fn default() -> Self {
        PairUpLightConfig {
            ppo: PpoConfig {
                gamma: 0.99,
                lambda: 0.95,
                clip: 0.2,
                lr: 3e-4,
                entropy_coef: 0.01,
                value_coef: 0.25,
                epochs: 4,
                minibatch: 256,
                max_grad_norm: 0.5,
            },
            hidden: 64,
            lstm_hidden: 64,
            bandwidth: 1,
            sigma: 0.2,
            message_coef: 0.1,
            pairing: PairingMode::CongestedUpstream,
            critic_mode: CriticMode::Centralized,
            parameter_sharing: true,
            eps_start: 0.15,
            eps_end: 0.02,
            eps_decay_episodes: 60,
            reward_scale: 0.02,
            reward_clip: 5.0,
            stochastic_execution: true,
            max_phases: 4,
            seed: 0,
            num_envs: 1,
            parallel_rollouts: true,
            max_round_retries: 2,
            divergence_loss_limit: 1e4,
        }
    }
}

impl PairUpLightConfig {
    /// The no-communication ablation of Fig. 8 (same backbone, zero
    /// bandwidth).
    pub fn without_communication(mut self) -> Self {
        self.bandwidth = 0;
        self
    }

    /// The SingleAgentRL baseline: shared PPO policy, local critic, no
    /// communication.
    pub fn single_agent() -> Self {
        PairUpLightConfig {
            bandwidth: 0,
            critic_mode: CriticMode::Local,
            ..PairUpLightConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = PairUpLightConfig::default();
        assert_eq!(c.bandwidth, 1, "a single 32-bit message (Table IV)");
        assert_eq!(c.critic_mode, CriticMode::Centralized);
        assert!(c.parameter_sharing);
        assert_eq!(c.max_phases, 4);
    }

    #[test]
    fn ablation_only_changes_bandwidth() {
        let c = PairUpLightConfig::default().without_communication();
        assert_eq!(c.bandwidth, 0);
        assert_eq!(c.critic_mode, CriticMode::Centralized);
    }

    #[test]
    fn single_agent_uses_local_critic() {
        let c = PairUpLightConfig::single_agent();
        assert_eq!(c.critic_mode, CriticMode::Local);
        assert_eq!(c.bandwidth, 0);
    }
}
