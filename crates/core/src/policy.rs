//! Deployable policy snapshots: the minimal frozen state a serving
//! runtime needs to drive a grid — actor weights, observation encoder,
//! pairing table, and per-agent phase counts. The critic, optimizer
//! state, and training counters stay behind (paper Fig. 4: only the
//! actor is deployed).
//!
//! A snapshot is the hand-off point between the training stack
//! ([`PairUpLight::policy_snapshot`](crate::PairUpLight::policy_snapshot))
//! and the `tsc-serve` runtime; it can also swap in fresh weights from
//! a newer checkpoint without rebuilding topology, which is what makes
//! serving-side hot reload atomic.

use tsc_nn::{LoadError, Params};

use crate::checkpoint::{config_fingerprint, Checkpoint};
use crate::config::PairUpLightConfig;
use crate::error::TrainError;
use crate::model::ActorNet;
use crate::obs::ObsEncoder;
use crate::pairing::PairingTable;

/// A frozen, self-contained copy of the deployable policy.
#[derive(Debug, Clone)]
pub struct PolicySnapshot {
    cfg: PairUpLightConfig,
    encoder: ObsEncoder,
    pairing: PairingTable,
    /// `(params, net)` per bundle (1 when parameters are shared).
    actors: Vec<(Params, ActorNet)>,
    phases_per_agent: Vec<usize>,
    num_agents: usize,
}

impl PolicySnapshot {
    pub(crate) fn new(
        cfg: PairUpLightConfig,
        encoder: ObsEncoder,
        pairing: PairingTable,
        actors: Vec<(Params, ActorNet)>,
        phases_per_agent: Vec<usize>,
        num_agents: usize,
    ) -> Self {
        PolicySnapshot {
            cfg,
            encoder,
            pairing,
            actors,
            phases_per_agent,
            num_agents,
        }
    }

    /// The configuration the policy was trained with.
    pub fn config(&self) -> &PairUpLightConfig {
        &self.cfg
    }

    /// Number of controlled intersections.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Whether all agents share one actor (enables exact batched
    /// inference: one matrix forward for the whole grid).
    pub fn shared(&self) -> bool {
        self.actors.len() == 1
    }

    /// The `(params, net)` bundles (1 when shared, else one per agent).
    pub fn actors(&self) -> &[(Params, ActorNet)] {
        &self.actors
    }

    /// The observation encoder for this topology.
    pub fn encoder(&self) -> &ObsEncoder {
        &self.encoder
    }

    /// The partner-selection table (paper §V-C).
    pub fn pairing(&self) -> &PairingTable {
        &self.pairing
    }

    /// Valid phase count per agent (already clamped to `max_phases`).
    pub fn phases_per_agent(&self) -> &[usize] {
        &self.phases_per_agent
    }

    /// All actor weights flattened into one vector — cheap equality
    /// probe for "the in-memory model was not touched" assertions.
    pub fn parameter_vector(&self) -> Vec<f32> {
        let mut v = Vec::new();
        for (params, _) in &self.actors {
            for id in params.ids() {
                v.extend_from_slice(params.value(id).data());
            }
        }
        v
    }

    /// Builds a snapshot with this snapshot's topology and the
    /// checkpoint's weights — the serving-side hot-reload primitive.
    /// All-or-nothing: the fingerprint, bundle count, and every
    /// bundle's tensor layout are validated before anything is copied,
    /// so an `Err` means `self` is untouched and no partial state
    /// exists anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Load`] on fingerprint, bundle-count, or
    /// layout mismatch.
    pub fn with_checkpoint(&self, ck: &Checkpoint) -> Result<PolicySnapshot, TrainError> {
        let expected = config_fingerprint(&self.cfg);
        if ck.fingerprint != expected {
            return Err(TrainError::Load(LoadError::Format(format!(
                "configuration fingerprint mismatch: checkpoint {:016x}, policy {expected:016x}",
                ck.fingerprint
            ))));
        }
        if ck.bundles.len() != self.actors.len() {
            return Err(TrainError::Load(LoadError::Format(format!(
                "expected {} bundles, found {}",
                self.actors.len(),
                ck.bundles.len()
            ))));
        }
        for ((params, _), (loaded, _)) in self.actors.iter().zip(&ck.bundles) {
            crate::trainer::PairUpLight::check_layout(params, loaded)?;
        }
        let mut next = self.clone();
        for ((params, _), (loaded, _)) in next.actors.iter_mut().zip(&ck.bundles) {
            params.copy_from(loaded);
        }
        Ok(next)
    }
}
