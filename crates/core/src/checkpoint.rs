//! Full-training-state checkpoints: format, atomic writes, retention.
//!
//! A checkpoint captures everything [`PairUpLight`](crate::PairUpLight)
//! needs to continue training **bit-for-bit identically** to a run that
//! was never interrupted: every bundle's weights, the Adam moments and
//! timestep (bias correction depends on it), the episode/round
//! counters that drive seed derivation and ε decay, the base seed of
//! the interrupted `train` call, and a fingerprint of the
//! configuration so a checkpoint cannot be restored into a
//! differently-configured learner.
//!
//! The on-disk format extends the `tsc-nn` text formats:
//!
//! ```text
//! pairuplight-checkpoint v1 bundles=N
//! fingerprint <16 hex digits>
//! episodes <count>
//! rounds <count>
//! base-seed <u64>
//! tsc-nn-params v1     ⎫
//! …                    ⎬ repeated once per bundle
//! tsc-nn-adam v1       ⎪
//! …                    ⎭
//! checksum <body bytes> <16 hex digits>
//! ```
//!
//! The trailer makes torn or corrupted files detectable: the checksum
//! is FNV-1a-64 over every byte before the trailer line, and the byte
//! count catches truncation even when the cut lands on a line
//! boundary. Writes go to a temporary sibling file first and are
//! `rename`d into place, so a crash mid-write never destroys the
//! previous good checkpoint.

use std::io;
use std::path::{Path, PathBuf};

use tsc_nn::{load_adam, load_params, save_adam, save_params, Adam, LoadError, Params};

/// FNV-1a 64-bit hash — the checksum of the checkpoint trailer and the
/// configuration fingerprint. Deterministic, dependency-free, and
/// plenty for integrity checking (this is corruption detection, not
/// cryptography).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The configuration fingerprint written into every checkpoint
/// (FNV-1a-64 over the configuration's debug representation). Public
/// so checkpoint *consumers* — the serving runtime, diagnostics — can
/// validate compatibility the same way the trainer does.
pub fn config_fingerprint(cfg: &crate::config::PairUpLightConfig) -> u64 {
    fnv1a64(format!("{cfg:?}").as_bytes())
}

/// The serializable full training state of one learner.
#[derive(Debug)]
pub struct Checkpoint {
    /// FNV-1a-64 of the learner configuration's debug representation;
    /// restore refuses a checkpoint whose fingerprint disagrees.
    pub fingerprint: u64,
    /// Episodes completed when the checkpoint was taken.
    pub episodes_trained: usize,
    /// PPO update rounds completed when the checkpoint was taken.
    pub rounds_trained: u64,
    /// The `base_seed` of the interrupted training call, so resume can
    /// continue the same seed sequence.
    pub base_seed: u64,
    /// Per-bundle weights and full optimizer state.
    pub bundles: Vec<(Params, Adam)>,
}

impl Checkpoint {
    /// Serializes to the v1 text format, checksum trailer included.
    pub fn encode(&self) -> String {
        let mut body = format!(
            "pairuplight-checkpoint v1 bundles={}\n\
             fingerprint {:016x}\n\
             episodes {}\n\
             rounds {}\n\
             base-seed {}\n",
            self.bundles.len(),
            self.fingerprint,
            self.episodes_trained,
            self.rounds_trained,
            self.base_seed,
        );
        let mut buf = Vec::new();
        for (params, opt) in &self.bundles {
            save_params(params, &mut buf).expect("write to Vec cannot fail");
            save_adam(opt, &mut buf).expect("write to Vec cannot fail");
        }
        body.push_str(std::str::from_utf8(&buf).expect("text format is UTF-8"));
        let sum = fnv1a64(body.as_bytes());
        body.push_str(&format!("checksum {} {:016x}\n", body.len(), sum));
        body
    }

    /// Parses a checkpoint, verifying the checksum trailer first and
    /// every section after — nothing is returned unless the whole file
    /// is valid.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Format`] for truncation, corruption, or any
    /// malformed section.
    pub fn decode(text: &str) -> Result<Self, LoadError> {
        // Verify the trailer before trusting anything else.
        let trailer_start = text
            .rfind("\nchecksum ")
            .map(|i| i + 1)
            .ok_or_else(|| LoadError::Format("missing checksum trailer".into()))?;
        let (body, trailer) = text.split_at(trailer_start);
        let mut parts = trailer.split_whitespace().skip(1);
        let nbytes: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format("bad checksum byte count".into()))?;
        let sum: u64 = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| LoadError::Format("bad checksum value".into()))?;
        if body.len() != nbytes {
            return Err(LoadError::Format(format!(
                "checkpoint truncated: trailer claims {nbytes} bytes, found {}",
                body.len()
            )));
        }
        if fnv1a64(body.as_bytes()) != sum {
            return Err(LoadError::Format(
                "checkpoint corrupted: checksum mismatch".into(),
            ));
        }

        let mut lines = body.lines();
        let header = lines
            .next()
            .ok_or_else(|| LoadError::Format("empty checkpoint".into()))?;
        let num_bundles: usize = header
            .strip_prefix("pairuplight-checkpoint v1 bundles=")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| LoadError::Format(format!("bad checkpoint header {header:?}")))?;
        let mut field = |key: &str| -> Result<String, LoadError> {
            let line = lines
                .next()
                .ok_or_else(|| LoadError::Format(format!("missing {key} line")))?;
            line.strip_prefix(key)
                .map(|s| s.trim().to_string())
                .ok_or_else(|| LoadError::Format(format!("expected {key} line, found {line:?}")))
        };
        let fingerprint = u64::from_str_radix(&field("fingerprint")?, 16)
            .map_err(|e| LoadError::Format(format!("bad fingerprint: {e}")))?;
        let episodes_trained = field("episodes")?
            .parse()
            .map_err(|e| LoadError::Format(format!("bad episode count: {e}")))?;
        let rounds_trained = field("rounds")?
            .parse()
            .map_err(|e| LoadError::Format(format!("bad round count: {e}")))?;
        let base_seed = field("base-seed")?
            .parse()
            .map_err(|e| LoadError::Format(format!("bad base seed: {e}")))?;

        // Split the remainder into tsc-nn sections and parse them all
        // before assembling anything.
        let mut sections: Vec<(bool, String)> = Vec::new();
        for line in lines {
            match line.trim() {
                "tsc-nn-params v1" => sections.push((false, String::new())),
                "tsc-nn-adam v1" => sections.push((true, String::new())),
                _ => {}
            }
            let Some(last) = sections.last_mut() else {
                return Err(LoadError::Format(format!(
                    "unexpected content before first section: {line:?}"
                )));
            };
            last.1.push_str(line);
            last.1.push('\n');
        }
        if sections.len() != 2 * num_bundles {
            return Err(LoadError::Format(format!(
                "expected {} sections for {num_bundles} bundles, found {}",
                2 * num_bundles,
                sections.len()
            )));
        }
        let mut bundles = Vec::with_capacity(num_bundles);
        for pair in sections.chunks(2) {
            let [(false, params_text), (true, adam_text)] = pair else {
                return Err(LoadError::Format(
                    "sections must alternate params, adam".into(),
                ));
            };
            let params = load_params(params_text.as_bytes())?;
            let opt = load_adam(adam_text.as_bytes())?;
            if !opt.matches(&params) {
                return Err(LoadError::Format(
                    "optimizer moments do not match their bundle's parameters".into(),
                ));
            }
            bundles.push((params, opt));
        }
        Ok(Checkpoint {
            fingerprint,
            episodes_trained,
            rounds_trained,
            base_seed,
            bundles,
        })
    }

    /// Writes the checkpoint to `path` atomically: the encoded text
    /// goes to a temporary sibling first, then a `rename` publishes it.
    /// A crash at any point leaves either the old file or the new one,
    /// never a torn mix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }

    /// Simulates a torn checkpoint write (disk full mid-write): half of
    /// the encoded text lands in the temporary sibling of `path`, the
    /// rename never happens, and the error the real write would have
    /// surfaced is returned. Whatever was previously at `path` is left
    /// untouched — the property
    /// [`write_atomic`](Self::write_atomic)'s temp-then-rename protocol
    /// exists to guarantee, and which the fault-tolerance tests pin.
    pub fn write_torn(&self, path: impl AsRef<Path>) -> io::Error {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let encoded = self.encode();
        let half = &encoded.as_bytes()[..encoded.len() / 2];
        // Best-effort: if even the torn write fails, the injected error
        // below still reports the fault.
        let _ = std::fs::write(&tmp, half);
        io::Error::other("injected disk-full during checkpoint write")
    }

    /// Reads and fully validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Io`] on filesystem failures and
    /// [`LoadError::Format`] on any validation failure.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
        Self::decode(&text)
    }
}

/// When to checkpoint and how many files to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write a checkpoint every this many completed rounds (0 disables
    /// periodic checkpoints; a final one is still written when training
    /// finishes or aborts cleanly).
    pub every_rounds: u64,
    /// Keep at most this many checkpoint files; older ones are pruned
    /// after each successful write. 0 means keep everything.
    pub keep_last: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_rounds: 10,
            keep_last: 3,
        }
    }
}

/// Owns a checkpoint directory: naming, discovery, and retention.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    policy: CheckpointPolicy,
}

impl CheckpointManager {
    /// Creates a manager over `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, policy: CheckpointPolicy) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointManager { dir, policy })
    }

    /// The retention/frequency policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a checkpoint is due after `rounds_trained` completed
    /// rounds.
    pub fn due(&self, rounds_trained: u64) -> bool {
        self.policy.every_rounds > 0
            && rounds_trained > 0
            && rounds_trained.is_multiple_of(self.policy.every_rounds)
    }

    /// Canonical file path for the checkpoint taken after `round`
    /// rounds. Zero-padded so lexicographic order is round order.
    pub fn path_for(&self, round: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{round:010}.txt"))
    }

    /// All checkpoints in the directory, ascending by round.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(round) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".txt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((round, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(round, _)| round);
        Ok(out)
    }

    /// The newest checkpoint, if any.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn latest(&self) -> io::Result<Option<(u64, PathBuf)>> {
        Ok(self.list()?.pop())
    }

    /// Deletes all but the newest `keep_last` checkpoints and returns
    /// the removed paths. No-op when `keep_last` is 0.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn prune(&self) -> io::Result<Vec<PathBuf>> {
        if self.policy.keep_last == 0 {
            return Ok(Vec::new());
        }
        let all = self.list()?;
        let excess = all.len().saturating_sub(self.policy.keep_last);
        let mut removed = Vec::with_capacity(excess);
        for (_, path) in all.into_iter().take(excess) {
            std::fs::remove_file(&path)?;
            removed.push(path);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_nn::Tensor;

    fn sample() -> Checkpoint {
        let mut params = Params::new();
        params.add("w", Tensor::from_rows(&[&[1.5, -2.25], &[0.0, 3.125]]));
        params.add("b", Tensor::from_rows(&[&[0.5, f32::MIN_POSITIVE]]));
        let opt = Adam::new(&params, 3e-4);
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            episodes_trained: 12,
            rounds_trained: 6,
            base_seed: 99,
            bundles: vec![(params, opt)],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample();
        let restored = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(restored.fingerprint, ck.fingerprint);
        assert_eq!(restored.episodes_trained, 12);
        assert_eq!(restored.rounds_trained, 6);
        assert_eq!(restored.base_seed, 99);
        assert_eq!(restored.bundles.len(), 1);
        let (p, q) = (&ck.bundles[0].0, &restored.bundles[0].0);
        for (a, b) in p.ids().zip(q.ids()) {
            assert_eq!(p.value(a), q.value(b));
        }
        assert_eq!(restored.bundles[0].1.timestep(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let text = ck_text();
        // Flip one digit inside a tensor value.
        let corrupted = text.replacen("1.5", "1.6", 1);
        assert_ne!(corrupted, text);
        let err = Checkpoint::decode(&corrupted).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let text = ck_text();
        // Cut on a line boundary so only the byte count can catch it.
        let cut = text[..text.len() / 2].rfind('\n').unwrap() + 1;
        let truncated = format!(
            "{}{}",
            &text[..cut],
            text.lines().last().unwrap() // keep a checksum trailer
        );
        assert!(Checkpoint::decode(&truncated).is_err());
        assert!(Checkpoint::decode("").is_err());
        assert!(Checkpoint::decode("no trailer at all\n").is_err());
    }

    fn ck_text() -> String {
        sample().encode()
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("pairuplight_ck_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.txt");
        sample().write_atomic(&path).unwrap();
        let restored = Checkpoint::read(&path).unwrap();
        assert_eq!(restored.base_seed, 99);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manager_prunes_to_keep_last() {
        let dir = std::env::temp_dir().join("pairuplight_ck_prune_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(
            &dir,
            CheckpointPolicy {
                every_rounds: 2,
                keep_last: 2,
            },
        )
        .unwrap();
        assert!(!mgr.due(0));
        assert!(!mgr.due(1));
        assert!(mgr.due(2));
        assert!(mgr.due(4));
        for round in [2, 4, 6, 8] {
            sample().write_atomic(mgr.path_for(round)).unwrap();
        }
        let removed = mgr.prune().unwrap();
        assert_eq!(removed.len(), 2);
        let kept: Vec<u64> = mgr.list().unwrap().into_iter().map(|(r, _)| r).collect();
        assert_eq!(kept, vec![6, 8]);
        assert_eq!(mgr.latest().unwrap().unwrap().0, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
