//! The message regularizer unit (Algorithm 1 line 16) and the partner
//! message channel.
//!
//! The actor's raw message output `m` is regularized before it crosses
//! the channel: `m̂ = Logistic(N(m, σ))` — Gaussian noise during
//! training (forcing the protocol to be robust and effectively
//! discretizing it, as in DIAL) followed by a logistic squash into
//! `(0, 1)`. At evaluation time σ = 0.
//!
//! [`MessageChannel`] models the physical channel the regularized
//! message crosses between paired intersections. In the fault-free case
//! it is a plain one-step mailbox (each agent reads the message its
//! partner published on the previous decision step, bit-identical to a
//! direct buffer swap). Under a [`CommsFault`] schedule it can drop,
//! delay, or corrupt deliveries deterministically — the controller-side
//! half of the chaos engine in `tsc_sim::chaos`.

use rand::Rng;
use tsc_sim::chaos::{chaos_uniform, fault_salt, CommsFault, CommsKind};

/// Applies the regularizer to a raw message vector.
///
/// With `sigma = 0` this is a plain logistic squash (evaluation mode).
pub fn regularize<R: Rng>(raw: &[f32], sigma: f32, rng: &mut R) -> Vec<f32> {
    let mut out = vec![0.0; raw.len()];
    regularize_into(raw, sigma, rng, &mut out);
    out
}

/// Applies the regularizer into a caller-owned slice (fully
/// overwritten), drawing exactly the same noise sequence as
/// [`regularize`] — the allocation-free variant used by the rollout
/// collection hot loop.
///
/// # Panics
///
/// Panics if `out.len() != raw.len()`.
pub fn regularize_into<R: Rng>(raw: &[f32], sigma: f32, rng: &mut R, out: &mut [f32]) {
    assert_eq!(out.len(), raw.len(), "regularize_into length");
    for (o, &m) in out.iter_mut().zip(raw) {
        let noisy = if sigma > 0.0 {
            m + gaussian(rng) * sigma
        } else {
            m
        };
        *o = logistic(noisy);
    }
}

/// The logistic function `1 / (1 + e^{-x})`.
pub fn logistic(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.gen::<f32>().max(1e-12);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Communication accounting for Table IV: bits transmitted per agent
/// per decision step given a message bandwidth (each message is one
/// 32-bit scalar).
pub fn bits_per_step(bandwidth: usize) -> usize {
    bandwidth * 32
}

/// What a receiver substitutes for a partner message that the channel
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MessageLossPolicy {
    /// Substitute the all-zero message (the channel's initial state).
    /// Conservative: a silent partner looks like an idle partner.
    #[default]
    ZeroFill,
    /// Hold the last message that *was* delivered to this receiver.
    /// Smooth: a short outage looks like a frozen partner.
    HoldLast,
}

/// A deterministic partner-message channel with optional scheduled
/// faults.
///
/// Agents `publish` their regularized messages once per decision step;
/// each receiver then asks the channel to `deliver_into` the message
/// from its partner. With no faults installed, delivery copies exactly
/// the bytes the sender published on the most recent `publish` — the
/// same values a plain double-buffer swap would read — so an empty
/// fault schedule is bit-identical to not having a channel at all.
///
/// Faults ([`CommsFault`], built via `ChaosPlan` in `tsc_sim::chaos`)
/// are applied in schedule order per delivery:
///
/// * `Delay { steps }` — read the message published `steps` publishes
///   ago (saturating at the channel's ring depth; older than history →
///   the zero message).
/// * `Drop { p }` — with hash-derived probability `p` the delivery is
///   lost and the receiver's [`MessageLossPolicy`] decides the
///   substitute. Decisions consume no RNG state and are keyed on
///   (fault, sender, receiver, step), so the same seed and schedule
///   always drop the same deliveries.
/// * `Corrupt { amp }` — add uniform noise in `[-amp, amp]` to each
///   element, clamped back into `[0, 1]` (messages are
///   post-regularizer).
#[derive(Debug, Clone)]
pub struct MessageChannel {
    num_agents: usize,
    bandwidth: usize,
    /// Ring of published message generations, flattened
    /// `[depth][agent][bandwidth]`. `head` indexes the most recent
    /// generation.
    ring: Vec<f32>,
    depth: usize,
    head: usize,
    /// Last successfully delivered message per receiver (for
    /// [`MessageLossPolicy::HoldLast`]).
    last_delivered: Vec<f32>,
    policy: MessageLossPolicy,
    faults: Vec<CommsFault>,
    seed: u64,
}

impl MessageChannel {
    /// Creates a fault-free channel for `num_agents` agents exchanging
    /// `bandwidth`-scalar messages. All buffers start at zero.
    pub fn new(num_agents: usize, bandwidth: usize, policy: MessageLossPolicy) -> Self {
        Self {
            num_agents,
            bandwidth,
            ring: vec![0.0; num_agents * bandwidth],
            depth: 1,
            head: 0,
            last_delivered: vec![0.0; num_agents * bandwidth],
            policy,
            faults: Vec::new(),
            seed: 0,
        }
    }

    /// Installs a fault schedule (replacing any previous one) and
    /// resets the channel. `seed` keys the hash-derived drop and
    /// corruption decisions. The ring is resized to hold enough
    /// history for the largest `Delay` in the schedule.
    pub fn set_faults(&mut self, faults: Vec<CommsFault>, seed: u64) {
        let max_delay = faults
            .iter()
            .map(|f| match f.kind {
                CommsKind::Delay { steps } => steps as usize,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        self.depth = 1 + max_delay;
        self.ring = vec![0.0; self.depth * self.num_agents * self.bandwidth];
        self.faults = faults;
        self.seed = seed;
        self.reset();
    }

    /// Clears all message history back to the all-zero initial state.
    /// The installed fault schedule is kept.
    pub fn reset(&mut self) {
        self.ring.iter_mut().for_each(|v| *v = 0.0);
        self.last_delivered.iter_mut().for_each(|v| *v = 0.0);
        self.head = 0;
    }

    /// Publishes one message per agent, starting a new generation.
    ///
    /// # Panics
    ///
    /// Panics if `messages` does not hold `num_agents` rows of
    /// `bandwidth` scalars each.
    pub fn publish(&mut self, messages: &[Vec<f32>]) {
        assert_eq!(messages.len(), self.num_agents, "publish agent count");
        self.head = (self.head + 1) % self.depth;
        let gen_base = self.head * self.num_agents * self.bandwidth;
        for (a, msg) in messages.iter().enumerate() {
            assert_eq!(msg.len(), self.bandwidth, "publish bandwidth");
            let base = gen_base + a * self.bandwidth;
            self.ring[base..base + self.bandwidth].copy_from_slice(msg);
        }
    }

    /// The message `agent` published in the most recent generation
    /// (zeros before the first publish) — what a fault-free receiver
    /// would read.
    pub fn latest(&self, agent: usize) -> &[f32] {
        let base = (self.head * self.num_agents + agent) * self.bandwidth;
        &self.ring[base..base + self.bandwidth]
    }

    /// Delivers the message from `sender` to `receiver` at decision
    /// step `time`, writing the post-fault result into `out`. Returns
    /// `true` if the delivery was dropped (in which case `out` holds
    /// the loss-policy substitute).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != bandwidth`.
    pub fn deliver_into(
        &mut self,
        receiver: usize,
        sender: usize,
        time: u32,
        out: &mut [f32],
    ) -> bool {
        assert_eq!(out.len(), self.bandwidth, "deliver_into bandwidth");
        let mut delay = 0usize;
        let mut dropped = false;
        let mut corrupt: Option<(usize, f64)> = None;
        for (fi, fault) in self.faults.iter().enumerate() {
            if !fault.window.contains(time) || !fault.receivers.matches(receiver) {
                continue;
            }
            match fault.kind {
                CommsKind::Delay { steps } => delay = (steps as usize).min(self.depth - 1),
                CommsKind::Drop { p } => {
                    // Fold the sender into the salt so each directed
                    // edge draws an independent decision stream.
                    let salt = fault_salt(self.seed, fi)
                        ^ (sender as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    if chaos_uniform(salt, time, receiver) < p {
                        dropped = true;
                    }
                }
                CommsKind::Corrupt { amp } => corrupt = Some((fi, amp)),
            }
        }
        if dropped {
            match self.policy {
                MessageLossPolicy::ZeroFill => out.iter_mut().for_each(|v| *v = 0.0),
                MessageLossPolicy::HoldLast => {
                    let base = receiver * self.bandwidth;
                    out.copy_from_slice(&self.last_delivered[base..base + self.bandwidth]);
                }
            }
            return true;
        }
        let slot = (self.head + self.depth - delay) % self.depth;
        let base = (slot * self.num_agents + sender) * self.bandwidth;
        out.copy_from_slice(&self.ring[base..base + self.bandwidth]);
        if let Some((fi, amp)) = corrupt {
            let salt = fault_salt(self.seed, fi);
            for (j, v) in out.iter_mut().enumerate() {
                let u = chaos_uniform(salt, time, receiver * self.bandwidth + j);
                *v = (*v as f64 + amp * (2.0 * u - 1.0)).clamp(0.0, 1.0) as f32;
            }
        }
        let base = receiver * self.bandwidth;
        self.last_delivered[base..base + self.bandwidth].copy_from_slice(out);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        let raw = [-100.0f32, -1.0, 0.0, 1.0, 100.0];
        for _ in 0..50 {
            for &v in &regularize(&raw, 0.5, &mut rng) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn zero_sigma_is_deterministic_logistic() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = regularize(&[0.0, 2.0], 0.0, &mut rng);
        assert_eq!(out[0], 0.5);
        assert!((out[1] - logistic(2.0)).abs() < 1e-7);
    }

    #[test]
    fn noise_perturbs_but_preserves_order_on_average() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2000;
        let mut lo_sum = 0.0;
        let mut hi_sum = 0.0;
        for _ in 0..n {
            let out = regularize(&[-1.0, 1.0], 0.3, &mut rng);
            lo_sum += out[0];
            hi_sum += out[1];
        }
        assert!(hi_sum / n as f32 > lo_sum / n as f32 + 0.2);
    }

    #[test]
    fn table_iv_bit_accounting() {
        assert_eq!(bits_per_step(1), 32, "PairUpLight: one 32-bit message");
        assert_eq!(bits_per_step(2), 64);
        assert_eq!(bits_per_step(0), 0);
    }

    mod channel {
        use super::super::*;
        use tsc_sim::chaos::{AgentSel, ChaosPlan, Window};

        fn publish_round(ch: &mut MessageChannel, base: f32) {
            let msgs: Vec<Vec<f32>> = (0..2).map(|a| vec![base + a as f32 * 0.1]).collect();
            ch.publish(&msgs);
        }

        #[test]
        fn fault_free_delivery_matches_latest() {
            let mut ch = MessageChannel::new(2, 1, MessageLossPolicy::ZeroFill);
            let mut out = [9.0f32];
            assert!(!ch.deliver_into(0, 1, 0, &mut out));
            assert_eq!(out[0], 0.0, "pre-publish state is the zero message");
            publish_round(&mut ch, 0.5);
            assert!(!ch.deliver_into(0, 1, 1, &mut out));
            assert_eq!(out[0].to_bits(), ch.latest(1)[0].to_bits());
            assert_eq!(out[0], 0.6);
        }

        #[test]
        fn full_drop_applies_loss_policy() {
            // Drop everything from step 2 on; step 1 delivers clean so
            // HoldLast has a last-known-good message to fall back on.
            let plan = ChaosPlan::default().message_drop(Window::new(2, 100), AgentSel::All, 1.0);
            for (policy, expect_after_drop) in [
                (MessageLossPolicy::ZeroFill, 0.0f32),
                (MessageLossPolicy::HoldLast, 0.6),
            ] {
                let mut ch = MessageChannel::new(2, 1, policy);
                ch.set_faults(plan.comms().to_vec(), 7);
                publish_round(&mut ch, 0.5);
                let mut out = [0.0f32];
                assert!(!ch.deliver_into(0, 1, 1, &mut out), "outside the window");
                assert_eq!(out[0], 0.6);
                assert!(ch.deliver_into(0, 1, 2, &mut out), "p=1.0 always drops");
                assert_eq!(out[0], expect_after_drop);
            }
        }

        #[test]
        fn delay_reads_older_generation() {
            let plan = ChaosPlan::default().message_delay(Window::always(), AgentSel::All, 2);
            let mut ch = MessageChannel::new(2, 1, MessageLossPolicy::ZeroFill);
            ch.set_faults(plan.comms().to_vec(), 0);
            let mut out = [0.0f32];
            publish_round(&mut ch, 0.1); // gen 1
            publish_round(&mut ch, 0.2); // gen 2
            publish_round(&mut ch, 0.3); // gen 3
            assert!(!ch.deliver_into(0, 1, 3, &mut out));
            assert_eq!(out[0], 0.2, "delayed by 2 generations: 0.1 + 0.1 offset");
            assert_eq!(ch.latest(1)[0], 0.4, "latest is unaffected by delay");
        }

        #[test]
        fn corrupt_stays_in_unit_interval_and_is_deterministic() {
            let plan = ChaosPlan::default().message_corrupt(Window::always(), AgentSel::All, 0.5);
            let mut ch = MessageChannel::new(2, 1, MessageLossPolicy::ZeroFill);
            ch.set_faults(plan.comms().to_vec(), 11);
            publish_round(&mut ch, 0.5);
            let mut a = [0.0f32];
            let mut b = [0.0f32];
            assert!(!ch.deliver_into(0, 1, 4, &mut a));
            assert!(!ch.deliver_into(0, 1, 4, &mut b));
            assert_eq!(a[0].to_bits(), b[0].to_bits(), "hash-keyed, not stateful");
            assert!((0.0..=1.0).contains(&a[0]));
            assert_ne!(a[0], 0.6, "amp 0.5 at this key perturbs the value");
        }

        #[test]
        fn drop_decisions_differ_per_edge() {
            let plan = ChaosPlan::default().message_drop(Window::always(), AgentSel::All, 0.5);
            let mut ch = MessageChannel::new(8, 1, MessageLossPolicy::ZeroFill);
            ch.set_faults(plan.comms().to_vec(), 3);
            let msgs: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0]).collect();
            ch.publish(&msgs);
            let mut out = [0.0f32];
            let mut drops = 0;
            for t in 0..64u32 {
                for r in 0..8 {
                    if ch.deliver_into(r, (r + 1) % 8, t, &mut out) {
                        drops += 1;
                    }
                }
            }
            assert!((150..350).contains(&drops), "p=0.5 over 512 draws: {drops}");
        }
    }
}
