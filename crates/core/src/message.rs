//! The message regularizer unit (Algorithm 1 line 16).
//!
//! The actor's raw message output `m` is regularized before it crosses
//! the channel: `m̂ = Logistic(N(m, σ))` — Gaussian noise during
//! training (forcing the protocol to be robust and effectively
//! discretizing it, as in DIAL) followed by a logistic squash into
//! `(0, 1)`. At evaluation time σ = 0.

use rand::Rng;

/// Applies the regularizer to a raw message vector.
///
/// With `sigma = 0` this is a plain logistic squash (evaluation mode).
pub fn regularize<R: Rng>(raw: &[f32], sigma: f32, rng: &mut R) -> Vec<f32> {
    let mut out = vec![0.0; raw.len()];
    regularize_into(raw, sigma, rng, &mut out);
    out
}

/// Applies the regularizer into a caller-owned slice (fully
/// overwritten), drawing exactly the same noise sequence as
/// [`regularize`] — the allocation-free variant used by the rollout
/// collection hot loop.
///
/// # Panics
///
/// Panics if `out.len() != raw.len()`.
pub fn regularize_into<R: Rng>(raw: &[f32], sigma: f32, rng: &mut R, out: &mut [f32]) {
    assert_eq!(out.len(), raw.len(), "regularize_into length");
    for (o, &m) in out.iter_mut().zip(raw) {
        let noisy = if sigma > 0.0 {
            m + gaussian(rng) * sigma
        } else {
            m
        };
        *o = logistic(noisy);
    }
}

/// The logistic function `1 / (1 + e^{-x})`.
pub fn logistic(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.gen::<f32>().max(1e-12);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Communication accounting for Table IV: bits transmitted per agent
/// per decision step given a message bandwidth (each message is one
/// 32-bit scalar).
pub fn bits_per_step(bandwidth: usize) -> usize {
    bandwidth * 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        let raw = [-100.0f32, -1.0, 0.0, 1.0, 100.0];
        for _ in 0..50 {
            for &v in &regularize(&raw, 0.5, &mut rng) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn zero_sigma_is_deterministic_logistic() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = regularize(&[0.0, 2.0], 0.0, &mut rng);
        assert_eq!(out[0], 0.5);
        assert!((out[1] - logistic(2.0)).abs() < 1e-7);
    }

    #[test]
    fn noise_perturbs_but_preserves_order_on_average() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2000;
        let mut lo_sum = 0.0;
        let mut hi_sum = 0.0;
        for _ in 0..n {
            let out = regularize(&[-1.0, 1.0], 0.3, &mut rng);
            lo_sum += out[0];
            hi_sum += out[1];
        }
        assert!(hi_sum / n as f32 > lo_sum / n as f32 + 0.2);
    }

    #[test]
    fn table_iv_bit_accounting() {
        assert_eq!(bits_per_step(1), 32, "PairUpLight: one 32-bit message");
        assert_eq!(bits_per_step(2), 64);
        assert_eq!(bits_per_step(0), 0);
    }
}
