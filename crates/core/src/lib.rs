//! # pairuplight — coordinated multi-agent RL traffic signal control
//!
//! A from-scratch Rust reproduction of *PairUpLight: A Multi-agent
//! Reinforcement Learning Approach for Coordinated Multi-intersection
//! Traffic Signal Control* (Du, Li, Wang — ICDCS 2025).
//!
//! Each signalized intersection is a PPO agent (with GAE); on top of
//! the backbone, PairUpLight adds:
//!
//! * a **coordinated actor** that consumes a single real-valued message
//!   from the most congested upstream intersection and emits the next
//!   message alongside its action ([`model::ActorNet`], Eq. 8);
//! * a **message regularizer** `m̂ = Logistic(N(m, σ))`
//!   ([`message`], Algorithm 1 line 16);
//! * congestion-driven **pairing** ([`pairing`], §V-B);
//! * a **centralized critic** seeing one- and two-hop neighbor traffic
//!   with zero padding at network edges ([`model::CriticNet`], Eq. 9);
//! * **CTDE with parameter sharing** ([`trainer`], Algorithm 1).
//!
//! ## Quickstart
//!
//! ```
//! use pairuplight::{PairUpLight, PairUpLightConfig};
//! use tsc_sim::scenario::grid::{Grid, GridConfig};
//! use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
//! use tsc_sim::{EnvConfig, SimConfig, TscEnv};
//!
//! # fn main() -> Result<(), tsc_sim::SimError> {
//! let grid = Grid::build(GridConfig { cols: 2, rows: 2, spacing: 200.0 })?;
//! let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
//! let mut env = TscEnv::new(
//!     scenario,
//!     SimConfig::default(),
//!     EnvConfig { decision_interval: 5, episode_horizon: 210 },
//!     0,
//! )?;
//! let mut model = PairUpLight::new(&env, PairUpLightConfig::default());
//! let episode = model.train_episode(&mut env, 0)?;
//! assert!(episode.stats.steps > 0);
//! let mut controller = model.controller(); // decentralized execution
//! let stats = env.run_episode(&mut controller, 1)?;
//! assert!(stats.spawned > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod fault;
pub mod message;
pub mod model;
pub mod obs;
pub mod pairing;
pub mod policy;
pub mod runlog;
pub mod trainer;

pub use checkpoint::{config_fingerprint, Checkpoint, CheckpointManager, CheckpointPolicy};
pub use config::{CriticMode, PairUpLightConfig, PairingMode};
pub use error::TrainError;
pub use fault::FaultPlan;
pub use message::{MessageChannel, MessageLossPolicy};
pub use model::{ActorBuffers, ActorNet, ActorOut, CriticBuffers, CriticNet};
pub use obs::{HealthConfig, ObsEncoder, ObsHealth, ObsNorm};
pub use pairing::PairingTable;
pub use policy::PolicySnapshot;
pub use runlog::{RunLogger, UpdateRecord};
pub use trainer::{PairUpLight, PairUpLightController, Rollout, TrainEpisode};
