//! Observation encoding: from detector snapshots to network inputs.
//!
//! The actor consumes the paper's Eq. 5 state — link-level pressure
//! components and head-vehicle waits — arranged in fixed direction
//! slots (N, E, S, W) so every intersection, regardless of degree,
//! produces the same vector length (missing approaches are zero,
//! the same padding trick the paper uses for edge intersections).
//!
//! The centralized critic additionally sees one-hop and two-hop
//! neighbor congestion summaries (paper §V-B), zero-padded to fixed
//! slot counts.

use std::collections::HashMap;

use tsc_sim::{IntersectionObs, LinkObs, Network, NodeId};

/// Slots reserved for one-hop neighbors in the critic input.
pub const ONE_HOP_SLOTS: usize = 4;
/// Slots reserved for two-hop neighbors in the critic input.
pub const TWO_HOP_SLOTS: usize = 8;
/// Features per direction slot in the local observation:
/// `[in_count, halting, halt_left, halt_through, halt_right,
/// head_wait]` — counts plus the paper's per-movement queues.
const IN_FEATURES: usize = 6;
/// Outgoing features per direction slot: `[out_count]`.
const OUT_FEATURES: usize = 1;
/// Per-neighbor features in the critic input: `[pressure, max_wait]`.
const NEIGHBOR_FEATURES: usize = 2;

/// Normalization constants (counts are detector-bounded, waits in
/// seconds).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObsNorm {
    /// Vehicle counts are divided by this.
    pub count: f32,
    /// Waiting times are divided by this.
    pub wait: f32,
}

impl Default for ObsNorm {
    fn default() -> Self {
        ObsNorm {
            count: 10.0,
            wait: 120.0,
        }
    }
}

/// Encodes detector snapshots into fixed-size network inputs.
#[derive(Debug, Clone)]
pub struct ObsEncoder {
    norm: ObsNorm,
    max_phases: usize,
    /// Agent index of each signalized node.
    agent_of: HashMap<NodeId, usize>,
    /// One-hop neighbor agent indices per agent (≤ 4, direction order).
    one_hop: Vec<Vec<usize>>,
    /// Two-hop neighbor agent indices per agent (≤ 8).
    two_hop: Vec<Vec<usize>>,
}

impl ObsEncoder {
    /// Builds the encoder for `agents` (in canonical order) on `network`.
    pub fn new(network: &Network, agents: &[NodeId], max_phases: usize, norm: ObsNorm) -> Self {
        let agent_of: HashMap<NodeId, usize> =
            agents.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let one_hop = agents
            .iter()
            .map(|&n| {
                network
                    .signalized_neighbors(n)
                    .into_iter()
                    .filter_map(|m| agent_of.get(&m).copied())
                    .take(ONE_HOP_SLOTS)
                    .collect()
            })
            .collect();
        let two_hop = agents
            .iter()
            .map(|&n| {
                network
                    .two_hop_signalized_neighbors(n)
                    .into_iter()
                    .filter_map(|m| agent_of.get(&m).copied())
                    .take(TWO_HOP_SLOTS)
                    .collect()
            })
            .collect();
        ObsEncoder {
            norm,
            max_phases,
            agent_of,
            one_hop,
            two_hop,
        }
    }

    /// Dimension of the local (actor) observation vector.
    pub fn local_dim(&self) -> usize {
        4 * IN_FEATURES + 4 * OUT_FEATURES + self.max_phases
    }

    /// Dimension of the centralized critic observation vector.
    pub fn critic_dim(&self) -> usize {
        self.local_dim()
            + ONE_HOP_SLOTS * NEIGHBOR_FEATURES
            + TWO_HOP_SLOTS * (NEIGHBOR_FEATURES - 1)
    }

    /// One-hop neighbor agent indices of `agent`.
    pub fn one_hop(&self, agent: usize) -> &[usize] {
        &self.one_hop[agent]
    }

    /// Two-hop neighbor agent indices of `agent`.
    pub fn two_hop(&self, agent: usize) -> &[usize] {
        &self.two_hop[agent]
    }

    /// Agent index of a signalized node, if it is an agent.
    pub fn agent_of(&self, node: NodeId) -> Option<usize> {
        self.agent_of.get(&node).copied()
    }

    /// Encodes the local observation (Eq. 5 plus the current phase).
    pub fn encode_local(&self, obs: &IntersectionObs) -> Vec<f32> {
        let mut v = vec![0.0f32; self.local_dim()];
        self.encode_local_into(obs, &mut v);
        v
    }

    /// Encodes the local observation into a caller-owned slice of
    /// length [`local_dim`](Self::local_dim), fully overwriting it —
    /// the allocation-free variant the serving/rollout hot loops reuse
    /// across steps.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.local_dim()`.
    pub fn encode_local_into(&self, obs: &IntersectionObs, v: &mut [f32]) {
        assert_eq!(v.len(), self.local_dim(), "encode_local_into length");
        v.fill(0.0);
        for link in &obs.incoming {
            let d = link.direction.index();
            v[d * IN_FEATURES] = link.count as f32 / self.norm.count;
            v[d * IN_FEATURES + 1] = link.halting as f32 / self.norm.count;
            for (k, &h) in link.halting_by_movement.iter().enumerate() {
                v[d * IN_FEATURES + 2 + k] = h as f32 / self.norm.count;
            }
            v[d * IN_FEATURES + 5] = link.head_wait as f32 / self.norm.wait;
        }
        let out_base = 4 * IN_FEATURES;
        // Outgoing links arrive direction-sorted; pack positionally
        // (intersections with fewer than four exits leave zeros).
        for (i, &count) in obs.outgoing_counts.iter().enumerate() {
            v[out_base + i.min(3)] += count as f32 / self.norm.count;
        }
        let phase_base = out_base + 4;
        if obs.current_phase < self.max_phases {
            v[phase_base + obs.current_phase] = 1.0;
        }
    }

    /// Congestion summary `[pressure, max_wait]` (normalized) of one
    /// intersection, used for neighbor slots.
    pub fn congestion_summary(&self, obs: &IntersectionObs) -> [f32; 2] {
        [
            obs.pressure() as f32 / self.norm.count,
            obs.max_wait() as f32 / self.norm.wait,
        ]
    }

    /// Encodes the centralized critic input for `agent` given the joint
    /// observation (one `IntersectionObs` per agent, in agent order).
    pub fn encode_critic(&self, all: &[IntersectionObs], agent: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; self.critic_dim()];
        self.encode_critic_into(all, agent, &mut v);
        v
    }

    /// Encodes the centralized critic input into a caller-owned slice
    /// of length [`critic_dim`](Self::critic_dim), fully overwriting it
    /// (see [`encode_local_into`](Self::encode_local_into)).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.critic_dim()`.
    pub fn encode_critic_into(&self, all: &[IntersectionObs], agent: usize, v: &mut [f32]) {
        assert_eq!(v.len(), self.critic_dim(), "encode_critic_into length");
        let local = self.local_dim();
        self.encode_local_into(&all[agent], &mut v[..local]);
        for slot in 0..ONE_HOP_SLOTS {
            let at = local + slot * NEIGHBOR_FEATURES;
            match self.one_hop[agent].get(slot) {
                Some(&n) => {
                    let s = self.congestion_summary(&all[n]);
                    v[at..at + NEIGHBOR_FEATURES].copy_from_slice(&s);
                }
                None => v[at..at + NEIGHBOR_FEATURES].fill(0.0),
            }
        }
        let two_base = local + ONE_HOP_SLOTS * NEIGHBOR_FEATURES;
        for slot in 0..TWO_HOP_SLOTS {
            v[two_base + slot] = match self.two_hop[agent].get(slot) {
                Some(&n) => self.congestion_summary(&all[n])[0],
                None => 0.0,
            };
        }
    }

    /// The message head's auxiliary target: the agent's own normalized
    /// congestion (halting + pressure), clamped to `[-1, 1]` to match
    /// the logistic message range after centring.
    pub fn message_target(&self, obs: &IntersectionObs) -> f32 {
        let c = (obs.total_halting() + obs.pressure().max(0.0)) as f32 / (2.0 * self.norm.count);
        c.clamp(-1.0, 1.0)
    }
}

/// Thresholds for the observation-health tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// A link reading that collapses to all-zero while the last healthy
    /// reading had at least this many halted vehicles is treated as a
    /// suspected detector dropout (real queues drain gradually; they do
    /// not vanish in one step).
    pub suspect_drop: f64,
    /// How many consecutive steps a suspected dropout is papered over
    /// with the last-known-good reading before the zeros are passed
    /// through unmodified.
    pub hold_steps: u32,
    /// A link reading that repeats bit-identically (and nonzero) for
    /// this many consecutive steps is treated as a stuck detector.
    pub stuck_steps: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_drop: 4.0,
            hold_steps: 3,
            stuck_steps: 5,
        }
    }
}

/// Per-link detector state tracked by [`ObsHealth`].
#[derive(Debug, Clone, Default)]
struct SlotHealth {
    /// Last reading that looked healthy (the imputation source).
    good: Option<LinkObs>,
    /// Previous raw reading (for stuck detection).
    prev: Option<LinkObs>,
    /// Consecutive identical nonzero raw readings, including this one.
    frozen_run: u32,
    /// Imputation steps spent on the current suspected dropout.
    hold_used: u32,
}

fn values_zero(l: &LinkObs) -> bool {
    l.count == 0.0
        && l.halting == 0.0
        && l.head_wait == 0.0
        && l.halting_by_movement.iter().all(|&h| h == 0.0)
}

fn values_equal(a: &LinkObs, b: &LinkObs) -> bool {
    a.count == b.count
        && a.halting == b.halting
        && a.head_wait == b.head_wait
        && a.halting_by_movement == b.halting_by_movement
}

fn copy_values(dst: &mut LinkObs, src: &LinkObs) {
    dst.count = src.count;
    dst.halting = src.halting;
    dst.halting_by_movement = src.halting_by_movement;
    dst.head_wait = src.head_wait;
}

/// Controller-side observation-health tracker: flags implausible
/// detector readings and imputes last-known-good values over short
/// outages.
///
/// Two failure signatures are tracked per incoming-link slot:
///
/// * **zero-collapse** — a busy approach (last healthy reading had
///   `halting >= suspect_drop`) reads all-zero. The slot is suspect and
///   the last-known-good reading is substituted for up to `hold_steps`
///   consecutive steps; after that the zeros pass through (but the slot
///   stays suspect until a plausible nonzero reading returns).
/// * **frozen detector** — the same nonzero reading repeats
///   bit-identically for `stuck_steps` steps. Real queues accumulate
///   waiting time every second, so an exactly-repeating reading means a
///   stuck sensor. The values are passed through (they are present,
///   just stale) but the slot is suspect.
///
/// An agent whose snapshot contains any suspect slot accrues a
/// *suspect streak* (consecutive suspect steps, reset on a clean step),
/// exposed via [`suspect_streaks`](Self::suspect_streaks) — the signal
/// the serving engine's health-triggered fallback ladder consumes.
///
/// With healthy input the filter is the identity: readings are never
/// modified unless a failure signature fires, so wiring the tracker in
/// front of a policy changes nothing on a clean trace.
#[derive(Debug, Clone)]
pub struct ObsHealth {
    cfg: HealthConfig,
    /// Per agent, per incoming-link slot (sized lazily on first
    /// filter, since approach counts vary per intersection).
    slots: Vec<Vec<SlotHealth>>,
    streaks: Vec<u32>,
}

impl ObsHealth {
    /// Creates a tracker for `num_agents` agents.
    pub fn new(num_agents: usize, cfg: HealthConfig) -> Self {
        ObsHealth {
            cfg,
            slots: vec![Vec::new(); num_agents],
            streaks: vec![0; num_agents],
        }
    }

    /// Forgets all detector history and streaks (e.g. on episode
    /// reset).
    pub fn reset(&mut self) {
        for agent in &mut self.slots {
            agent.clear();
        }
        self.streaks.iter_mut().for_each(|s| *s = 0);
    }

    /// Consecutive suspect steps per agent, updated by
    /// [`filter`](Self::filter).
    pub fn suspect_streaks(&self) -> &[u32] {
        &self.streaks
    }

    /// Inspects (and where warranted, repairs in place) one joint
    /// observation — one snapshot per agent, in agent order.
    ///
    /// # Panics
    ///
    /// Panics if `all.len()` differs from the tracker's agent count.
    pub fn filter(&mut self, all: &mut [IntersectionObs]) {
        assert_eq!(all.len(), self.slots.len(), "ObsHealth agent count");
        for (a, obs) in all.iter_mut().enumerate() {
            let slots = &mut self.slots[a];
            if slots.len() != obs.incoming.len() {
                slots.clear();
                slots.resize(obs.incoming.len(), SlotHealth::default());
            }
            let mut suspect = false;
            for (slot, reading) in slots.iter_mut().zip(obs.incoming.iter_mut()) {
                // Stuck detection runs on the raw reading, before any
                // imputation can make values repeat artificially.
                let repeats = slot
                    .prev
                    .as_ref()
                    .is_some_and(|p| values_equal(p, reading) && !values_zero(reading));
                slot.frozen_run = if repeats { slot.frozen_run + 1 } else { 1 };
                slot.prev = Some(reading.clone());
                let frozen = slot.frozen_run >= self.cfg.stuck_steps;

                let collapsed = values_zero(reading)
                    && slot
                        .good
                        .as_ref()
                        .is_some_and(|g| g.halting >= self.cfg.suspect_drop);
                if collapsed {
                    suspect = true;
                    if slot.hold_used < self.cfg.hold_steps {
                        slot.hold_used += 1;
                        if let Some(good) = &slot.good {
                            copy_values(reading, good);
                        }
                    }
                    // Past the hold budget the zeros pass through, but
                    // `good` is kept: the collapse stays suspect until
                    // a plausible nonzero reading returns.
                } else {
                    slot.hold_used = 0;
                    if frozen {
                        suspect = true;
                    } else {
                        slot.good = Some(reading.clone());
                    }
                }
            }
            self.streaks[a] = if suspect { self.streaks[a] + 1 } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{SimConfig, Simulation};

    fn setup() -> (Simulation, ObsEncoder) {
        let grid = Grid::build(GridConfig::default()).unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        let scenario = grid.scenario("t", f).unwrap();
        let sim = Simulation::new(&scenario, SimConfig::default(), 3).unwrap();
        let agents = scenario.agents();
        let enc = ObsEncoder::new(&scenario.network, &agents, 4, ObsNorm::default());
        (sim, enc)
    }

    #[test]
    fn dimensions_are_fixed_across_agents() {
        let (mut sim, enc) = setup();
        for _ in 0..50 {
            sim.step().unwrap();
        }
        let all = sim.observe_all();
        assert_eq!(enc.local_dim(), 32);
        assert_eq!(enc.critic_dim(), 32 + 8 + 8);
        for (i, o) in all.iter().enumerate() {
            assert_eq!(enc.encode_local(o).len(), enc.local_dim());
            assert_eq!(enc.encode_critic(&all, i).len(), enc.critic_dim());
        }
    }

    #[test]
    fn phase_one_hot_is_set() {
        let (sim, enc) = setup();
        let all = sim.observe_all();
        let v = enc.encode_local(&all[0]);
        let phase_slice = &v[28..32];
        assert_eq!(phase_slice.iter().sum::<f32>(), 1.0);
        assert_eq!(phase_slice[all[0].current_phase], 1.0);
    }

    #[test]
    fn edge_agents_get_zero_padded_neighbors() {
        let (_, enc) = setup();
        // Agent 0 is the (0,0) corner: 2 one-hop, 3 two-hop.
        assert_eq!(enc.one_hop(0).len(), 2);
        assert_eq!(enc.two_hop(0).len(), 3);
        // An interior agent has full slots.
        let interior = 2 * 6 + 2; // (2,2) in col-major agent order
        assert_eq!(enc.one_hop(interior).len(), 4);
        assert_eq!(enc.two_hop(interior).len(), 8);
    }

    #[test]
    fn congestion_changes_critic_input() {
        let (mut sim, enc) = setup();
        let all0 = sim.observe_all();
        let before = enc.encode_critic(&all0, 7);
        for _ in 0..400 {
            sim.step().unwrap(); // queues build at defaults (phase 0 held)
        }
        let all1 = sim.observe_all();
        let after = enc.encode_critic(&all1, 7);
        assert_ne!(before, after);
    }

    #[test]
    fn encode_into_overwrites_dirty_buffers_bit_identically() {
        let (mut sim, enc) = setup();
        for _ in 0..120 {
            sim.step().unwrap();
        }
        let all = sim.observe_all();
        for (i, o) in all.iter().enumerate() {
            let mut local = vec![f32::NAN; enc.local_dim()];
            enc.encode_local_into(o, &mut local);
            assert_eq!(local, enc.encode_local(o));
            let mut critic = vec![f32::NAN; enc.critic_dim()];
            enc.encode_critic_into(&all, i, &mut critic);
            assert_eq!(critic, enc.encode_critic(&all, i));
        }
    }

    mod health {
        use super::super::*;
        use tsc_sim::{Direction, LinkId, NodeId};

        fn link(halting: f64, head_wait: f64) -> LinkObs {
            LinkObs {
                link: LinkId(0),
                direction: Direction::North,
                count: halting,
                halting,
                halting_by_movement: [0.0, halting, 0.0],
                head_wait,
            }
        }

        fn snapshot(incoming: Vec<LinkObs>, time: u32) -> IntersectionObs {
            IntersectionObs {
                node: NodeId(0),
                time,
                incoming,
                outgoing_counts: vec![0.0],
                outgoing_links: vec![LinkId(1)],
                current_phase: 0,
                num_phases: 4,
            }
        }

        #[test]
        fn healthy_trace_is_untouched_and_streak_free() {
            let mut h = ObsHealth::new(1, HealthConfig::default());
            for t in 0..20 {
                let raw = snapshot(vec![link(t as f64 % 7.0, t as f64)], t);
                let mut filtered = vec![raw.clone()];
                h.filter(&mut filtered);
                assert_eq!(filtered[0], raw, "identity on clean input");
                assert_eq!(h.suspect_streaks(), &[0]);
            }
        }

        #[test]
        fn zero_collapse_is_imputed_then_released() {
            let cfg = HealthConfig::default();
            let mut h = ObsHealth::new(1, cfg);
            let mut warm = vec![snapshot(vec![link(6.0, 30.0)], 0)];
            h.filter(&mut warm);
            // Detector dies: all-zero readings from a busy approach.
            for k in 0..cfg.hold_steps {
                let mut dead = vec![snapshot(vec![link(0.0, 0.0)], 1 + k)];
                h.filter(&mut dead);
                assert_eq!(dead[0].incoming[0].halting, 6.0, "imputed step {k}");
                assert_eq!(h.suspect_streaks(), &[k + 1]);
            }
            // Hold budget exhausted: zeros pass through, still suspect.
            let mut dead = vec![snapshot(vec![link(0.0, 0.0)], 10)];
            h.filter(&mut dead);
            assert_eq!(dead[0].incoming[0].halting, 0.0);
            assert_eq!(h.suspect_streaks(), &[cfg.hold_steps + 1]);
            // Detector recovers: streak resets.
            let mut back = vec![snapshot(vec![link(5.0, 20.0)], 11)];
            h.filter(&mut back);
            assert_eq!(h.suspect_streaks(), &[0]);
        }

        #[test]
        fn quiet_approach_zeros_are_genuine() {
            let mut h = ObsHealth::new(1, HealthConfig::default());
            let mut warm = vec![snapshot(vec![link(2.0, 5.0)], 0)];
            h.filter(&mut warm);
            let mut calm = vec![snapshot(vec![link(0.0, 0.0)], 1)];
            h.filter(&mut calm);
            assert_eq!(calm[0].incoming[0].halting, 0.0, "below suspect_drop");
            assert_eq!(h.suspect_streaks(), &[0]);
        }

        #[test]
        fn frozen_detector_trips_after_stuck_steps() {
            let cfg = HealthConfig::default();
            let mut h = ObsHealth::new(1, cfg);
            for t in 0..cfg.stuck_steps + 3 {
                let mut frozen = vec![snapshot(vec![link(3.0, 17.0)], t)];
                h.filter(&mut frozen);
                assert_eq!(frozen[0].incoming[0].halting, 3.0, "passed through");
                if t + 1 >= cfg.stuck_steps {
                    assert_eq!(h.suspect_streaks(), &[t + 2 - cfg.stuck_steps]);
                } else {
                    assert_eq!(h.suspect_streaks(), &[0]);
                }
            }
            // A changing reading clears the run.
            let mut moving = vec![snapshot(vec![link(3.0, 18.0)], 99)];
            h.filter(&mut moving);
            assert_eq!(h.suspect_streaks(), &[0]);
        }

        #[test]
        fn reset_forgets_history() {
            let mut h = ObsHealth::new(1, HealthConfig::default());
            let mut warm = vec![snapshot(vec![link(9.0, 40.0)], 0)];
            h.filter(&mut warm);
            h.reset();
            let mut dead = vec![snapshot(vec![link(0.0, 0.0)], 1)];
            h.filter(&mut dead);
            assert_eq!(dead[0].incoming[0].halting, 0.0, "no good reading kept");
            assert_eq!(h.suspect_streaks(), &[0]);
        }
    }

    #[test]
    fn message_target_is_bounded() {
        let (mut sim, enc) = setup();
        for _ in 0..500 {
            sim.step().unwrap();
        }
        for o in sim.observe_all() {
            let t = enc.message_target(&o);
            assert!((-1.0..=1.0).contains(&t));
        }
    }
}
