//! Communication pairing: who talks to whom.
//!
//! PairUpLight pairs each intersection with **the most congested
//! upstream neighboring intersection** (paper §V-B): among the
//! signalized upstream endpoints of its incoming links, the one whose
//! congestion is highest right now, falling back to the agent itself
//! when no upstream intersection is congested (self-messaging, matching
//! Eq. 8's "either the current agent itself or one of its neighboring
//! agents"). The pairing is recomputed at every decision step from live
//! observations.

use tsc_sim::{Network, NodeId};

use crate::obs::ObsEncoder;
use tsc_sim::IntersectionObs;

/// Upstream agent candidates per agent, with the connecting link's
/// direction slot, precomputed from the network topology.
#[derive(Debug, Clone)]
pub struct PairingTable {
    /// For each agent: the agent indices of signalized upstream
    /// neighbors (endpoints of incoming links).
    upstream: Vec<Vec<usize>>,
}

impl PairingTable {
    /// Builds the table for `agents` on `network`.
    pub fn new(network: &Network, agents: &[NodeId], encoder: &ObsEncoder) -> Self {
        let upstream = agents
            .iter()
            .map(|&n| {
                let mut ups: Vec<usize> = network
                    .upstream_signalized(n)
                    .into_iter()
                    .filter_map(|(node, _)| encoder.agent_of(node))
                    .collect();
                ups.sort_unstable();
                ups.dedup();
                ups
            })
            .collect();
        PairingTable { upstream }
    }

    /// The upstream candidate agents of `agent`.
    pub fn upstream(&self, agent: usize) -> &[usize] {
        &self.upstream[agent]
    }

    /// Congestion score used to rank upstream partners: total halting
    /// plus positive pressure — "the one that experiences congestion
    /// first".
    fn congestion(obs: &IntersectionObs) -> f64 {
        obs.total_halting() + obs.pressure().max(0.0)
    }

    /// Picks each agent's communication partner for this step: the most
    /// congested upstream agent, or the agent itself when none of its
    /// upstream neighbors shows congestion. Returns one partner index
    /// per agent.
    pub fn partners(&self, all_obs: &[IntersectionObs]) -> Vec<usize> {
        (0..self.upstream.len())
            .map(|a| {
                let mut best = a;
                let mut best_score = 0.0f64;
                for &u in &self.upstream[a] {
                    let score = Self::congestion(&all_obs[u]);
                    if score > best_score {
                        best_score = score;
                        best = u;
                    }
                }
                best
            })
            .collect()
    }

    /// Self-loop partners: each agent listens to itself (the ablation
    /// that removes inter-agent communication topology while keeping
    /// the message machinery).
    pub fn self_partners(&self) -> Vec<usize> {
        (0..self.upstream.len()).collect()
    }

    /// Uniformly random upstream partner per agent (self when an agent
    /// has no upstream neighbors) — the ablation showing the pairing
    /// rule matters, not just "some neighbor".
    pub fn random_partners<R: rand::Rng>(&self, rng: &mut R) -> Vec<usize> {
        (0..self.upstream.len())
            .map(|a| {
                if self.upstream[a].is_empty() {
                    a
                } else {
                    self.upstream[a][rng.gen_range(0..self.upstream[a].len())]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsEncoder, ObsNorm};
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::{Direction, LinkId, LinkObs};

    fn setup() -> (Grid, Vec<NodeId>, ObsEncoder, PairingTable) {
        let grid = Grid::build(GridConfig {
            cols: 3,
            rows: 3,
            spacing: 200.0,
        })
        .unwrap();
        let agents: Vec<NodeId> = grid.network().signalized_nodes();
        let enc = ObsEncoder::new(grid.network(), &agents, 4, ObsNorm::default());
        let table = PairingTable::new(grid.network(), &agents, &enc);
        (grid, agents, enc, table)
    }

    fn quiet_obs(node: NodeId) -> IntersectionObs {
        IntersectionObs {
            node,
            time: 0,
            incoming: vec![],
            outgoing_counts: vec![],
            outgoing_links: vec![],
            current_phase: 0,
            num_phases: 4,
        }
    }

    fn congested_obs(node: NodeId, halting: f64) -> IntersectionObs {
        IntersectionObs {
            node,
            time: 0,
            incoming: vec![LinkObs {
                link: LinkId(0),
                direction: Direction::East,
                count: halting,
                halting,
                halting_by_movement: [0.0, halting, 0.0],
                head_wait: 30.0,
            }],
            outgoing_counts: vec![0.0],
            outgoing_links: vec![LinkId(1)],
            current_phase: 0,
            num_phases: 4,
        }
    }

    #[test]
    fn center_has_four_upstream_candidates() {
        let (_, agents, _, table) = setup();
        // Center of a 3x3 grid (col-major index 4) has 4 signalized
        // upstream neighbors.
        let center = agents.iter().position(|&n| n == agents[4]).unwrap();
        assert_eq!(table.upstream(center).len(), 4);
    }

    #[test]
    fn quiet_network_pairs_with_self() {
        let (_, agents, _, table) = setup();
        let obs: Vec<IntersectionObs> = agents.iter().map(|&n| quiet_obs(n)).collect();
        let partners = table.partners(&obs);
        for (a, &p) in partners.iter().enumerate() {
            assert_eq!(p, a, "no congestion => self-pairing");
        }
    }

    #[test]
    fn most_congested_upstream_wins() {
        let (_, agents, _, table) = setup();
        let center = 4usize;
        let ups = table.upstream(center).to_vec();
        assert!(ups.len() >= 2);
        let mut obs: Vec<IntersectionObs> = agents.iter().map(|&n| quiet_obs(n)).collect();
        obs[ups[0]] = congested_obs(agents[ups[0]], 3.0);
        obs[ups[1]] = congested_obs(agents[ups[1]], 9.0);
        let partners = table.partners(&obs);
        assert_eq!(partners[center], ups[1], "higher congestion wins");
    }

    #[test]
    fn pairing_tracks_changing_congestion() {
        let (_, agents, _, table) = setup();
        let center = 4usize;
        let ups = table.upstream(center).to_vec();
        let mut obs: Vec<IntersectionObs> = agents.iter().map(|&n| quiet_obs(n)).collect();
        obs[ups[0]] = congested_obs(agents[ups[0]], 5.0);
        assert_eq!(table.partners(&obs)[center], ups[0]);
        obs[ups[0]] = quiet_obs(agents[ups[0]]);
        obs[ups[1]] = congested_obs(agents[ups[1]], 5.0);
        assert_eq!(table.partners(&obs)[center], ups[1]);
    }
}
