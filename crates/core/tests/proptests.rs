//! Property-based tests for PairUpLight's observation encoding,
//! message regularizer, pairing rule, and fault-recovery determinism.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pairuplight::message::{bits_per_step, regularize};
use pairuplight::{FaultPlan, ObsEncoder, ObsNorm, PairUpLight, PairUpLightConfig, PairingTable};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{Direction, EnvConfig, IntersectionObs, LinkId, LinkObs, NodeId, SimConfig, TscEnv};

fn grid_setup(cols: usize, rows: usize) -> (Grid, Vec<NodeId>, ObsEncoder, PairingTable) {
    let grid = Grid::build(GridConfig {
        cols,
        rows,
        spacing: 200.0,
    })
    .expect("grid");
    let agents = grid.network().signalized_nodes();
    let enc = ObsEncoder::new(grid.network(), &agents, 4, ObsNorm::default());
    let table = PairingTable::new(grid.network(), &agents, &enc);
    (grid, agents, enc, table)
}

fn arbitrary_obs(node: NodeId, halting: f64, wait: f64, phase: usize) -> IntersectionObs {
    let left = (halting / 3.0).floor();
    let right = (halting / 4.0).floor();
    let through = halting - left - right;
    IntersectionObs {
        node,
        time: 0,
        incoming: vec![LinkObs {
            link: LinkId(0),
            direction: Direction::East,
            count: halting + 1.0,
            halting,
            halting_by_movement: [left, through, right],
            head_wait: wait,
        }],
        outgoing_counts: vec![0.5],
        outgoing_links: vec![LinkId(1)],
        current_phase: phase % 4,
        num_phases: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The regularizer always lands in (0, 1) for any input and σ.
    #[test]
    fn regularizer_output_in_unit_interval(
        raw in proptest::collection::vec(-50.0f32..50.0, 0..6),
        sigma in 0.0f32..3.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = regularize(&raw, sigma, &mut rng);
        prop_assert_eq!(out.len(), raw.len());
        for v in out {
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v.is_finite());
        }
    }

    /// Bit accounting is linear in bandwidth.
    #[test]
    fn bits_are_linear(bw in 0usize..64) {
        prop_assert_eq!(bits_per_step(bw), 32 * bw);
    }

    /// Local encodings always have the advertised dimension and finite
    /// entries, for any congestion level.
    #[test]
    fn encoding_dimension_is_stable(
        halting in 0.0f64..500.0,
        wait in 0.0f64..10_000.0,
        phase in 0usize..10,
    ) {
        let (_, agents, enc, _) = grid_setup(2, 2);
        let obs = arbitrary_obs(agents[0], halting.floor(), wait, phase);
        let v = enc.encode_local(&obs);
        prop_assert_eq!(v.len(), enc.local_dim());
        prop_assert!(v.iter().all(|x| x.is_finite()));
        let target = enc.message_target(&obs);
        prop_assert!((0.0..=1.0).contains(&(target as f64)) || (-1.0..=1.0).contains(&(target as f64)));
    }

    /// Partners are always valid agent indices, and always either the
    /// agent itself or one of its upstream neighbors.
    #[test]
    fn partners_are_upstream_or_self(
        congestion in proptest::collection::vec(0.0f64..50.0, 9),
        wait in 0.0f64..500.0,
    ) {
        let (_, agents, _, table) = grid_setup(3, 3);
        let obs: Vec<IntersectionObs> = agents
            .iter()
            .enumerate()
            .map(|(i, &n)| arbitrary_obs(n, congestion[i].floor(), wait, 0))
            .collect();
        let partners = table.partners(&obs);
        prop_assert_eq!(partners.len(), agents.len());
        for (a, &p) in partners.iter().enumerate() {
            prop_assert!(p < agents.len());
            prop_assert!(
                p == a || table.upstream(a).contains(&p),
                "agent {a} paired with non-upstream {p}"
            );
        }
    }

    /// Random pairing also stays within the upstream-or-self set.
    #[test]
    fn random_partners_are_upstream_or_self(seed in 0u64..300) {
        let (_, _agents, _, table) = grid_setup(3, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let partners = table.random_partners(&mut rng);
        for (a, &p) in partners.iter().enumerate() {
            prop_assert!(p == a || table.upstream(a).contains(&p));
        }
        let selfs = table.self_partners();
        for (a, &p) in selfs.iter().enumerate() {
            prop_assert_eq!(p, a);
        }
    }

    /// Critic encodings for different agents at the same joint state
    /// have identical length (padding works at edges and corners).
    #[test]
    fn critic_dims_uniform_across_agents(congestion in 0.0f64..40.0) {
        let (_, agents, enc, _) = grid_setup(3, 3);
        let obs: Vec<IntersectionObs> = agents
            .iter()
            .map(|&n| arbitrary_obs(n, congestion.floor(), 10.0, 1))
            .collect();
        for a in 0..agents.len() {
            prop_assert_eq!(enc.encode_critic(&obs, a).len(), enc.critic_dim());
        }
    }
}

fn train_env() -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())
        .expect("scenario");
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 140,
        },
        0,
    )
    .expect("env")
}

/// Trains 2 rounds x 2 parallel replicas with the given faults and
/// returns the final parameter bits.
fn train_with_faults(plan: FaultPlan) -> Vec<u32> {
    let mut cfg = PairUpLightConfig {
        hidden: 12,
        lstm_hidden: 12,
        num_envs: 2,
        ..Default::default()
    };
    cfg.ppo.epochs = 1;
    cfg.ppo.minibatch = 32;
    // Generous budget: the strategy may stack several panics on one
    // (round, env) point, each consuming one retry.
    cfg.max_round_retries = 5;
    let mut env = train_env();
    let model = PairUpLight::new(&env, cfg);
    model.inject_faults(plan);
    let mut model = model;
    model
        .train_checkpointed(&mut env, 4, 21, None, |_| {})
        .expect("training must survive injected worker panics");
    model
        .parameter_vector()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Fault-recovery determinism: worker panics injected at arbitrary
    /// (round, env) points never change the final parameters, because
    /// a panicked replica is retried with the same derived seed against
    /// a freshly reset environment.
    #[test]
    fn injected_worker_panics_never_change_final_parameters(
        points in proptest::collection::vec(0u64..4, 1..4),
    ) {
        let mut plan = FaultPlan::new();
        for &p in &points {
            // Decode each draw into (round 0..2, env replica 0..2).
            plan = plan.panic_worker(p / 2, (p % 2) as usize);
        }
        let faulted = train_with_faults(plan);
        let clean = train_with_faults(FaultPlan::new());
        prop_assert_eq!(faulted, clean);
    }
}
