//! Weight initialization schemes.
//!
//! Algorithm 1 (line 2) of the paper initializes policy and critic
//! parameters with **orthogonal initialization**, the standard choice
//! for stabilizing PPO; biases start at zero.

use rand::Rng;

use crate::tensor::Tensor;

/// Initialization scheme for a weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Orthogonal rows/columns scaled by the gain (paper default).
    Orthogonal {
        /// Scale applied after orthogonalization (e.g. `2f32.sqrt()`
        /// for ReLU trunks, `0.01` for policy heads).
        gain: f32,
    },
    /// Uniform Xavier/Glorot.
    Xavier,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Materializes a `rows × cols` tensor.
    pub fn tensor<R: Rng>(self, rows: usize, cols: usize, rng: &mut R) -> Tensor {
        match self {
            Init::Orthogonal { gain } => orthogonal(rows, cols, gain, rng),
            Init::Xavier => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                let mut t = Tensor::zeros(rows, cols);
                for v in t.data_mut() {
                    *v = rng.gen_range(-limit..limit);
                }
                t
            }
            Init::Zeros => Tensor::zeros(rows, cols),
        }
    }
}

/// Orthogonal initialization via modified Gram–Schmidt on a Gaussian
/// matrix. For non-square shapes the smaller dimension's vectors are
/// orthonormal (rows if `rows <= cols`, columns otherwise).
pub fn orthogonal<R: Rng>(rows: usize, cols: usize, gain: f32, rng: &mut R) -> Tensor {
    let transpose = rows < cols;
    let (n, m) = if transpose {
        (cols, rows)
    } else {
        (rows, cols)
    };
    // n >= m: orthonormalize the m columns of an n x m Gaussian matrix.
    let g = Tensor::randn(n, m, 1.0, rng);
    let mut cols_v: Vec<Vec<f32>> = (0..m)
        .map(|c| (0..n).map(|r| g.get(r, c)).collect())
        .collect();
    for c in 0..m {
        for prev in 0..c {
            let dot: f32 = cols_v[c]
                .iter()
                .zip(&cols_v[prev])
                .map(|(a, b)| a * b)
                .sum();
            let prev_col = cols_v[prev].clone();
            for (x, p) in cols_v[c].iter_mut().zip(&prev_col) {
                *x -= dot * p;
            }
        }
        let norm: f32 = cols_v[c].iter().map(|x| x * x).sum::<f32>().sqrt();
        // Degenerate columns (measure zero) fall back to a unit vector.
        if norm < 1e-6 {
            for (i, x) in cols_v[c].iter_mut().enumerate() {
                *x = if i == c % n { 1.0 } else { 0.0 };
            }
        } else {
            for x in &mut cols_v[c] {
                *x /= norm;
            }
        }
    }
    let mut out = Tensor::zeros(rows, cols);
    for (c, col) in cols_v.iter().enumerate() {
        for (r, &x) in col.iter().enumerate() {
            let v = gain * x;
            if transpose {
                out.set(c, r, v);
            } else {
                out.set(r, c, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_orthonormal_cols(t: &Tensor, tol: f32) {
        for c1 in 0..t.cols() {
            for c2 in 0..t.cols() {
                let dot: f32 = (0..t.rows()).map(|r| t.get(r, c1) * t.get(r, c2)).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < tol,
                    "cols {c1},{c2}: dot {dot} expect {expect}"
                );
            }
        }
    }

    #[test]
    fn tall_orthogonal_has_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = orthogonal(10, 4, 1.0, &mut rng);
        assert_orthonormal_cols(&t, 1e-4);
    }

    #[test]
    fn wide_orthogonal_has_orthonormal_rows() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = orthogonal(3, 8, 1.0, &mut rng).transpose();
        assert_orthonormal_cols(&t, 1e-4);
    }

    #[test]
    fn gain_scales_norms() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = orthogonal(6, 6, 2.0, &mut rng);
        for c in 0..6 {
            let norm: f32 = (0..6).map(|r| t.get(r, c).powi(2)).sum::<f32>().sqrt();
            assert!((norm - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn zeros_and_xavier_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(Init::Zeros.tensor(2, 3, &mut rng).sum(), 0.0);
        let x = Init::Xavier.tensor(4, 4, &mut rng);
        let limit = (6.0f32 / 8.0).sqrt();
        assert!(x.data().iter().all(|v| v.abs() <= limit));
    }
}
