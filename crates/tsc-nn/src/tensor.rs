//! A minimal dense 2-D tensor.
//!
//! All networks in this reproduction are small MLP/LSTM stacks, so a
//! row-major `Vec<f32>` matrix with a handful of BLAS-free kernels is
//! all the linear algebra required.

use std::fmt;

use rand::Rng;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tsc_nn::Tensor;
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.shape(), (2, 2));
/// assert_eq!(t.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows or zero rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A single-row tensor from a slice.
    pub fn row_from_slice(v: &[f32]) -> Self {
        Tensor::from_vec(1, v.len(), v.to_vec())
    }

    /// Standard-normal random tensor scaled by `std`.
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        // Box–Muller; avoids a rand_distr dependency.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen::<f32>().max(1e-12);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `other`'s elements into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "copy_from shapes");
        self.data.copy_from_slice(&other.data);
    }

    /// Ensures `self` is `rows × cols`, reallocating only on shape
    /// change. Returns `true` when a fresh allocation was required —
    /// this is the hook the inference path's allocation probes count
    /// (steady state: always `false`). Contents are unspecified after
    /// the call; callers are expected to overwrite every element.
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) -> bool {
        if self.rows == rows && self.cols == cols {
            return false;
        }
        *self = Tensor::zeros(rows, cols);
        true
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols());
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self @ other` written into a pre-sized `out`
    /// (fully overwritten). This is the same kernel as
    /// [`matmul`](Self::matmul) — identical loop structure and
    /// accumulation order — so results are bit-identical; it only skips
    /// the output allocation, which is what the tape-free inference
    /// path reuses across steps.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or a mis-sized `out`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_into out");
        out.fill_zero();
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise map to a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn randn_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::randn(100, 100, 1.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.add_assign(&b);
        a.scale_assign(0.5);
        assert_eq!(a, Tensor::full(2, 2, 1.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tensor::zeros(1, 1).to_string().is_empty());
    }

    #[test]
    fn matmul_into_is_bit_identical_to_matmul() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(5, 7, 1.0, &mut rng);
        let b = Tensor::randn(7, 4, 1.0, &mut rng);
        let fresh = a.matmul(&b);
        // Reused, dirty output buffer: must be fully overwritten.
        let mut out = Tensor::full(5, 4, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn ensure_shape_reallocates_only_on_change() {
        let mut t = Tensor::zeros(2, 3);
        assert!(!t.ensure_shape(2, 3));
        assert!(t.ensure_shape(4, 3));
        assert_eq!(t.shape(), (4, 3));
        assert!(!t.ensure_shape(4, 3));
    }

    #[test]
    fn copy_from_and_row_mut() {
        let src = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Tensor::zeros(2, 2);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.row_mut(1).copy_from_slice(&[9.0, 8.0]);
        assert_eq!(dst.row(1), &[9.0, 8.0]);
    }
}
