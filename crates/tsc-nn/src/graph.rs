//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of one forward pass on a tape;
//! [`Graph::backward`] walks the tape in reverse, accumulating exact
//! gradients into the [`Params`] set. The op set
//! is exactly what PPO/A2C/DQN over MLP+LSTM networks need — nothing
//! more.
//!
//! # Examples
//!
//! ```
//! use tsc_nn::{Graph, Params, Tensor};
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::from_rows(&[&[2.0], &[3.0]]));
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[1.0, 4.0]]));
//! let wv = g.param(&params, w);
//! let y = g.matmul(x, wv); // 1x1: 1*2 + 4*3 = 14
//! let loss = g.sum(y);
//! g.backward(loss, &mut params);
//! assert_eq!(g.value(y).get(0, 0), 14.0);
//! assert_eq!(params.grad(w).data(), &[1.0, 4.0]);
//! ```

use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    // The scalar shift has unit gradient, so backward never reads it;
    // it is kept for Debug output of the tape.
    AddScalar(Var, #[allow(dead_code)] f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    Softmax(Var),
    LogSoftmax(Var),
    GatherCols(Var, Vec<usize>),
    Sum(Var),
    Mean(Var),
    Square(Var),
    Clamp(Var, f32, f32),
    Minimum(Var, Var),
    ConcatCols(Var, Var),
    SliceCols(Var, usize),
    Transpose(Var),
}

/// A single forward pass' computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    values: Vec<Tensor>,
    ops: Vec<Op>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.values.push(value);
        self.ops.push(op);
        Var(self.values.len() - 1)
    }

    /// The computed value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A constant input (no gradient flows back out of it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// A view of parameter `id`; gradients accumulate into `params` on
    /// [`backward`](Self::backward).
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of equal-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.values[a.0].shape(), self.values[b.0].shape());
        let mut v = self.values[a.0].clone();
        v.add_assign(&self.values[b.0]);
        self.push(v, Op::Add(a, b))
    }

    /// Adds a `1 × m` row vector to every row of an `n × m` matrix.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (n, m) = self.values[a.0].shape();
        assert_eq!(self.values[row.0].shape(), (1, m), "row vector shape");
        let mut v = self.values[a.0].clone();
        for r in 0..n {
            for c in 0..m {
                let x = v.get(r, c) + self.values[row.0].get(0, c);
                v.set(r, c, x);
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.values[a.0].shape(), self.values[b.0].shape());
        let b_t = self.values[b.0].clone();
        let v = Tensor::from_vec(
            b_t.rows(),
            b_t.cols(),
            self.values[a.0]
                .data()
                .iter()
                .zip(b_t.data())
                .map(|(x, y)| x - y)
                .collect(),
        );
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.values[a.0].shape(), self.values[b.0].shape());
        let v = Tensor::from_vec(
            self.values[a.0].rows(),
            self.values[a.0].cols(),
            self.values[a.0]
                .data()
                .iter()
                .zip(self.values[b.0].data())
                .map(|(x, y)| x * y)
                .collect(),
        );
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.values[a.0].map(|x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.values[a.0].map(|x| x + s);
        self.push(v, Op::AddScalar(a, s))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let v = softmax_rows(&self.values[a.0]);
        self.push(v, Op::Softmax(a))
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let x = &self.values[a.0];
        let mut v = x.clone();
        for r in 0..x.rows() {
            let max = x.row(r).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let logsum = x.row(r).iter().map(|&y| (y - max).exp()).sum::<f32>().ln() + max;
            for c in 0..x.cols() {
                v.set(r, c, x.get(r, c) - logsum);
            }
        }
        self.push(v, Op::LogSoftmax(a))
    }

    /// Picks one column per row: output `n × 1` with
    /// `out[r] = a[r, cols[r]]`.
    ///
    /// # Panics
    ///
    /// Panics if `cols.len()` differs from the row count or an index is
    /// out of range.
    pub fn gather_cols(&mut self, a: Var, cols: Vec<usize>) -> Var {
        let x = &self.values[a.0];
        assert_eq!(cols.len(), x.rows(), "one column index per row");
        let mut v = Tensor::zeros(x.rows(), 1);
        for (r, &c) in cols.iter().enumerate() {
            v.set(r, 0, x.get(r, c));
        }
        self.push(v, Op::GatherCols(a, cols))
    }

    /// Sum of all elements (`1 × 1`).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.values[a.0].sum()]);
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements (`1 × 1`).
    pub fn mean(&mut self, a: Var) -> Var {
        let n = self.values[a.0].len() as f32;
        let v = Tensor::from_vec(1, 1, vec![self.values[a.0].sum() / n]);
        self.push(v, Op::Mean(a))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Element-wise clamp into `[lo, hi]`; gradient passes only through
    /// the un-clipped region (as in PPO's clipped objective).
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        let v = self.values[a.0].map(|x| x.clamp(lo, hi));
        self.push(v, Op::Clamp(a, lo, hi))
    }

    /// Element-wise minimum; the gradient flows to the smaller operand
    /// (ties go to `a`).
    pub fn minimum(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.values[a.0].shape(), self.values[b.0].shape());
        let v = Tensor::from_vec(
            self.values[a.0].rows(),
            self.values[a.0].cols(),
            self.values[a.0]
                .data()
                .iter()
                .zip(self.values[b.0].data())
                .map(|(x, y)| x.min(*y))
                .collect(),
        );
        self.push(v, Op::Minimum(a, b))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let x = &self.values[a.0];
        let y = &self.values[b.0];
        assert_eq!(x.rows(), y.rows(), "concat row mismatch");
        let mut v = Tensor::zeros(x.rows(), x.cols() + y.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                v.set(r, c, x.get(r, c));
            }
            for c in 0..y.cols() {
                v.set(r, x.cols() + c, y.get(r, c));
            }
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Columns `start..end` as a new tensor.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let x = &self.values[a.0];
        assert!(start < end && end <= x.cols(), "slice bounds");
        let mut v = Tensor::zeros(x.rows(), end - start);
        for r in 0..x.rows() {
            for c in start..end {
                v.set(r, c - start, x.get(r, c));
            }
        }
        self.push(v, Op::SliceCols(a, start))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.values[a.0].transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Runs reverse-mode differentiation from scalar `loss`, adding
    /// parameter gradients into `params`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var, params: &mut Params) {
        assert_eq!(self.values[loss.0].shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Tensor> = self
            .values
            .iter()
            .map(|v| Tensor::zeros(v.rows(), v.cols()))
            .collect();
        grads[loss.0].set(0, 0, 1.0);
        for i in (0..self.ops.len()).rev() {
            if grads[i].data().iter().all(|&x| x == 0.0) {
                continue;
            }
            let g = grads[i].clone();
            match &self.ops[i] {
                Op::Leaf => {}
                Op::Param(id) => params.accumulate_grad(*id, &g),
                Op::MatMul(a, b) => {
                    let da = g.matmul(&self.values[b.0].transpose());
                    let db = self.values[a.0].transpose().matmul(&g);
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::AddRow(a, row) => {
                    grads[a.0].add_assign(&g);
                    let mut dr = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            dr.set(0, c, dr.get(0, c) + g.get(r, c));
                        }
                    }
                    grads[row.0].add_assign(&dr);
                }
                Op::Sub(a, b) => {
                    grads[a.0].add_assign(&g);
                    let neg = g.map(|x| -x);
                    grads[b.0].add_assign(&neg);
                }
                Op::Mul(a, b) => {
                    let da = elementwise(&g, &self.values[b.0], |x, y| x * y);
                    let db = elementwise(&g, &self.values[a.0], |x, y| x * y);
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::Scale(a, s) => {
                    let da = g.map(|x| x * s);
                    grads[a.0].add_assign(&da);
                }
                Op::AddScalar(a, _) => grads[a.0].add_assign(&g),
                Op::Sigmoid(a) => {
                    let da = elementwise(&g, &self.values[i], |gi, y| gi * y * (1.0 - y));
                    grads[a.0].add_assign(&da);
                }
                Op::Tanh(a) => {
                    let da = elementwise(&g, &self.values[i], |gi, y| gi * (1.0 - y * y));
                    grads[a.0].add_assign(&da);
                }
                Op::Relu(a) => {
                    let da = elementwise(
                        &g,
                        &self.values[a.0],
                        |gi, x| {
                            if x > 0.0 {
                                gi
                            } else {
                                0.0
                            }
                        },
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::Exp(a) => {
                    let da = elementwise(&g, &self.values[i], |gi, y| gi * y);
                    grads[a.0].add_assign(&da);
                }
                Op::Softmax(a) => {
                    let y = &self.values[i];
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::LogSoftmax(a) => {
                    let y = &self.values[i]; // log-probs
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = (0..y.cols()).map(|c| g.get(r, c)).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, g.get(r, c) - y.get(r, c).exp() * gsum);
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::GatherCols(a, cols) => {
                    let mut da = Tensor::zeros(self.values[a.0].rows(), self.values[a.0].cols());
                    for (r, &c) in cols.iter().enumerate() {
                        da.set(r, c, g.get(r, 0));
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::Sum(a) => {
                    let da = Tensor::full(
                        self.values[a.0].rows(),
                        self.values[a.0].cols(),
                        g.get(0, 0),
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::Mean(a) => {
                    let n = self.values[a.0].len() as f32;
                    let da = Tensor::full(
                        self.values[a.0].rows(),
                        self.values[a.0].cols(),
                        g.get(0, 0) / n,
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::Square(a) => {
                    let da = elementwise(&g, &self.values[a.0], |gi, x| gi * 2.0 * x);
                    grads[a.0].add_assign(&da);
                }
                Op::Clamp(a, lo, hi) => {
                    let da = elementwise(&g, &self.values[a.0], |gi, x| {
                        if x > *lo && x < *hi {
                            gi
                        } else {
                            0.0
                        }
                    });
                    grads[a.0].add_assign(&da);
                }
                Op::Minimum(a, b) => {
                    let xa = &self.values[a.0];
                    let xb = &self.values[b.0];
                    let mut da = Tensor::zeros(xa.rows(), xa.cols());
                    let mut db = Tensor::zeros(xa.rows(), xa.cols());
                    for r in 0..xa.rows() {
                        for c in 0..xa.cols() {
                            if xa.get(r, c) <= xb.get(r, c) {
                                da.set(r, c, g.get(r, c));
                            } else {
                                db.set(r, c, g.get(r, c));
                            }
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.values[a.0].cols();
                    let cb = self.values[b.0].cols();
                    let mut da = Tensor::zeros(g.rows(), ca);
                    let mut db = Tensor::zeros(g.rows(), cb);
                    for r in 0..g.rows() {
                        for c in 0..ca {
                            da.set(r, c, g.get(r, c));
                        }
                        for c in 0..cb {
                            db.set(r, c, g.get(r, ca + c));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::Transpose(a) => {
                    let da = g.transpose();
                    grads[a.0].add_assign(&da);
                }
                Op::SliceCols(a, start) => {
                    let mut da = Tensor::zeros(self.values[a.0].rows(), self.values[a.0].cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            da.set(r, start + c, g.get(r, c));
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
            }
        }
    }
}

/// Row-wise numerically stable softmax on a plain tensor (also used by
/// inference-time action sampling without a tape).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut v = x.clone();
    softmax_rows_into(x, &mut v);
    v
}

/// Row-wise softmax written into a pre-sized `out` (fully overwritten),
/// bit-identical to [`softmax_rows`]. Lets the tape-free serving hot
/// loop reuse one probability buffer across steps.
///
/// # Panics
///
/// Panics if `out`'s shape differs from `x`'s.
pub fn softmax_rows_into(x: &Tensor, out: &mut Tensor) {
    assert_eq!(out.shape(), x.shape(), "softmax_rows_into out");
    for r in 0..x.rows() {
        let max = x.row(r).iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for c in 0..x.cols() {
            let e = (x.get(r, c) - max).exp();
            out.set(r, c, e);
            sum += e;
        }
        for c in 0..x.cols() {
            out.set(r, c, out.get(r, c) / sum);
        }
    }
}

fn elementwise(g: &Tensor, x: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(g.shape(), x.shape());
    Tensor::from_vec(
        g.rows(),
        g.cols(),
        g.data()
            .iter()
            .zip(x.data())
            .map(|(&gi, &xi)| f(gi, xi))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check: for a scalar loss `f(params)`, compare
    /// the analytic gradient with `(f(p + eps) - f(p - eps)) / (2 eps)`.
    fn grad_check<F>(build: F, rows: usize, cols: usize, seed: u64)
    where
        F: Fn(&mut Graph, &Params, ParamId) -> Var,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let w = params.add("w", Tensor::randn(rows, cols, 0.5, &mut rng));
        // Analytic gradient.
        let mut g = Graph::new();
        let loss = build(&mut g, &params, w);
        params.zero_grad();
        g.backward(loss, &mut params);
        let analytic = params.grad(w).clone();
        // Numeric gradient.
        let eps = 1e-3f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = params.value(w).get(r, c);
                params.value_mut(w).set(r, c, orig + eps);
                let mut gp = Graph::new();
                let lp = build(&mut gp, &params, w);
                let fp = gp.value(lp).get(0, 0);
                params.value_mut(w).set(r, c, orig - eps);
                let mut gm = Graph::new();
                let lm = build(&mut gm, &params, w);
                let fm = gm.value(lm).get(0, 0);
                params.value_mut(w).set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_check_matmul_sigmoid_sum() {
        grad_check(
            |g, p, w| {
                let x = g.input(Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[0.9, 0.2, -0.4]]));
                let wv = g.param(p, w);
                let y = g.matmul(x, wv);
                let s = g.sigmoid(y);
                g.sum(s)
            },
            3,
            2,
            0,
        );
    }

    #[test]
    fn grad_check_tanh_mul_mean() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w);
                let t = g.tanh(wv);
                let sq = g.mul(t, t);
                g.mean(sq)
            },
            4,
            3,
            1,
        );
    }

    #[test]
    fn grad_check_softmax_gather() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w);
                let ls = g.log_softmax(wv);
                let picked = g.gather_cols(ls, vec![1, 0, 2]);
                let neg = g.scale(picked, -1.0);
                g.mean(neg)
            },
            3,
            4,
            2,
        );
    }

    #[test]
    fn grad_check_softmax_entropy() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w);
                let probs = g.softmax(wv);
                let logp = g.log_softmax(wv);
                let plogp = g.mul(probs, logp);
                let s = g.sum(plogp);
                g.scale(s, -1.0)
            },
            2,
            5,
            3,
        );
    }

    #[test]
    fn grad_check_clamp_minimum_ppo_shape() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w);
                let ratio = g.exp(wv);
                let adv = g.input(Tensor::from_rows(&[&[1.0, -0.5, 0.2], &[-1.2, 0.8, 0.1]]));
                let surr1 = g.mul(ratio, adv);
                let clipped = g.clamp(ratio, 0.8, 1.2);
                let surr2 = g.mul(clipped, adv);
                let m = g.minimum(surr1, surr2);
                let s = g.mean(m);
                g.scale(s, -1.0)
            },
            2,
            3,
            4,
        );
    }

    #[test]
    fn grad_check_concat_slice_relu() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w);
                let x = g.input(Tensor::from_rows(&[&[0.5, -0.3], &[0.1, 0.9]]));
                let cat = g.concat_cols(x, wv);
                let r = g.relu(cat);
                let sl = g.slice_cols(r, 1, 4);
                let sq = g.square(sl);
                g.sum(sq)
            },
            2,
            2,
            5,
        );
    }

    #[test]
    fn grad_check_add_row_bias() {
        grad_check(
            |g, p, w| {
                let x = g.input(Tensor::from_rows(&[
                    &[0.3, -0.7, 1.1],
                    &[0.9, 0.2, -0.4],
                    &[-0.2, 0.5, 0.6],
                ]));
                let b = g.param(p, w);
                let y = g.add_row(x, b);
                let t = g.tanh(y);
                g.sum(t)
            },
            1,
            3,
            6,
        );
    }

    #[test]
    fn grad_check_sub_square_value_loss() {
        grad_check(
            |g, p, w| {
                let v = g.param(p, w);
                let target = g.input(Tensor::from_rows(&[&[1.0], &[-2.0], &[0.5]]));
                let d = g.sub(v, target);
                let sq = g.square(d);
                g.mean(sq)
            },
            3,
            1,
            7,
        );
    }

    #[test]
    fn grad_check_transpose_attention_shape() {
        grad_check(
            |g, p, w| {
                let wv = g.param(p, w); // 2x3 "keys"
                let q = g.input(Tensor::from_rows(&[&[0.4, -0.9]]));
                let kt = g.transpose(wv); // 3x2 -> wait: w is 2x3, kt 3x2
                let scores = g.matmul(q, wv); // 1x3
                let sm = g.softmax(scores);
                let ctx = g.matmul(sm, kt); // 1x2

                g.sum(ctx)
            },
            2,
            3,
            8,
        );
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn unused_branches_get_zero_grad() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(1, 1, 2.0));
        let u = params.add("unused", Tensor::full(1, 1, 3.0));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let _uv = g.param(&params, u);
        let loss = g.sum(wv);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).get(0, 0), 1.0);
        assert_eq!(params.grad(u).get(0, 0), 0.0);
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(1, 1, 2.0));
        for _ in 0..3 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let loss = g.sum(wv);
            g.backward(loss, &mut params);
        }
        assert_eq!(params.grad(w).get(0, 0), 3.0);
    }
}
