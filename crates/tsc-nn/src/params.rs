//! Trainable parameter storage shared across forward passes.
//!
//! A [`Params`] set owns every weight tensor of a model together with
//! its gradient accumulator. Computation graphs reference parameters by
//! [`ParamId`]; [`Graph::backward`](crate::graph::Graph::backward)
//! accumulates into the matching gradient slot, and the optimizer in
//! [`optim`](crate::optim) consumes the accumulated gradients.

use crate::tensor::Tensor;

/// Identifier of one parameter tensor inside a [`Params`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable tensors and their gradients.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

impl Params {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Params {
            names: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// Registers a tensor and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Value of parameter `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value of parameter `id`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Gradient accumulator of parameter `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Name of parameter `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Adds `delta` into the gradient of `id` (used by the graph).
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
        norm
    }

    /// Copies every value from `other` (matching ids) — used for target
    /// network synchronization in DQN.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different layouts.
    pub fn copy_from(&mut self, other: &Params) {
        assert_eq!(self.len(), other.len(), "param set layout mismatch");
        for i in 0..self.values.len() {
            assert_eq!(self.values[i].shape(), other.values[i].shape());
            self.values[i] = other.values[i].clone();
        }
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::full(2, 3, 1.0));
        assert_eq!(p.value(id).shape(), (2, 3));
        assert_eq!(p.name(id), "w");
        assert_eq!(p.num_scalars(), 6);
        assert_eq!(p.grad(id).sum(), 0.0);
    }

    #[test]
    fn grad_clipping_scales_to_max_norm() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::zeros(1, 2));
        p.accumulate_grad(id, &Tensor::from_rows(&[&[3.0, 4.0]]));
        let pre = p.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((p.grad_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::zeros(1, 2));
        p.accumulate_grad(id, &Tensor::from_rows(&[&[3.0, 4.0]]));
        p.zero_grad();
        assert_eq!(p.grad_norm(), 0.0);
    }

    #[test]
    fn copy_from_synchronizes_values() {
        let mut a = Params::new();
        let ia = a.add("w", Tensor::full(1, 2, 1.0));
        let mut b = Params::new();
        let _ = b.add("w", Tensor::full(1, 2, 9.0));
        a.copy_from(&b);
        assert_eq!(a.value(ia).get(0, 0), 9.0);
    }
}
