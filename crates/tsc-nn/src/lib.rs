//! # tsc-nn — minimal neural networks with exact reverse-mode autograd
//!
//! The neural substrate of the PairUpLight reproduction: dense tensors
//! ([`tensor`]), a tape autograd ([`graph`]) covering exactly the op set
//! PPO/A2C/DQN over MLP+LSTM networks require, layers ([`layers`]),
//! orthogonal initialization ([`init`], Algorithm 1 line 2 of the
//! paper), and Adam ([`optim`]).
//!
//! Every gradient rule is validated by finite-difference checks in the
//! module tests.
//!
//! ## Quickstart
//!
//! ```
//! use tsc_nn::{Adam, Graph, Init, Linear, Params, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let layer = Linear::new(&mut params, "fc", 2, 1, Init::Orthogonal { gain: 1.0 }, &mut rng);
//! let mut opt = Adam::new(&params, 1e-2);
//! // One gradient step towards y = 1 for input [1, 0].
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[1.0, 0.0]]));
//! let y = layer.forward(&mut g, &params, x);
//! let target = g.input(Tensor::from_rows(&[&[1.0]]));
//! let d = g.sub(y, target);
//! let sq = g.square(d);
//! let loss = g.mean(sq);
//! g.backward(loss, &mut params);
//! opt.step(&mut params);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod init;
pub mod io;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{softmax_rows, softmax_rows_into, Graph, Var};
pub use init::{orthogonal, Init};
pub use io::{load_adam, load_params, save_adam, save_params, LoadError};
pub use layers::{Linear, LstmCell, LstmScratch, LstmState};
pub use optim::Adam;
pub use params::{ParamId, Params};
pub use tensor::Tensor;
