//! Gradient-descent optimizers.

use crate::params::Params;
use crate::tensor::Tensor;

/// Adam optimizer state over one [`Params`] set.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer for `params` with learning rate `lr`
    /// and standard betas (0.9, 0.999).
    pub fn new(params: &Params, lr: f32) -> Self {
        let m = params
            .ids()
            .map(|id| {
                let t = params.value(id);
                Tensor::zeros(t.rows(), t.cols())
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m,
            v,
        }
    }

    /// Rebuilds an optimizer from persisted state (see
    /// [`load_adam`](crate::io::load_adam)). The moment vectors `m` and
    /// `v` must be pairwise shape-identical; `t` is the number of
    /// [`step`](Self::step) calls already applied, so a restored
    /// optimizer continues bias correction exactly where the saved one
    /// stopped.
    ///
    /// # Errors
    ///
    /// Returns a message when `m` and `v` disagree in length or shape.
    pub fn from_state(
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: u64,
        m: Vec<Tensor>,
        v: Vec<Tensor>,
    ) -> Result<Self, String> {
        if m.len() != v.len() {
            return Err(format!(
                "moment count mismatch: {} first moments vs {} second moments",
                m.len(),
                v.len()
            ));
        }
        for (i, (mi, vi)) in m.iter().zip(&v).enumerate() {
            if mi.shape() != vi.shape() {
                return Err(format!(
                    "moment {i} shape mismatch: m is {:?}, v is {:?}",
                    mi.shape(),
                    vi.shape()
                ));
            }
        }
        Ok(Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        })
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules/annealing).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// The `(β₁, β₂)` decay rates.
    pub fn betas(&self) -> (f32, f32) {
        (self.beta1, self.beta2)
    }

    /// The denominator stabilizer ε.
    pub fn epsilon(&self) -> f32 {
        self.eps
    }

    /// Number of update steps applied so far. Together with
    /// [`moments`](Self::moments) this is the full optimizer state:
    /// bias correction depends on `t`, so faithful checkpoint resume is
    /// impossible without persisting it.
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// The first (`m`) and second (`v`) moment estimates, in parameter
    /// registration order.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Whether this optimizer's moment tensors match `params` tensor
    /// for tensor (count and shapes) — the precondition of
    /// [`step`](Self::step).
    pub fn matches(&self, params: &Params) -> bool {
        self.m.len() == params.len()
            && params
                .ids()
                .all(|id| self.m[id.index()].shape() == params.value(id).shape())
    }

    /// Applies one update from the gradients accumulated in `params`,
    /// then zeroes them.
    ///
    /// # Panics
    ///
    /// Panics if `params` gained tensors since construction.
    pub fn step(&mut self, params: &mut Params) {
        assert_eq!(self.m.len(), params.len(), "param set changed size");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in params.ids() {
            let i = id.index();
            let grad = params.grad(id).clone();
            let m = &mut self.m[i];
            for (mi, gi) in m.data_mut().iter_mut().zip(grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = &mut self.v[i];
            for (vi, gi) in v.data_mut().iter_mut().zip(grad.data()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = params.value_mut(id);
            for ((wi, mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(self.m[i].data())
                .zip(self.v[i].data())
            {
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        params.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Adam should minimize a simple quadratic `(w - 3)^2`.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(1, 1, -5.0));
        let mut opt = Adam::new(&params, 0.1);
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let target = g.input(Tensor::full(1, 1, 3.0));
            let d = g.sub(wv, target);
            let sq = g.square(d);
            let loss = g.sum(sq);
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let final_w = params.value(w).get(0, 0);
        assert!((final_w - 3.0).abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(1, 1, 1.0));
        let mut opt = Adam::new(&params, 0.01);
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let loss = g.sum(wv);
        g.backward(loss, &mut params);
        assert!(params.grad_norm() > 0.0);
        opt.step(&mut params);
        assert_eq!(params.grad_norm(), 0.0);
    }

    #[test]
    fn lr_schedule_is_settable() {
        let params = Params::new();
        let mut opt = Adam::new(&params, 0.01);
        opt.set_lr(0.001);
        assert_eq!(opt.lr(), 0.001);
    }
}
