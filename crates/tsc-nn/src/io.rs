//! Plain-text persistence for parameter sets.
//!
//! A dependency-free, human-inspectable format for saving trained
//! weights (e.g. a trained PairUpLight policy) and reloading them later:
//!
//! ```text
//! tsc-nn-params v1
//! <tensor count>
//! <name> <rows> <cols>
//! <row-major f32 values, space separated>
//! …
//! ```
//!
//! Values round-trip exactly (written via the shortest-precise float
//! formatting of Rust's `{:?}`).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::params::Params;
use crate::tensor::Tensor;

/// Errors produced when loading a parameter file.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a `tsc-nn-params v1` file or is malformed.
    Format(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(msg) => write!(f, "malformed parameter file: {msg}"),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes `params` in the v1 text format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn save_params<W: Write>(params: &Params, mut w: W) -> std::io::Result<()> {
    writeln!(w, "tsc-nn-params v1")?;
    writeln!(w, "{}", params.len())?;
    for id in params.ids() {
        let t = params.value(id);
        writeln!(w, "{} {} {}", params.name(id), t.rows(), t.cols())?;
        let mut first = true;
        for v in t.data() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{v:?}")?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a parameter set written by [`save_params`].
///
/// # Errors
///
/// Returns [`LoadError::Format`] on malformed content and
/// [`LoadError::Io`] on reader failures.
pub fn load_params<R: Read>(r: R) -> Result<Params, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, LoadError> {
        lines
            .next()
            .ok_or_else(|| LoadError::Format("unexpected end of file".into()))?
            .map_err(LoadError::from)
    };
    let header = next()?;
    if header.trim() != "tsc-nn-params v1" {
        return Err(LoadError::Format(format!("bad header {header:?}")));
    }
    let count: usize = next()?
        .trim()
        .parse()
        .map_err(|e| LoadError::Format(format!("bad tensor count: {e}")))?;
    let mut params = Params::new();
    for i in 0..count {
        let meta = next()?;
        let mut parts = meta.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| LoadError::Format(format!("tensor {i}: missing name")))?
            .to_string();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("tensor {name}: bad rows")))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("tensor {name}: bad cols")))?;
        let data_line = next()?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|s| {
                s.parse::<f32>()
                    .map_err(|e| LoadError::Format(format!("tensor {name}: bad value {s:?}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(LoadError::Format(format!(
                "tensor {name}: expected {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        params.add(name, Tensor::from_vec(rows, cols, data));
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params() -> Params {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Params::new();
        p.add("w1", Tensor::randn(3, 4, 1.0, &mut rng));
        p.add("b1", Tensor::zeros(1, 4));
        p.add("odd", Tensor::from_rows(&[&[f32::MIN_POSITIVE, -0.0, 1e30]]));
        p
    }

    #[test]
    fn round_trip_is_exact() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert_eq!(p.len(), q.len());
        for (a, b) in p.ids().zip(q.ids()) {
            assert_eq!(p.name(a), q.name(b));
            assert_eq!(p.value(a), q.value(b), "{}", p.name(a));
        }
    }

    #[test]
    fn header_is_validated() {
        let err = load_params("not a params file\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_params(truncated).is_err());
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        let text = "tsc-nn-params v1\n1\nw 2 2\n1.0 2.0 3.0\n";
        let err = load_params(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4 values"));
    }

    #[test]
    fn empty_param_set_round_trips() {
        let p = Params::new();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert!(q.is_empty());
    }
}
