//! Plain-text persistence for parameter sets and optimizer state.
//!
//! A dependency-free, human-inspectable format for saving trained
//! weights (e.g. a trained PairUpLight policy) and reloading them later:
//!
//! ```text
//! tsc-nn-params v1
//! <tensor count>
//! <name> <rows> <cols>
//! <row-major f32 values, space separated>
//! …
//! ```
//!
//! The companion optimizer stream ([`save_adam`]/[`load_adam`]) extends
//! the same format so a checkpoint can capture the *full* training
//! state — Adam's first/second moments **and its timestep** `t`, without
//! which bias correction restarts and a resumed run diverges from an
//! uninterrupted one:
//!
//! ```text
//! tsc-nn-adam v1
//! <lr> <beta1> <beta2> <eps> <t> <tensor count>
//! <rows> <cols>
//! <m values, space separated>
//! <v values, space separated>
//! …
//! ```
//!
//! Values round-trip exactly (written via the shortest-precise float
//! formatting of Rust's `{:?}`).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::optim::Adam;
use crate::params::Params;
use crate::tensor::Tensor;

/// Errors produced when loading a parameter file.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a `tsc-nn-params v1` file or is malformed.
    Format(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(msg) => write!(f, "malformed parameter file: {msg}"),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes `params` in the v1 text format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn save_params<W: Write>(params: &Params, mut w: W) -> std::io::Result<()> {
    writeln!(w, "tsc-nn-params v1")?;
    writeln!(w, "{}", params.len())?;
    for id in params.ids() {
        let t = params.value(id);
        writeln!(w, "{} {} {}", params.name(id), t.rows(), t.cols())?;
        let mut first = true;
        for v in t.data() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{v:?}")?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a parameter set written by [`save_params`].
///
/// # Errors
///
/// Returns [`LoadError::Format`] on malformed content and
/// [`LoadError::Io`] on reader failures.
pub fn load_params<R: Read>(r: R) -> Result<Params, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, LoadError> {
        lines
            .next()
            .ok_or_else(|| LoadError::Format("unexpected end of file".into()))?
            .map_err(LoadError::from)
    };
    let header = next()?;
    if header.trim() != "tsc-nn-params v1" {
        return Err(LoadError::Format(format!("bad header {header:?}")));
    }
    let count: usize = next()?
        .trim()
        .parse()
        .map_err(|e| LoadError::Format(format!("bad tensor count: {e}")))?;
    let mut params = Params::new();
    for i in 0..count {
        let meta = next()?;
        let mut parts = meta.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| LoadError::Format(format!("tensor {i}: missing name")))?
            .to_string();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("tensor {name}: bad rows")))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("tensor {name}: bad cols")))?;
        let data_line = next()?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|s| {
                s.parse::<f32>()
                    .map_err(|e| LoadError::Format(format!("tensor {name}: bad value {s:?}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(LoadError::Format(format!(
                "tensor {name}: expected {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        params.add(name, Tensor::from_vec(rows, cols, data));
    }
    Ok(params)
}

/// Writes the full Adam optimizer state (hyper-parameters, timestep
/// `t`, and both moment vectors) in the v1 text format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn save_adam<W: Write>(opt: &Adam, mut w: W) -> std::io::Result<()> {
    let (beta1, beta2) = opt.betas();
    let (m, v) = opt.moments();
    writeln!(w, "tsc-nn-adam v1")?;
    writeln!(
        w,
        "{:?} {:?} {:?} {:?} {} {}",
        opt.lr(),
        beta1,
        beta2,
        opt.epsilon(),
        opt.timestep(),
        m.len()
    )?;
    let write_row = |w: &mut W, t: &Tensor| -> std::io::Result<()> {
        let mut first = true;
        for x in t.data() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{x:?}")?;
            first = false;
        }
        writeln!(w)
    };
    for (mi, vi) in m.iter().zip(v) {
        writeln!(w, "{} {}", mi.rows(), mi.cols())?;
        write_row(&mut w, mi)?;
        write_row(&mut w, vi)?;
    }
    Ok(())
}

/// Reads Adam optimizer state written by [`save_adam`].
///
/// # Errors
///
/// Returns [`LoadError::Format`] on malformed content and
/// [`LoadError::Io`] on reader failures.
pub fn load_adam<R: Read>(r: R) -> Result<Adam, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, LoadError> {
        lines
            .next()
            .ok_or_else(|| LoadError::Format("unexpected end of file".into()))?
            .map_err(LoadError::from)
    };
    let header = next()?;
    if header.trim() != "tsc-nn-adam v1" {
        return Err(LoadError::Format(format!("bad adam header {header:?}")));
    }
    let meta = next()?;
    let mut parts = meta.split_whitespace();
    let mut scalar = |what: &str| -> Result<f32, LoadError> {
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("bad adam {what}")))
    };
    let lr = scalar("lr")?;
    let beta1 = scalar("beta1")?;
    let beta2 = scalar("beta2")?;
    let eps = scalar("eps")?;
    let t: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LoadError::Format("bad adam timestep".into()))?;
    let count: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LoadError::Format("bad adam tensor count".into()))?;
    let mut m = Vec::with_capacity(count);
    let mut v = Vec::with_capacity(count);
    for i in 0..count {
        let shape = next()?;
        let mut parts = shape.split_whitespace();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("moment {i}: bad rows")))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Format(format!("moment {i}: bad cols")))?;
        let read_tensor = |what: &str, line: String| -> Result<Tensor, LoadError> {
            let data: Vec<f32> = line
                .split_whitespace()
                .map(|s| {
                    s.parse::<f32>().map_err(|e| {
                        LoadError::Format(format!("moment {i} ({what}): bad value {s:?}: {e}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            if data.len() != rows * cols {
                return Err(LoadError::Format(format!(
                    "moment {i} ({what}): expected {} values, got {}",
                    rows * cols,
                    data.len()
                )));
            }
            Ok(Tensor::from_vec(rows, cols, data))
        };
        let m_line = next()?;
        m.push(read_tensor("m", m_line)?);
        let v_line = next()?;
        v.push(read_tensor("v", v_line)?);
    }
    Adam::from_state(lr, beta1, beta2, eps, t, m, v).map_err(LoadError::Format)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params() -> Params {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Params::new();
        p.add("w1", Tensor::randn(3, 4, 1.0, &mut rng));
        p.add("b1", Tensor::zeros(1, 4));
        p.add(
            "odd",
            Tensor::from_rows(&[&[f32::MIN_POSITIVE, -0.0, 1e30]]),
        );
        p
    }

    #[test]
    fn round_trip_is_exact() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert_eq!(p.len(), q.len());
        for (a, b) in p.ids().zip(q.ids()) {
            assert_eq!(p.name(a), q.name(b));
            assert_eq!(p.value(a), q.value(b), "{}", p.name(a));
        }
    }

    #[test]
    fn header_is_validated() {
        let err = load_params("not a params file\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_params(truncated).is_err());
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        let text = "tsc-nn-params v1\n1\nw 2 2\n1.0 2.0 3.0\n";
        let err = load_params(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4 values"));
    }

    #[test]
    fn empty_param_set_round_trips() {
        let p = Params::new();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert!(q.is_empty());
    }

    /// Adam state round-trips exactly, including the timestep that
    /// drives bias correction — a stepped-then-restored optimizer must
    /// continue producing bit-identical updates.
    #[test]
    fn adam_round_trip_preserves_timestep_and_moments() {
        let mut params = sample_params();
        let mut opt = Adam::new(&params, 0.01);
        // Take a few steps so t, m, and v are all non-trivial.
        for id in params.ids().collect::<Vec<_>>() {
            let g = Tensor::full(params.value(id).rows(), params.value(id).cols(), 0.5);
            params.accumulate_grad(id, &g);
        }
        opt.step(&mut params);
        let mut buf = Vec::new();
        save_adam(&opt, &mut buf).unwrap();
        let restored = load_adam(buf.as_slice()).unwrap();
        assert_eq!(restored.timestep(), opt.timestep());
        assert_eq!(restored.lr(), opt.lr());
        assert_eq!(restored.betas(), opt.betas());
        assert_eq!(restored.epsilon(), opt.epsilon());
        let (m_a, v_a) = opt.moments();
        let (m_b, v_b) = restored.moments();
        assert_eq!(m_a, m_b);
        assert_eq!(v_a, v_b);
        assert!(restored.matches(&params));
    }

    #[test]
    fn adam_truncated_stream_is_rejected() {
        let params = sample_params();
        let opt = Adam::new(&params, 0.01);
        let mut buf = Vec::new();
        save_adam(&opt, &mut buf).unwrap();
        assert!(load_adam(&buf[..buf.len() / 2]).is_err());
        assert!(load_adam("not an adam file\n".as_bytes()).is_err());
    }
}
