//! Network layers: fully-connected and LSTM.
//!
//! Layers own [`ParamId`]s inside a shared [`Params`] set and build
//! their forward computation onto a caller-provided [`Graph`], so one
//! parameter set can be reused across many forward passes (parameter
//! sharing across agents, exactly as the paper trains).

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// A fully-connected layer `y = x W + b`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim → out_dim` layer in `params`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        rng: &mut R,
    ) -> Self {
        let w = params.add(format!("{name}.w"), init.tensor(in_dim, out_dim, rng));
        let b = params.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `batch × in_dim` input.
    pub fn forward(&self, g: &mut Graph, params: &Params, x: Var) -> Var {
        let w = g.param(params, self.w);
        let b = g.param(params, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// Tape-free forward: writes `x W + b` into `out`, resizing it only
    /// on shape change. Bit-identical to [`forward`](Self::forward) on
    /// the same inputs — same matmul kernel, same `+ bias` expression —
    /// but records no tape ops and allocates nothing in steady state.
    /// Returns the number of buffer (re)allocations performed (0 once
    /// shapes have stabilized).
    pub fn infer_into(&self, params: &Params, x: &Tensor, out: &mut Tensor) -> u64 {
        let allocs = u64::from(out.ensure_shape(x.rows(), self.out_dim));
        x.matmul_into(params.value(self.w), out);
        let b = params.value(self.b);
        for r in 0..out.rows() {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b.row(0)) {
                *o += bv;
            }
        }
        allocs
    }
}

/// One LSTM cell (single step; hidden state threaded by the caller).
///
/// Gate layout along the `4·hidden` axis is `[i, f, g, o]`. The forget
/// gate bias starts at 1, the usual trick for stable recurrent training.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

/// Hidden state of an LSTM cell: `(h, c)`, each `batch × hidden`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LstmState {
    /// Hidden output.
    pub h: Tensor,
    /// Cell memory.
    pub c: Tensor,
}

impl LstmState {
    /// The all-zero initial state for a batch of `batch` rows.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState {
            h: Tensor::zeros(batch, hidden),
            c: Tensor::zeros(batch, hidden),
        }
    }
}

/// Reusable scratch buffers for [`LstmCell::infer_into`]: the gate
/// pre-activations and the recurrent matmul term. Starts empty and is
/// sized on first use, then reused allocation-free across steps.
#[derive(Debug, Clone)]
pub struct LstmScratch {
    gates: Tensor,
    hterm: Tensor,
}

impl LstmScratch {
    /// An empty scratch, sized lazily by the first inference step.
    pub fn new() -> Self {
        LstmScratch {
            gates: Tensor::zeros(0, 0),
            hterm: Tensor::zeros(0, 0),
        }
    }
}

impl Default for LstmScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl LstmCell {
    /// Registers an `in_dim → hidden` LSTM cell in `params`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let init = Init::Orthogonal { gain: 1.0 };
        let wx = params.add(format!("{name}.wx"), init.tensor(in_dim, 4 * hidden, rng));
        let wh = params.add(format!("{name}.wh"), init.tensor(hidden, 4 * hidden, rng));
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0); // forget gate bias
        }
        let b = params.add(format!("{name}.b"), bias);
        LstmCell {
            wx,
            wh,
            b,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One step: inputs `x` (`batch × in`), previous `(h, c)` as graph
    /// vars; returns `(h', c')` vars.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: Var,
        h_prev: Var,
        c_prev: Var,
    ) -> (Var, Var) {
        let wx = g.param(params, self.wx);
        let wh = g.param(params, self.wh);
        let b = g.param(params, self.b);
        let xw = g.matmul(x, wx);
        let hw = g.matmul(h_prev, wh);
        let pre = g.add(xw, hw);
        let gates = g.add_row(pre, b);
        let hsz = self.hidden;
        let i_part = g.slice_cols(gates, 0, hsz);
        let f_part = g.slice_cols(gates, hsz, 2 * hsz);
        let g_part = g.slice_cols(gates, 2 * hsz, 3 * hsz);
        let o_part = g.slice_cols(gates, 3 * hsz, 4 * hsz);
        let i = g.sigmoid(i_part);
        let f = g.sigmoid(f_part);
        let gg = g.tanh(g_part);
        let o = g.sigmoid(o_part);
        let fc = g.mul(f, c_prev);
        let ig = g.mul(i, gg);
        let c_new = g.add(fc, ig);
        let tc = g.tanh(c_new);
        let h_new = g.mul(o, tc);
        (h_new, c_new)
    }

    /// Tape-free LSTM step, bit-identical to
    /// [`forward`](Self::forward): writes `h'` / `c'` into
    /// `h_out` / `c_out`, using `scratch` for the gate pre-activations.
    /// Every buffer is resized only on shape change, so the steady-state
    /// step loop does zero allocation and zero tape bookkeeping. The
    /// per-element expressions replicate the graph ops exactly
    /// (`gates = (xW_x + hW_h) + b`, `c' = (f·c) + (i·g)`,
    /// `h' = o · tanh(c')`, sigmoid as `1/(1+e^{-x})`), which is what
    /// makes serving-vs-training action parity exact rather than
    /// approximate. Returns the number of buffer (re)allocations
    /// performed (0 once shapes have stabilized).
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatches (via the matmul kernels).
    #[allow(clippy::too_many_arguments)]
    pub fn infer_into(
        &self,
        params: &Params,
        x: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
        scratch: &mut LstmScratch,
        h_out: &mut Tensor,
        c_out: &mut Tensor,
    ) -> u64 {
        let batch = x.rows();
        let hsz = self.hidden;
        let mut allocs = u64::from(scratch.gates.ensure_shape(batch, 4 * hsz));
        allocs += u64::from(scratch.hterm.ensure_shape(batch, 4 * hsz));
        allocs += u64::from(h_out.ensure_shape(batch, hsz));
        allocs += u64::from(c_out.ensure_shape(batch, hsz));
        let LstmScratch { gates, hterm } = scratch;
        x.matmul_into(params.value(self.wx), gates);
        h_prev.matmul_into(params.value(self.wh), hterm);
        let b = params.value(self.b).row(0);
        for r in 0..batch {
            let ht = hterm.row(r);
            let gr = gates.row_mut(r);
            for c in 0..4 * hsz {
                gr[c] = (gr[c] + ht[c]) + b[c];
            }
        }
        for r in 0..batch {
            let g = gates.row(r);
            let cp = c_prev.row(r);
            for j in 0..hsz {
                let i = 1.0 / (1.0 + (-g[j]).exp());
                let f = 1.0 / (1.0 + (-g[hsz + j]).exp());
                let gg = g[2 * hsz + j].tanh();
                let o = 1.0 / (1.0 + (-g[3 * hsz + j]).exp());
                let c_new = (f * cp[j]) + (i * gg);
                c_out.set(r, j, c_new);
                h_out.set(r, j, o * c_new.tanh());
            }
        }
        allocs
    }

    /// Convenience: one step from a plain [`LstmState`], returning the
    /// next state as plain tensors (detached, i.e. truncated BPTT of
    /// length 1 — the hidden state is stored in the rollout buffer as in
    /// Algorithm 1 line 20).
    pub fn step(
        &self,
        g: &mut Graph,
        params: &Params,
        x: Var,
        state: &LstmState,
    ) -> (Var, LstmState) {
        let h_prev = g.input(state.h.clone());
        let c_prev = g.input(state.c.clone());
        let (h, c) = self.forward(g, params, x, h_prev, c_prev);
        let next = LstmState {
            h: g.value(h).clone(),
            c: g.value(c).clone(),
        };
        (h, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let l = Linear::new(&mut params, "fc", 3, 2, Init::Zeros, &mut rng);
        params.value_mut(crate::params::ParamId(1)).set(0, 1, 5.0); // bias
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = l.forward(&mut g, &params, x);
        assert_eq!(g.value(y).shape(), (1, 2));
        assert_eq!(g.value(y).get(0, 1), 5.0, "bias applied");
    }

    #[test]
    fn linear_gradients_flow_to_both_w_and_b() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let l = Linear::new(
            &mut params,
            "fc",
            3,
            2,
            Init::Orthogonal { gain: 1.0 },
            &mut rng,
        );
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]]));
        let y = l.forward(&mut g, &params, x);
        let s = g.sum(y);
        g.backward(s, &mut params);
        for id in params.ids() {
            assert!(params.grad(id).norm() > 0.0, "{}", params.name(id));
        }
    }

    #[test]
    fn lstm_step_changes_state_and_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let cell = LstmCell::new(&mut params, "lstm", 4, 8, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, -1.0, 0.5, 2.0]]));
        let state = LstmState::zeros(1, 8);
        let (h, next) = cell.step(&mut g, &params, x, &state);
        assert_eq!(g.value(h).shape(), (1, 8));
        assert_ne!(next.h, state.h);
        assert!(
            g.value(h).data().iter().all(|v| v.abs() <= 1.0),
            "h in [-1,1]"
        );
    }

    #[test]
    fn lstm_memory_persists_across_steps() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let cell = LstmCell::new(&mut params, "lstm", 2, 4, &mut rng);
        // Feed a distinctive input, then zeros; the state should keep a
        // trace of the first input (c not reset).
        let mut state = LstmState::zeros(1, 4);
        let mut g = Graph::new();
        let x0 = g.input(Tensor::from_rows(&[&[3.0, -3.0]]));
        let (_, s1) = cell.step(&mut g, &params, x0, &state);
        state = s1;
        let zero_state = LstmState::zeros(1, 4);
        let mut g2 = Graph::new();
        let z = g2.input(Tensor::zeros(1, 2));
        let (h_with_memory, _) = cell.step(&mut g2, &params, z, &state);
        let mut g3 = Graph::new();
        let z3 = g3.input(Tensor::zeros(1, 2));
        let (h_cold, _) = cell.step(&mut g3, &params, z3, &zero_state);
        assert_ne!(g2.value(h_with_memory), g3.value(h_cold));
    }

    #[test]
    fn linear_infer_is_bit_identical_to_graph_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let l = Linear::new(
            &mut params,
            "fc",
            5,
            3,
            Init::Orthogonal { gain: 1.0 },
            &mut rng,
        );
        let x = Tensor::randn(4, 5, 1.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = l.forward(&mut g, &params, xv);
        // Dirty, correctly-shaped buffer: second call must not allocate.
        let mut out = Tensor::full(4, 3, f32::NAN);
        assert_eq!(l.infer_into(&params, &x, &mut out), 0);
        assert_eq!(&out, g.value(y));
    }

    #[test]
    fn lstm_infer_is_bit_identical_to_graph_step() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = Params::new();
        let cell = LstmCell::new(&mut params, "lstm", 4, 6, &mut rng);
        let x = Tensor::randn(3, 4, 1.0, &mut rng);
        let state = LstmState {
            h: Tensor::randn(3, 6, 0.5, &mut rng),
            c: Tensor::randn(3, 6, 0.5, &mut rng),
        };
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let (hv, next) = cell.step(&mut g, &params, xv, &state);
        let mut scratch = LstmScratch::new();
        let mut h_out = Tensor::zeros(0, 0);
        let mut c_out = Tensor::zeros(0, 0);
        let first = cell.infer_into(
            &params,
            &x,
            &state.h,
            &state.c,
            &mut scratch,
            &mut h_out,
            &mut c_out,
        );
        assert_eq!(first, 4, "all four buffers sized on first use");
        assert_eq!(&h_out, g.value(hv));
        assert_eq!(c_out, next.c);
        // Steady state: same shapes, zero allocations, same result.
        let again = cell.infer_into(
            &params,
            &x,
            &state.h,
            &state.c,
            &mut scratch,
            &mut h_out,
            &mut c_out,
        );
        assert_eq!(again, 0);
        assert_eq!(&h_out, g.value(hv));
    }

    #[test]
    fn lstm_gradcheck_through_one_step() {
        // Finite-difference check through the full cell wrt wx.
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let cell = LstmCell::new(&mut params, "lstm", 2, 3, &mut rng);
        let x_data = Tensor::from_rows(&[&[0.7, -0.4]]);
        let state = LstmState {
            h: Tensor::from_rows(&[&[0.1, -0.2, 0.3]]),
            c: Tensor::from_rows(&[&[0.2, 0.0, -0.1]]),
        };
        let run = |params: &Params| -> f32 {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let (h, _) = cell.step(&mut g, params, x, &state);
            let mut g2 = g;
            let s = g2.sum(h);
            g2.value(s).get(0, 0)
        };
        // Analytic.
        let mut g = Graph::new();
        let x = g.input(x_data.clone());
        let (h, _) = cell.step(&mut g, &params, x, &state);
        let s = g.sum(h);
        params.zero_grad();
        g.backward(s, &mut params);
        let wx = crate::params::ParamId(0);
        let analytic = params.grad(wx).clone();
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..12 {
                let orig = params.value(wx).get(r, c);
                params.value_mut(wx).set(r, c, orig + eps);
                let fp = run(&params);
                params.value_mut(wx).set(r, c, orig - eps);
                let fm = run(&params);
                params.value_mut(wx).set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + a.abs()),
                    "({r},{c}): {a} vs {numeric}"
                );
            }
        }
    }
}
