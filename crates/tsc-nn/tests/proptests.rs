//! Property-based tests for tensor algebra and autograd invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsc_nn::{orthogonal, softmax_rows, Graph, Params, Tensor};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        c in small_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_products(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    /// Softmax rows are probability vectors, invariant to constant
    /// shifts of the logits.
    #[test]
    fn softmax_is_shift_invariant_probability(
        logits in small_matrix(2, 5),
        shift in -10.0f32..10.0,
    ) {
        let s1 = softmax_rows(&logits);
        let shifted = logits.map(|x| x + shift);
        let s2 = softmax_rows(&shifted);
        for r in 0..2 {
            let sum: f32 = s1.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            for c in 0..5 {
                prop_assert!(s1.get(r, c) >= 0.0);
                prop_assert!((s1.get(r, c) - s2.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// Orthogonal init yields orthonormal columns for any tall shape
    /// and seed.
    #[test]
    fn orthogonal_columns_are_orthonormal(
        seed in 0u64..500,
        extra_rows in 0usize..6,
        cols in 1usize..5,
    ) {
        let rows = cols + extra_rows;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = orthogonal(rows, cols, 1.0, &mut rng);
        for c1 in 0..cols {
            for c2 in 0..cols {
                let dot: f32 = (0..rows).map(|r| t.get(r, c1) * t.get(r, c2)).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-3);
            }
        }
    }

    /// Gradient of sum(x ⊙ w) wrt w is exactly x, for any values —
    /// a closed-form autograd check.
    #[test]
    fn autograd_mul_sum_gradient_is_exact(x in small_matrix(2, 3)) {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(2, 3, 0.5));
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.param(&params, w);
        let prod = g.mul(xv, wv);
        let loss = g.sum(prod);
        g.backward(loss, &mut params);
        prop_assert_eq!(params.grad(w).clone(), x);
    }

    /// The gradient of mean((w - t)^2) at w == t is zero everywhere.
    #[test]
    fn autograd_mse_gradient_vanishes_at_optimum(t in small_matrix(3, 2)) {
        let mut params = Params::new();
        let w = params.add("w", t.clone());
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let tv = g.input(t);
        let d = g.sub(wv, tv);
        let sq = g.square(d);
        let loss = g.mean(sq);
        g.backward(loss, &mut params);
        prop_assert!(params.grad(w).norm() < 1e-7);
    }
}
