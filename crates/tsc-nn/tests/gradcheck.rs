//! Finite-difference gradient checks for the autograd engine.
//!
//! For every trainable scalar θ of a layer, the analytic gradient from
//! `Graph::backward` must match the central difference
//! `(L(θ+ε) − L(θ−ε)) / 2ε` of the same scalar loss. The loss
//! projects the layer output onto fixed pseudo-random weights so no
//! gradient component is hidden by symmetry.
//!
//! Numerics: everything here is f32, so ε trades truncation error
//! (∝ ε²) against roundoff (∝ u/ε). ε = 5e-3 puts both well below the
//! 1e-4 tolerance for these O(1)-sized losses; the tolerance is scaled
//! by (1 + |g|) so large gradients are checked relatively and small
//! ones absolutely.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsc_nn::{Graph, Init, Linear, LstmCell, LstmState, Params, Tensor};

const EPS: f32 = 5e-3;
const TOL: f32 = 1e-4;

/// Fixed pseudo-random projection weights (deterministic, O(1) scale).
fn projection(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() - 0.5).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Checks every parameter scalar of `params` against central
/// differences of `loss_fn`, after `backward` has filled the analytic
/// gradients.
fn check_all_params(params: &mut Params, loss_fn: &dyn Fn(&Params) -> f32, context: &str) {
    let ids: Vec<_> = params.ids().collect();
    let mut checked = 0usize;
    for id in ids {
        let n = params.value(id).data().len();
        let name = params.name(id).to_string();
        for i in 0..n {
            let orig = params.value(id).data()[i];
            params.value_mut(id).data_mut()[i] = orig + EPS;
            let up = loss_fn(params);
            params.value_mut(id).data_mut()[i] = orig - EPS;
            let down = loss_fn(params);
            params.value_mut(id).data_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * EPS);
            let analytic = params.grad(id).data()[i];
            let err = (analytic - numeric).abs();
            let tol = TOL * (1.0 + analytic.abs().max(numeric.abs()));
            assert!(
                err <= tol,
                "{context}: d loss / d {name}[{i}]: analytic {analytic:.6e} vs \
                 numeric {numeric:.6e} (err {err:.2e} > tol {tol:.2e})"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "{context}: no parameters checked");
}

#[test]
fn linear_gradients_match_central_differences() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut params = Params::new();
    let layer = Linear::new(&mut params, "fc", 3, 4, Init::Xavier, &mut rng);
    let x = projection(2, 3, &mut rng);
    let w = projection(2, 4, &mut rng);

    let loss_fn = |p: &Params| -> f32 {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = layer.forward(&mut g, p, xv);
        // Nonlinearity so second derivatives are nonzero and the check
        // cannot pass by linearity alone.
        let s = g.tanh(y);
        let wv = g.input(w.clone());
        let prod = g.mul(s, wv);
        let loss = g.mean(prod);
        g.value(loss).get(0, 0)
    };

    // Analytic pass.
    {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = layer.forward(&mut g, &params, xv);
        let s = g.tanh(y);
        let wv = g.input(w.clone());
        let prod = g.mul(s, wv);
        let loss = g.mean(prod);
        params.zero_grad();
        g.backward(loss, &mut params);
    }
    check_all_params(&mut params, &loss_fn, "linear");
}

#[test]
fn lstm_gradients_match_central_differences() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut params = Params::new();
    let cell = LstmCell::new(&mut params, "lstm", 3, 4, &mut rng);
    let x = projection(2, 3, &mut rng);
    // A non-trivial previous state exercises the w_h and forget-gate
    // paths, which an all-zero state would silence.
    let state = LstmState {
        h: projection(2, 4, &mut rng),
        c: projection(2, 4, &mut rng),
    };
    let wh = projection(2, 4, &mut rng);
    let wc = projection(2, 4, &mut rng);

    let loss_fn = |p: &Params| -> f32 {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let hv = g.input(state.h.clone());
        let cv = g.input(state.c.clone());
        let (h_new, c_new) = cell.forward(&mut g, p, xv, hv, cv);
        // Project both outputs so gradients flow through the output
        // gate (h path) and the cell accumulator (c path).
        let whv = g.input(wh.clone());
        let wcv = g.input(wc.clone());
        let ph = g.mul(h_new, whv);
        let pc = g.mul(c_new, wcv);
        let sh = g.mean(ph);
        let sc = g.mean(pc);
        let loss = g.add(sh, sc);
        g.value(loss).get(0, 0)
    };

    {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let hv = g.input(state.h.clone());
        let cv = g.input(state.c.clone());
        let (h_new, c_new) = cell.forward(&mut g, &params, xv, hv, cv);
        let whv = g.input(wh.clone());
        let wcv = g.input(wc.clone());
        let ph = g.mul(h_new, whv);
        let pc = g.mul(c_new, wcv);
        let sh = g.mean(ph);
        let sc = g.mean(pc);
        let loss = g.add(sh, sc);
        params.zero_grad();
        g.backward(loss, &mut params);
    }
    check_all_params(&mut params, &loss_fn, "lstm");
}
