//! Forensics acceptance pins: an incident dumped during an
//! infra-chaos run replays **bit-for-bit** from its embedded context
//! alone — as a targeted tier-1 test and as a property test over
//! random chaos and load plans.

use proptest::prelude::*;
use tsc_bench::forensics::{replay_incident, FleetWorldSpec, TenantWorldSpec};
use tsc_obs::{read_incident, FlightTrigger};
use tsc_serve::{InfraChaosPlan, LoadPlan, SupervisorConfig, TenantSel};
use tsc_sim::Window;

/// Quiet the injected-panic backtraces (caught at the tenant
/// boundary); every other panic still reports.
fn install_quiet_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected tenant panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected tenant panic"));
        if !injected {
            prev(info);
        }
    }));
}

fn base_spec(n_tenants: usize, fleet_seed: u64) -> FleetWorldSpec {
    let tenants = (0..n_tenants)
        .map(|i| TenantWorldSpec {
            name: format!("tenant-{i}"),
            cols: 2,
            rows: 2,
            spacing: 150.0,
            pattern: (i * 2) % 5,
            hidden: 16,
            lstm_hidden: 16,
            model_seed: 1000 + i as u64,
            env_seed: 100 + i as u64,
        })
        .collect();
    FleetWorldSpec {
        tenants,
        decision_interval: 5,
        horizon: 1_000_000,
        fleet_seed,
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 2,
            ..Default::default()
        },
        admission_capacity: None,
        flight_capacity: 32,
        flight_cooldown: 8,
        chaos: InfraChaosPlan::new(),
        load: LoadPlan::new(),
    }
}

/// The replay context round-trips exactly through its JSON encoding.
#[test]
fn world_spec_json_round_trips() {
    let mut spec = base_spec(3, 42);
    spec.chaos = InfraChaosPlan::new()
        .tenant_panic(Window::new(10, 25), TenantSel::One(1), 0.7)
        .reload_corrupt(Window::always(), TenantSel::All, 0.5)
        .latency_spike(Window::new(3, 9), TenantSel::One(0), 150, 0.4)
        .reload_storm(Window::new(0, 30), TenantSel::One(2), 4);
    spec.load = LoadPlan::new().phase(Window::new(5, 20), TenantSel::All, 7, 3);
    spec.admission_capacity = Some(64);
    let back = FleetWorldSpec::from_json(&spec.to_json()).expect("parses");
    assert_eq!(back, spec);
}

/// Tier-1 acceptance pin: a panic-chaos run dumps an incident file;
/// reconstructing the world from that file alone and re-executing the
/// window reproduces every captured frame bit-for-bit.
#[test]
fn infra_chaos_incident_replays_bit_for_bit_from_its_file() {
    install_quiet_hook();
    let dir = std::env::temp_dir().join(format!("forensics-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut spec = base_spec(3, 42);
    spec.chaos = InfraChaosPlan::new().tenant_panic(Window::new(8, 20), TenantSel::One(1), 1.0);

    let (mut fleet, mut envs) = spec.build().unwrap();
    fleet.set_incident_dir(dir.clone());
    spec.run(&mut fleet, &mut envs, 30).unwrap();
    assert!(
        fleet.tenant_stats(1).quarantines > 0,
        "chaos must drive the tenant into quarantine"
    );
    let paths = fleet.incident_paths().to_vec();
    assert!(!paths.is_empty(), "the panic window must dump");

    for path in &paths {
        let incident = read_incident(path).unwrap();
        assert_eq!(incident.trigger, FlightTrigger::Panic);
        let report = replay_incident(&incident).unwrap();
        assert!(
            report.clean(),
            "replay of {} diverged: {:?}",
            path.display(),
            report.mismatches
        );
        assert_eq!(report.captured_frames, incident.frames.len());
        // The causal pass saw the chaos scope on the captured frames.
        assert!(report.causal.get_num("frames_in_chaos_scope").unwrap() > 0.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for ANY (small) chaos plan and load program, a
    /// snapshot incident taken mid-run replays bit-for-bit from its
    /// embedded context.
    #[test]
    fn random_chaos_and_load_plans_replay_bit_for_bit(
        seed in 0u64..1000,
        panic_p in 0.0f64..1.0,
        panic_start in 0u64..15,
        panic_len in 1u64..12,
        corrupt_p in 0.0f64..1.0,
        spike_us in 0u64..200,
        spike_p in 0.0f64..1.0,
        storm_every in 1u32..6,
        load_base in 1u64..10,
        load_jitter in 0u64..5,
        capacity_sel in 0u64..4,
        target in 0usize..2,
        steps in 12u64..28,
    ) {
        install_quiet_hook();
        let mut spec = base_spec(2, seed);
        spec.chaos = InfraChaosPlan::new()
            .tenant_panic(
                Window::new(panic_start as u32, (panic_start + panic_len) as u32),
                TenantSel::One(target),
                panic_p,
            )
            .reload_corrupt(Window::always(), TenantSel::All, corrupt_p)
            .latency_spike(Window::new(2, 10), TenantSel::One(1 - target), spike_us, spike_p)
            .reload_storm(Window::always(), TenantSel::All, storm_every);
        spec.load = LoadPlan::new().phase(Window::new(4, 20), TenantSel::All, load_base, load_jitter);
        // 0 = admission disabled; otherwise a capacity tight enough
        // to force brownouts under the load phase.
        spec.admission_capacity = (capacity_sel > 0).then_some(capacity_sel * 32);

        let (mut fleet, mut envs) = spec.build().unwrap();
        spec.run(&mut fleet, &mut envs, steps).unwrap();
        let incident = fleet.snapshot(target).expect("recorder on");
        prop_assert!(!incident.frames.is_empty());

        let report = replay_incident(&incident).unwrap();
        prop_assert!(
            report.clean(),
            "replay diverged under seed={seed}: {:?}",
            report.mismatches
        );
    }
}
