//! Regenerates Table III: average travel time in the light uniform
//! traffic scenario (Pattern 5), trained and evaluated on Pattern 5.

use tsc_bench::experiments::{self, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Table III at scale {scale:?}");
    match experiments::table3(&scale) {
        Ok(table) => {
            println!("\nTABLE III — AVERAGE TRAVEL TIME IN LIGHT TRAFFIC (SECONDS)\n");
            println!("{}", table.render());
            match experiments::write_result("table3.csv", &table.to_csv()) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
