//! Resilience sweep: the served PairUpLight policy under injected
//! chaos on all three fault surfaces (sensing, actuation, comms).
//!
//! One untrained policy snapshot is served through the resilient
//! `ServeRuntime` (observation-health tracking + health-triggered
//! MaxPressure fallback) against every flow pattern at increasing
//! fault intensity; a single `ChaosPlan` drives both the simulator
//! side (sensing/actuation) and the serving side (message faults).
//! The sweep asserts the acceptance criterion of the chaos engine:
//! no step ever errors, and at 100% message loss the travel time is
//! bounded by the warm-standby MaxPressure baseline (the runtime
//! degrades to exactly those actions, so the bound holds by
//! construction — the assertion checks the wiring end to end).
//!
//! Usage: `chaos [--json] [--smoke] [--scenario <name-or-path>]
//! [horizon_seconds]` (default horizon: 300; `--smoke` shrinks the
//! grid, nets and horizon for CI; `--json` also writes
//! `BENCH_chaos.json` at the repo root). With `--scenario` the sweep
//! and the cut-cable bound run on the compiled world instead of the
//! grid patterns.

use pairuplight::{HealthConfig, PairUpLight, PairUpLightConfig};
use tsc_baselines::MaxPressureController;
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_bench::world::resolve_scenario;
use tsc_serve::{DegradeReason, ResilienceConfig, ServeConfig, ServeRuntime};
use tsc_sim::chaos::AgentSel;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{ChaosPlan, EnvConfig, LinkSel, NodeSel, Scenario, SimConfig, TscEnv, Window};

const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];
const SEED: u64 = 42;

fn main() {
    let args = BenchArgs::parse();
    let horizon = args.pos_or(0, if args.smoke { 120 } else { 300 });
    exit_on_error("chaos bench", run(horizon, &args));
}

/// A mixed-surface fault schedule scaled by `intensity` in [0, 1]:
/// detector dropout and noise mid-episode, command loss alongside,
/// a short all-red freeze, and message drop on the partner channel
/// for the whole episode. Intensity 0 is the empty plan.
fn plan_for(intensity: f64, horizon: u32) -> ChaosPlan {
    if intensity <= 0.0 {
        return ChaosPlan::default();
    }
    let h = horizon;
    ChaosPlan::default()
        .sensor_dropout(Window::new(h / 4, h / 2), LinkSel::All, intensity)
        .sensor_noise(Window::new(h / 2, 3 * h / 4), LinkSel::All, 0.5 * intensity)
        .command_loss(Window::new(h / 3, 2 * h / 3), NodeSel::All, intensity)
        .all_red(
            Window::new(h / 2, h / 2 + (10.0 * intensity) as u32),
            NodeSel::All,
        )
        .message_drop(Window::always(), AgentSel::All, intensity)
}

fn resilient_config() -> ServeConfig {
    ServeConfig {
        fallback_min_hold: 2,
        resilience: ResilienceConfig {
            health: Some(HealthConfig::default()),
            sensor_fallback_after: 2,
            comms_fallback_after: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

struct EpisodeOutcome {
    travel: f64,
    completion: f64,
    fallback_rate: f64,
    sensor_fallbacks: u64,
    comms_fallbacks: u64,
}

/// One full served episode (plus drain) under `plan` on both fault
/// surfaces. Any step error propagates — the sweep's contract is that
/// none occurs.
fn serve_episode(
    env: &mut TscEnv,
    serve: &mut ServeRuntime,
    plan: &ChaosPlan,
    drain_cap: u32,
) -> Result<EpisodeOutcome, Box<dyn std::error::Error>> {
    env.set_chaos(plan.clone());
    serve.set_chaos(plan, SEED)?;
    env.run_episode(serve, SEED)?;
    env.drain(serve, drain_cap)?;
    let t = serve.telemetry();
    let spawned = env.sim().metrics().spawned();
    let finished = env.sim().metrics().finished();
    Ok(EpisodeOutcome {
        travel: env.sim().avg_travel_time(),
        completion: if spawned == 0 {
            1.0
        } else {
            finished as f64 / spawned as f64
        },
        fallback_rate: t.fallback_rate(),
        sensor_fallbacks: t.fallbacks_for(DegradeReason::SensorHealth),
        comms_fallbacks: t.fallbacks_for(DegradeReason::CommsHealth),
    })
}

fn run(horizon: u32, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let smoke = args.smoke;
    let grid_size = if smoke { 2 } else { 3 };
    // Worlds to sweep: the grid patterns by default, or the one
    // compiled world when `--scenario` is given.
    let (label, worlds): (String, Vec<(String, Scenario)>) = match resolve_scenario(args, SEED)? {
        Some(compiled) => (
            format!(
                "{} ({})",
                compiled.scenario.name,
                compiled.fingerprint_hex()
            ),
            vec![(compiled.scenario.name.clone(), compiled.scenario)],
        ),
        None => {
            let grid = Grid::build(GridConfig {
                cols: grid_size,
                rows: grid_size,
                spacing: if smoke { 150.0 } else { 200.0 },
            })?;
            let worlds = FlowPattern::ALL
                .into_iter()
                .map(|p| {
                    patterns::grid_scenario(&grid, p, &PatternConfig::default())
                        .map(|s| (format!("{p:?}"), s))
                })
                .collect::<Result<Vec<_>, _>>()?;
            (format!("{grid_size}x{grid_size} grid"), worlds)
        }
    };
    let env_cfg = EnvConfig {
        decision_interval: 5,
        episode_horizon: horizon,
    };
    let drain_cap = 4 * horizon;
    let cfg = if smoke {
        PairUpLightConfig {
            hidden: 16,
            lstm_hidden: 16,
            ..Default::default()
        }
    } else {
        PairUpLightConfig::default()
    };
    let env = TscEnv::new(worlds[0].1.clone(), SimConfig::default(), env_cfg, SEED)?;
    let snapshot = PairUpLight::new(&env, cfg).policy_snapshot();

    println!(
        "chaos sweep: {label} ({} agents), horizon {horizon}s, \
         intensities {INTENSITIES:?}, faults on sensing+actuation+comms",
        env.num_agents(),
    );
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>9} {:>8} {:>8}",
        "pattern", "intensity", "travel s", "completion", "fallback", "sensor", "comms"
    );

    let mut rows = Vec::new();
    for &intensity in &INTENSITIES {
        let plan = plan_for(intensity, horizon);
        for (name, world) in &worlds {
            let mut env = TscEnv::new(world.clone(), SimConfig::default(), env_cfg, SEED)?;
            let mut serve = ServeRuntime::new(snapshot.clone(), resilient_config());
            let out = serve_episode(&mut env, &mut serve, &plan, drain_cap)?;
            println!(
                "{:<10} {:>9.2} {:>10.2} {:>10.0}% {:>8.1}% {:>8} {:>8}",
                name,
                intensity,
                out.travel,
                out.completion * 100.0,
                out.fallback_rate * 100.0,
                out.sensor_fallbacks,
                out.comms_fallbacks,
            );
            rows.push(Json::obj([
                ("pattern", Json::str(name.clone())),
                ("intensity", Json::num(intensity)),
                ("travel_s", Json::num(out.travel)),
                ("completion", Json::num(out.completion)),
                ("fallback_rate", Json::num(out.fallback_rate)),
                ("sensor_fallbacks", Json::num(out.sensor_fallbacks as f64)),
                ("comms_fallbacks", Json::num(out.comms_fallbacks as f64)),
            ]));
        }
    }

    // Acceptance bound: at 100% message loss (and no other faults) the
    // resilient runtime degrades to exactly the warm-standby MaxPressure
    // actions, so its travel time must match the standalone baseline.
    let cut_cable = ChaosPlan::default().message_drop(Window::always(), AgentSel::All, 1.0);
    let scenario = worlds[0].1.clone();
    let mut env = TscEnv::new(scenario.clone(), SimConfig::default(), env_cfg, SEED)?;
    let mut serve = ServeRuntime::new(
        snapshot.clone(),
        ServeConfig {
            fallback_min_hold: 2,
            resilience: ResilienceConfig {
                comms_fallback_after: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let rl = serve_episode(&mut env, &mut serve, &cut_cable, drain_cap)?;
    let mut mp_env = TscEnv::new(scenario, SimConfig::default(), env_cfg, SEED)?;
    let mut mp = MaxPressureController::new(2);
    mp_env.run_episode(&mut mp, SEED)?;
    mp_env.drain(&mut mp, drain_cap)?;
    let mp_travel = mp_env.sim().avg_travel_time();
    println!(
        "cut-cable bound: resilient serve {:.2}s vs MaxPressure {:.2}s \
         (degradation is capped by the fallback)",
        rl.travel, mp_travel
    );
    assert!(
        rl.travel <= mp_travel * 1.05,
        "100% message loss must degrade to MaxPressure-level travel time: \
         {} vs {mp_travel}",
        rl.travel
    );

    let report = Json::obj([
        ("bench", Json::str("chaos")),
        ("grid", Json::str(label)),
        ("agents", Json::num(env.num_agents() as f64)),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("smoke", Json::Bool(smoke)),
        ("seed", Json::num(SEED as f64)),
        ("sweep", Json::Arr(rows)),
        (
            "cut_cable_bound",
            Json::obj([
                ("resilient_travel_s", Json::num(rl.travel)),
                ("max_pressure_travel_s", Json::num(mp_travel)),
                ("bound_factor", Json::num(1.05)),
            ]),
        ),
    ]);
    args.write_report_if_json("BENCH_chaos.json", &report)?;
    Ok(())
}
