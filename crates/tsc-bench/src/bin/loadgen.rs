//! Deterministic open-loop load generator for the serving fleet:
//! offered load on the virtual step clock, swept across three regimes,
//! with per-SLA-class latency percentiles, shed rate, and goodput.
//!
//! Tenants cycle through three SLA classes — gold (priority 2, tight
//! deadline, never shed), silver (priority 1), bronze (priority 0,
//! sheddable) — behind `FleetRuntime` admission control. The offered
//! load is a `LoadPlan`: a pure function of `(seed, step, tenant)`,
//! so every regime is open-loop and replays bit-for-bit.
//!
//! 1. **clean** — offered load comfortably under capacity; admission
//!    must be invisible (zero brownouts, zero shed).
//! 2. **overload** — a surge pushes demand well past capacity; the
//!    brownout ladder engages in priority order. Runs twice and
//!    asserts a bit-identical replay digest. Pins gold-class p99 and
//!    every class's shed-rate cap.
//! 3. **infra-chaos** — the surge plus injected panics, latency
//!    spikes, and a reload storm. Asserts the process never aborts and
//!    that zero steps degrade with `ReloadInFlight` — the
//!    double-buffered snapshot swap keeps reloads off the ladder.
//!
//! Usage: `loadgen [--json] [--smoke] [--scenario <name-or-path>]
//! [steps]` (default steps: 400; `--smoke` shrinks the fleet and run
//! for CI; `--json` also writes `BENCH_loadgen.json` at the repo
//! root). With `--scenario` every tenant serves the compiled world.

use std::panic;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_bench::world::resolve_scenario;
use tsc_obs::Histogram;
use tsc_scenario::CompiledScenario;
use tsc_serve::{
    AdmissionConfig, DegradeReason, FleetConfig, FleetRuntime, InfraChaosPlan, LoadPlan,
    ServeConfig, SlaClass, SupervisorConfig, TenantSel, TenantSpec, TenantState,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv, Window};

const SEED: u64 = 42;

/// Pinned p99 budget for the gold class under overload, in
/// microseconds. Gold never sheds and admission keeps it at the front
/// of the ladder, so its step latency must stay policy-shaped even
/// when the fleet is saturated.
const GOLD_P99_BUDGET_US: f64 = 50_000.0;

/// The three SLA classes tenants cycle through (tenant `i` gets class
/// `i % 3`).
const CLASSES: [(&str, SlaClass); 3] = [
    (
        "gold",
        SlaClass {
            priority: 2,
            deadline_us: 50_000,
            max_shed_rate: 0.0,
        },
    ),
    (
        "silver",
        SlaClass {
            priority: 1,
            deadline_us: 100_000,
            max_shed_rate: 0.25,
        },
    ),
    (
        "bronze",
        SlaClass {
            priority: 0,
            deadline_us: 200_000,
            max_shed_rate: 0.9,
        },
    ),
];

fn main() {
    let args = BenchArgs::parse();
    let steps = args.pos_or(0, if args.smoke { 120usize } else { 400 });
    install_quiet_hook();
    exit_on_error("loadgen bench", run(steps, &args));
}

/// Silences the default panic report for *injected* tenant panics —
/// they are caught at the tenant boundary and counted.
fn install_quiet_hook() {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected tenant panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected tenant panic"));
        if !injected {
            prev(info);
        }
    }));
}

struct TenantSetup {
    name: String,
    class: usize,
    env: TscEnv,
    model: PairUpLight,
    checkpoint: PathBuf,
}

/// A heterogeneous fleet: alternating 2×2 / 3×3 grids, SLA classes
/// cycling gold/silver/bronze, every tenant with a valid checkpoint
/// (the reload storm stages from it). With a compiled world, every
/// tenant serves that world instead.
fn build_tenants(
    n: usize,
    world: Option<&CompiledScenario>,
) -> Result<Vec<TenantSetup>, Box<dyn std::error::Error>> {
    let patterns = FlowPattern::ALL;
    let mut out = Vec::new();
    for i in 0..n {
        let env_cfg = EnvConfig {
            decision_interval: 5,
            episode_horizon: 1_000_000,
        };
        let size = if i % 2 == 0 { 2 } else { 3 };
        let class = i % CLASSES.len();
        let env = match world {
            Some(compiled) => compiled.env(SimConfig::default(), env_cfg, SEED)?,
            None => {
                let grid = Grid::build(GridConfig {
                    cols: size,
                    rows: size,
                    spacing: 150.0,
                })?;
                let f = flows(
                    &grid,
                    patterns[i % patterns.len()],
                    &PatternConfig::default(),
                )?;
                TscEnv::new(
                    grid.scenario("loadgen-bench", f)?,
                    SimConfig::default(),
                    env_cfg,
                    SEED,
                )?
            }
        };
        let model = PairUpLight::new(
            &env,
            PairUpLightConfig {
                hidden: 16,
                lstm_hidden: 16,
                ..Default::default()
            },
        );
        let checkpoint = std::env::temp_dir().join(format!("tsc_loadgen_bench_{i}.ckpt"));
        model.save_checkpoint(&checkpoint, SEED)?;
        out.push(TenantSetup {
            name: format!("tenant-{i}-{}", CLASSES[class].0),
            class,
            env,
            model,
            checkpoint,
        });
    }
    Ok(out)
}

fn specs_for(tenants: &[TenantSetup], serve_cfg: ServeConfig) -> Vec<TenantSpec> {
    tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.name.clone(),
            snapshot: t.model.policy_snapshot(),
            serve_cfg,
            checkpoint: Some(t.checkpoint.clone()),
            sla: CLASSES[t.class].1,
        })
        .collect()
}

fn fleet_config(capacity: u64) -> FleetConfig {
    FleetConfig {
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 2,
            ..Default::default()
        },
        seed: SEED,
        admission: Some(AdmissionConfig { capacity }),
        ..Default::default()
    }
}

/// Per-SLA-class aggregates over one regime.
struct ClassStats {
    latency: Histogram,
    offered: u64,
    shed: u64,
    /// Offered requests answered by a policy-quality step within the
    /// class deadline.
    good: u64,
}

struct RegimeOutcome {
    digest: u64,
    decisions_per_sec: f64,
    classes: Vec<ClassStats>,
    reload_degraded: u64,
    hot_swaps: u64,
    final_states: Vec<TenantState>,
}

impl Default for ClassStats {
    fn default() -> Self {
        ClassStats {
            latency: Histogram::new(),
            offered: 0,
            shed: 0,
            good: 0,
        }
    }
}

/// Drives `fleet` open-loop under `plan` for `steps`, folding the step
/// digest and per-class latency/shed/goodput accounting.
fn run_regime(
    fleet: &mut FleetRuntime,
    tenants: &mut [TenantSetup],
    plan: &LoadPlan,
    steps: usize,
) -> Result<RegimeOutcome, Box<dyn std::error::Error>> {
    let mut obs: Vec<_> = tenants
        .iter_mut()
        .enumerate()
        .map(|(i, t)| t.env.reset(100 + i as u64))
        .collect();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut serve_time = Duration::ZERO;
    let mut decisions: u64 = 0;
    let mut classes: Vec<ClassStats> = (0..CLASSES.len()).map(|_| ClassStats::default()).collect();
    for step in 0..steps {
        let offered = plan.offered_all(SEED, step as u64, tenants.len());
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let t0 = Instant::now();
        let out = fleet.step_with_load(&views, &offered)?;
        serve_time += t0.elapsed();
        digest = (digest ^ out.digest()).wrapping_mul(0x0000_0100_0000_01b3);
        for (i, (ts, tenant)) in out.tenants.iter().zip(tenants.iter_mut()).enumerate() {
            decisions += ts.actions.len() as u64;
            let (_, sla) = CLASSES[tenant.class];
            let stats = &mut classes[tenant.class];
            stats.latency.record(ts.latency);
            stats.offered += offered[i];
            if ts.level.runs_policy() && ts.latency <= Duration::from_micros(sla.deadline_us) {
                stats.good += offered[i];
            }
            if ts.level == tsc_serve::ServiceLevel::Shed {
                stats.shed += offered[i];
            }
            let env_step = tenant.env.step(&ts.actions)?;
            obs[i] = if env_step.done {
                tenant.env.reset(200 + i as u64)
            } else {
                env_step.obs
            };
        }
    }
    let mut reload_degraded = 0;
    let mut hot_swaps = 0;
    let mut final_states = Vec::new();
    for t in 0..tenants.len() {
        reload_degraded += fleet
            .tenant_telemetry(t)
            .fallbacks_for(DegradeReason::ReloadInFlight);
        hot_swaps += fleet.tenant_stats(t).hot_swaps;
        final_states.push(fleet.tenant_state(t));
    }
    Ok(RegimeOutcome {
        digest,
        decisions_per_sec: decisions as f64 / serve_time.as_secs_f64().max(1e-9),
        classes,
        reload_degraded,
        hot_swaps,
        final_states,
    })
}

fn print_regime(regime: &str, out: &RegimeOutcome) {
    println!(
        "\n[{regime}] aggregate {:.0} decisions/s, replay digest {:016x}",
        out.decisions_per_sec, out.digest
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "class", "p50 us", "p95 us", "p99 us", "shed", "goodput", "offered"
    );
    for (c, stats) in out.classes.iter().enumerate() {
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>9.1} {:>8.1}% {:>8.1}% {:>10}",
            CLASSES[c].0,
            stats.latency.percentile_us(0.50),
            stats.latency.percentile_us(0.95),
            stats.latency.percentile_us(0.99),
            stats.shed as f64 / stats.offered.max(1) as f64 * 100.0,
            stats.good as f64 / stats.offered.max(1) as f64 * 100.0,
            stats.offered,
        );
    }
}

fn regime_json(regime: &str, out: &RegimeOutcome) -> Json {
    let classes = out
        .classes
        .iter()
        .enumerate()
        .map(|(c, stats)| {
            let (name, sla) = CLASSES[c];
            Json::obj([
                ("class", Json::str(name)),
                ("priority", Json::num(f64::from(sla.priority))),
                ("deadline_us", Json::num(sla.deadline_us as f64)),
                ("max_shed_rate", Json::num(sla.max_shed_rate)),
                ("p50_us", Json::num(stats.latency.percentile_us(0.50))),
                ("p95_us", Json::num(stats.latency.percentile_us(0.95))),
                ("p99_us", Json::num(stats.latency.percentile_us(0.99))),
                (
                    "shed_rate",
                    Json::num(stats.shed as f64 / stats.offered.max(1) as f64),
                ),
                (
                    "goodput",
                    Json::num(stats.good as f64 / stats.offered.max(1) as f64),
                ),
                ("offered", Json::num(stats.offered as f64)),
                ("shed", Json::num(stats.shed as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("regime", Json::str(regime)),
        ("decisions_per_sec", Json::num(out.decisions_per_sec)),
        ("replay_digest", Json::str(format!("{:016x}", out.digest))),
        ("classes", Json::Arr(classes)),
    ])
}

/// The overload surge: idle shoulders, then a sustained plateau at
/// several times the per-tenant clean load for the middle half of the
/// run.
fn surge_plan(steps: usize) -> LoadPlan {
    let s = steps as u32;
    LoadPlan::new()
        .phase(Window::new(0, s / 4), TenantSel::All, 2, 1)
        .phase(Window::new(s / 4, 3 * s / 4), TenantSel::All, 8, 4)
        .phase(Window::new(3 * s / 4, s), TenantSel::All, 2, 1)
}

/// Infra chaos on top of the surge: one tenant panics early but has a
/// valid checkpoint (full recovery cycle), everyone sees latency
/// spikes, the last tenant rides a reload storm.
fn infra_plan(n: usize) -> InfraChaosPlan {
    InfraChaosPlan::new()
        .tenant_panic(Window::new(0, 3), TenantSel::One(0), 1.0)
        .latency_spike(Window::always(), TenantSel::All, 400, 0.2)
        .reload_storm(Window::always(), TenantSel::One(n - 1), 10)
}

fn run(steps: usize, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let n = if args.smoke { 3 } else { 6 };
    let world = resolve_scenario(args, SEED)?;
    let mut tenants = build_tenants(n, world.as_ref())?;
    let total_agents: u64 = tenants.iter().map(|t| t.env.num_agents() as u64).sum();
    // Capacity sized so the clean regime (offered ≤ 3 per tenant) fits
    // with headroom while the surge (offered 8–12) saturates it.
    let capacity = total_agents * 3 + 10;
    println!(
        "loadgen bench: {n} tenants, {total_agents} agents, capacity {capacity}, \
         {steps} steps per regime, seed {SEED}"
    );

    // Regime 1: clean. Offered load under capacity — admission must be
    // invisible: zero shed, zero browned-out steps, everyone healthy.
    let clean_plan = LoadPlan::new().phase(Window::new(0, steps as u32), TenantSel::All, 2, 1);
    let mut fleet = FleetRuntime::new(
        fleet_config(capacity),
        specs_for(&tenants, ServeConfig::default()),
    );
    let clean = run_regime(&mut fleet, &mut tenants, &clean_plan, steps)?;
    print_regime("clean", &clean);
    assert!(
        clean.classes.iter().all(|c| c.shed == 0),
        "clean regime must shed nothing"
    );
    assert!(
        clean
            .final_states
            .iter()
            .all(|&s| s == TenantState::Healthy),
        "clean regime must stay healthy"
    );
    for t in 0..n {
        let tel = fleet.tenant_telemetry(t);
        assert_eq!(
            tel.steps_at(tsc_serve::ServiceLevel::Full),
            steps as u64,
            "under-capacity admission must grant full service every step"
        );
    }

    // Regime 2: overload, twice — the second run must replay the first
    // bit-for-bit (open-loop load is a pure function of seed+step).
    let plan = surge_plan(steps);
    let mut fleet = FleetRuntime::new(
        fleet_config(capacity),
        specs_for(&tenants, ServeConfig::default()),
    );
    let overload = run_regime(&mut fleet, &mut tenants, &plan, steps)?;
    // The admission layer's hard guarantee is per step: a tenant's
    // shed-step count never exceeds its SLA cap over steps taken.
    for t in 0..n {
        let tel = fleet.tenant_telemetry(t);
        let cap = CLASSES[t % CLASSES.len()].1.max_shed_rate;
        let shed_steps = tel.steps_at(tsc_serve::ServiceLevel::Shed) as f64;
        assert!(
            shed_steps <= cap * (steps as f64 + 1.0) + 1e-9,
            "tenant {t} shed {shed_steps} steps, above its SLA cap {cap}"
        );
    }
    let mut fleet = FleetRuntime::new(
        fleet_config(capacity),
        specs_for(&tenants, ServeConfig::default()),
    );
    let replay = run_regime(&mut fleet, &mut tenants, &plan, steps)?;
    print_regime("overload", &overload);
    assert_eq!(
        overload.digest, replay.digest,
        "overload regime must replay bit-for-bit under the same seed and plan"
    );
    let gold_p99 = overload.classes[0].latency.percentile_us(0.99);
    assert!(
        gold_p99 <= GOLD_P99_BUDGET_US,
        "gold p99 under overload blew its pinned budget: {gold_p99:.1} us > {GOLD_P99_BUDGET_US} us"
    );
    assert_eq!(
        overload.classes[0].shed, 0,
        "the gold class must never shed (max_shed_rate 0)"
    );
    assert!(
        overload.classes.iter().skip(1).any(|c| c.shed > 0),
        "the surge must shed some sheddable-class load"
    );

    // Regime 3: infra chaos on top of the surge. The double-buffered
    // snapshot swap keeps the reload storm off the degradation ladder:
    // zero ReloadInFlight fallbacks, and the storm actually swapped.
    let mut fleet = FleetRuntime::new(
        fleet_config(capacity),
        specs_for(&tenants, ServeConfig::default()),
    );
    fleet.set_infra_chaos(infra_plan(n))?;
    let infra = run_regime(&mut fleet, &mut tenants, &plan, steps)?;
    print_regime("infra-chaos", &infra);
    assert_eq!(
        infra.reload_degraded, 0,
        "a staged reload must never degrade a step"
    );
    assert!(
        infra.hot_swaps >= 1,
        "the reload storm must complete at least one hot swap"
    );
    println!(
        "\noverload replay digest {:016x} reproduced; gold p99 {gold_p99:.1} us within \
         {GOLD_P99_BUDGET_US} us budget; {} hot swap(s), zero reload-degraded steps; \
         no process abort",
        overload.digest, infra.hot_swaps
    );

    let report = Json::obj([
        ("bench", Json::str("loadgen")),
        ("tenants", Json::num(n as f64)),
        ("total_agents", Json::num(total_agents as f64)),
        ("capacity", Json::num(capacity as f64)),
        ("steps_per_regime", Json::num(steps as f64)),
        ("smoke", Json::Bool(args.smoke)),
        ("seed", Json::num(SEED as f64)),
        ("gold_p99_budget_us", Json::num(GOLD_P99_BUDGET_US)),
        ("gold_p99_overload_us", Json::num(gold_p99)),
        (
            "regimes",
            Json::Arr(vec![
                regime_json("clean", &clean),
                regime_json("overload", &overload),
                regime_json("infra_chaos", &infra),
            ]),
        ),
        ("overload_replay_digest_match", Json::Bool(true)),
        (
            "reload_degraded_steps",
            Json::num(infra.reload_degraded as f64),
        ),
        ("hot_swaps", Json::num(infra.hot_swaps as f64)),
    ]);
    args.write_report_if_json("BENCH_loadgen.json", &report)?;

    for t in &tenants {
        std::fs::remove_file(&t.checkpoint).ok();
    }
    Ok(())
}
