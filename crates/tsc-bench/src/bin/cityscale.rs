//! City-scale scaling sweep: compiled irregular city networks from 36
//! to ~3000 intersections on the discrete-event core.
//!
//! For each size the bench compiles a `city-<n>` spec, runs a
//! MaxPressure control loop over the raw simulation (observe_all →
//! decide → request_phase → advance one decision interval), and
//! reports wall-clock throughput (sim-seconds/s and env-steps/s), the
//! share of wall time spent in `observe_all`, vehicle conservation,
//! and travel-time statistics. Each size then *replays* with the same
//! `(spec, seed)` and asserts that the compiled fingerprint and every
//! metric bit are identical — the scenario compiler's determinism
//! contract, checked end to end at scale.
//!
//! Usage: `cityscale [--json] [--smoke] [horizon_seconds]`
//! (default horizon: 600; `--smoke` runs a single ~200-intersection
//! city for 120 s — the CI gate; `--json` also writes
//! `BENCH_cityscale.json` at the repo root).

use std::time::{Duration, Instant};

use tsc_baselines::MaxPressureController;
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_scenario::{city_spec, compile, CompiledScenario};
use tsc_sim::{Controller, SimConfig, Simulation, TravelTimeSummary, TripStats};

const SEED: u64 = 42;
/// Yellow (2 s) + decision interval (5 s), matching the env default.
const SECONDS_PER_STEP: u32 = 7;

fn main() {
    let args = BenchArgs::parse();
    let horizon = args.pos_or(0, if args.smoke { 120 } else { 600 });
    exit_on_error("cityscale", run(horizon, &args));
}

/// Everything one measured run produces. `Eq`-comparable fields are
/// the replay contract: wall-clock numbers are excluded.
struct RunOutcome {
    fingerprint: u64,
    agents: usize,
    links: usize,
    steps: usize,
    spawned: usize,
    finished: usize,
    active: usize,
    backlog: usize,
    all: TravelTimeSummary,
    finished_stats: TravelTimeSummary,
    wall: Duration,
    observe_wall: Duration,
}

impl RunOutcome {
    /// The deterministic face of the run: everything that must be
    /// bit-identical when the same `(spec, seed)` replays.
    fn replay_key(&self) -> (u64, usize, usize, usize, usize, u64, u64) {
        (
            self.fingerprint,
            self.steps,
            self.spawned,
            self.finished,
            self.backlog,
            self.all.mean.to_bits(),
            self.finished_stats.p99.to_bits(),
        )
    }
}

/// Compiles and drives one city for `horizon` sim-seconds under
/// MaxPressure control, timing `observe_all` separately from the rest
/// of the loop.
fn drive(
    compiled: &CompiledScenario,
    horizon: u32,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let scenario = &compiled.scenario;
    let mut sim = Simulation::new(scenario, SimConfig::default(), SEED)?;
    assert!(sim.is_event_core(), "cityscale must run on the event core");
    let agents = sim.signalized();
    let phase_counts: Vec<usize> = scenario
        .signal_plans
        .iter()
        .map(tsc_sim::SignalPlan::num_phases)
        .collect();
    let mut controller = MaxPressureController::default();
    controller.reset();

    let start = Instant::now();
    let mut observe_wall = Duration::ZERO;
    let mut steps = 0usize;
    while sim.time() < horizon {
        let t = Instant::now();
        let obs = sim.observe_all();
        observe_wall += t.elapsed();
        let actions = controller.decide(&obs);
        for ((&node, &action), &phases) in agents.iter().zip(&actions).zip(&phase_counts) {
            sim.request_phase(node, action % phases)?;
        }
        for _ in 0..SECONDS_PER_STEP {
            sim.step()?;
        }
        steps += 1;
    }
    let wall = start.elapsed();

    // Vehicle conservation on the event core: everything the demand
    // stage spawned is on the network, queued at an entry link
    // (`active_vehicles` counts both), or finished.
    let spawned = sim.metrics().spawned();
    let finished = sim.metrics().finished();
    let active = sim.active_vehicles();
    let backlog = sim.backlog_vehicles();
    if spawned != active + finished {
        return Err(format!(
            "conservation violated: spawned {spawned} != (on-network + backlog) \
             {active} + finished {finished}"
        )
        .into());
    }

    let trips = TripStats::collect(&sim);
    Ok(RunOutcome {
        fingerprint: compiled.fingerprint,
        agents: agents.len(),
        links: scenario.network.num_links(),
        steps,
        spawned,
        finished,
        active,
        backlog,
        all: trips.all,
        finished_stats: trips.finished,
        wall,
        observe_wall,
    })
}

fn summary_json(s: &TravelTimeSummary) -> Json {
    Json::obj([
        ("count", Json::num(s.count as f64)),
        ("mean_s", Json::num(s.mean)),
        ("min_s", Json::num(s.min)),
        ("p50_s", Json::num(s.p50)),
        ("p90_s", Json::num(s.p90)),
        ("p99_s", Json::num(s.p99)),
        ("max_s", Json::num(s.max)),
    ])
}

fn run(horizon: u32, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let sizes: &[usize] = if args.smoke {
        &[200]
    } else {
        &[36, 200, 1000, 3000]
    };
    println!(
        "cityscale: irregular compiled cities {sizes:?}, horizon {horizon}s, \
         MaxPressure control, seed {SEED}"
    );
    println!(
        "{:<12} {:>7} {:>7} {:>8} {:>11} {:>11} {:>9} {:>10} {:>10}",
        "city", "agents", "links", "steps", "sim-s/s", "steps/s", "obs %", "mean tt", "p99 tt"
    );

    let mut rows = Vec::new();
    for &n in sizes {
        let spec = city_spec(n, SEED);
        let compiled = compile(&spec)?;
        let out = drive(&compiled, horizon)?;

        // Replay: recompile from the same spec and drive again — the
        // fingerprint and every metric bit must match.
        let replay = drive(&compile(&spec)?, horizon)?;
        if out.replay_key() != replay.replay_key() {
            return Err(format!(
                "replay divergence on {}: {:?} vs {:?}",
                spec.name,
                out.replay_key(),
                replay.replay_key()
            )
            .into());
        }

        let wall_s = out.wall.as_secs_f64().max(1e-9);
        let sim_per_s = f64::from(horizon) / wall_s;
        let steps_per_s = out.steps as f64 / wall_s;
        let obs_share = out.observe_wall.as_secs_f64() / wall_s;
        println!(
            "{:<12} {:>7} {:>7} {:>8} {:>11.0} {:>11.1} {:>8.1}% {:>9.1}s {:>9.1}s",
            spec.name,
            out.agents,
            out.links,
            out.steps,
            sim_per_s,
            steps_per_s,
            obs_share * 100.0,
            out.all.mean,
            out.all.p99,
        );
        rows.push(Json::obj([
            ("city", Json::str(spec.name.clone())),
            (
                "fingerprint",
                Json::str(format!("{:016x}", out.fingerprint)),
            ),
            ("agents", Json::num(out.agents as f64)),
            ("links", Json::num(out.links as f64)),
            ("decision_steps", Json::num(out.steps as f64)),
            ("sim_seconds_per_sec", Json::num(sim_per_s)),
            ("steps_per_sec", Json::num(steps_per_s)),
            ("observe_all_share", Json::num(obs_share)),
            ("spawned", Json::num(out.spawned as f64)),
            ("finished", Json::num(out.finished as f64)),
            ("active", Json::num(out.active as f64)),
            ("backlog", Json::num(out.backlog as f64)),
            ("travel_time_all", summary_json(&out.all)),
            ("travel_time_finished", summary_json(&out.finished_stats)),
            ("replay_identical", Json::Bool(true)),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("cityscale")),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("seconds_per_step", Json::num(f64::from(SECONDS_PER_STEP))),
        ("controller", Json::str("max_pressure")),
        ("seed", Json::num(SEED as f64)),
        ("smoke", Json::Bool(args.smoke)),
        ("cities", Json::Arr(rows)),
    ]);
    args.write_report_if_json("BENCH_cityscale.json", &report)?;
    Ok(())
}
