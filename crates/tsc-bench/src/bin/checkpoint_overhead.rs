//! Checkpoint save/restore overhead of the fault-tolerant trainer.
//!
//! Measures, per grid size: the serialized checkpoint size on disk
//! (weights + full Adam state for every bundle), the wall-clock cost of
//! one atomic `save_checkpoint`, and the cost of a full
//! `PairUpLight::resume` (parse + validate + restore). Honest numbers:
//! each cell is the mean over several repetitions on a fully
//! initialized model, and every restore is verified to reproduce the
//! saved parameters bit-for-bit before its timing is reported.
//!
//! Usage: `checkpoint_overhead [--json] [reps]` (default: 5; `--json`
//! also writes `BENCH_checkpoint.json` at the repo root).

use std::time::Instant;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() {
    let args = BenchArgs::parse();
    let reps: u32 = args.pos_or(0, 5);
    exit_on_error("checkpoint_overhead", run(reps, &args));
}

fn run(reps: u32, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    println!("checkpoint overhead ({reps} reps per cell)");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "model", "params", "size", "save", "resume"
    );
    let mut rows_out = Vec::new();
    // Shared-parameter models serialize one bundle regardless of grid
    // size; the per-agent row shows how checkpoints scale when every
    // intersection owns its networks (the Monaco configuration).
    for (cols, rows, sharing) in [(2usize, 2usize, true), (6, 6, true), (4, 4, false)] {
        let grid = Grid::build(GridConfig {
            cols,
            rows,
            spacing: 200.0,
        })?;
        let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
        let env = TscEnv::new(
            scenario,
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 300,
            },
            0,
        )?;
        let cfg = PairUpLightConfig {
            parameter_sharing: sharing,
            ..Default::default()
        };
        let model = PairUpLight::new(&env, cfg);
        let dir = std::env::temp_dir().join("pairuplight_ck_overhead");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("ck-{cols}x{rows}.txt"));

        let mut save_ns = 0u128;
        let mut resume_ns = 0u128;
        for _ in 0..reps {
            let t = Instant::now();
            model.save_checkpoint(&path, 0)?;
            save_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            let (restored, _) = PairUpLight::resume(&env, cfg, &path)?;
            resume_ns += t.elapsed().as_nanos();
            assert_eq!(
                restored.parameter_vector(),
                model.parameter_vector(),
                "restore must be exact before its timing counts"
            );
        }
        let size = std::fs::metadata(&path)?.len();
        let label = format!("{cols}x{rows}{}", if sharing { "" } else { " per-agent" });
        let save_ms = save_ns as f64 / f64::from(reps) / 1e6;
        let resume_ms = resume_ns as f64 / f64::from(reps) / 1e6;
        println!(
            "{label:<16} {:>12} {:>11.1}K {save_ms:>10.2}ms {resume_ms:>10.2}ms",
            model.num_parameters(),
            size as f64 / 1024.0,
        );
        rows_out.push(Json::obj([
            ("model", Json::str(label)),
            ("params", Json::num(model.num_parameters() as f64)),
            ("size_bytes", Json::num(size as f64)),
            ("save_ms", Json::num(save_ms)),
            ("resume_ms", Json::num(resume_ms)),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
    println!(
        "note: resume includes model construction for the target scenario, not just\n\
         file parsing; the checkpoint text format trades size for dependency-free\n\
         inspectability (see DESIGN.md, Fault tolerance)."
    );
    let report = Json::obj([
        ("bench", Json::str("checkpoint_overhead")),
        ("reps", Json::num(f64::from(reps))),
        ("cells", Json::Arr(rows_out)),
    ]);
    args.write_report_if_json("BENCH_checkpoint.json", &report)?;
    Ok(())
}
