//! Sensor-degradation robustness study (extension; the paper's claims
//! center on "robustness, resilience and overall performance").
//! Trains PairUpLight on clean detectors, then evaluates it — and the
//! FixedTime reference — under increasing detector dropout and noise.
//! FixedTime ignores detectors entirely, so it is the natural
//! degradation-free floor; a robust learned policy should stay below it
//! well past nominal conditions.

use tsc_baselines::FixedTimeController;
use tsc_bench::eval::{evaluate, EvalConfig};
use tsc_bench::experiments::{self, ExperimentScale};
use tsc_bench::models::{train_model, ModelKind};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{DetectorConfig, EnvConfig, SimConfig, TscEnv};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("robustness study at scale {scale:?}");
    let run = || -> Result<String, tsc_sim::SimError> {
        let grid = Grid::build(GridConfig {
            cols: scale.grid,
            rows: scale.grid,
            spacing: 200.0,
        })?;
        let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
        let mut env = TscEnv::new(
            scenario.clone(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: scale.train_horizon,
            },
            scale.seed,
        )?;
        let mut setup = tsc_bench::TrainSetup {
            hidden: scale.hidden,
            lstm_hidden: scale.hidden,
            episodes: scale.episodes,
            ppo_epochs: 2,
            seed: scale.seed,
            heterogeneous: false,
        };
        setup.episodes = scale.episodes;
        eprintln!("training PairUpLight on clean sensors …");
        let mut trained = train_model(ModelKind::PairUpLight, &mut env, &setup, |p| {
            if p.episode % 10 == 0 {
                eprintln!(
                    "  episode {:>3}: wait {:>7.2}s",
                    p.episode, p.avg_waiting_time
                );
            }
        })?;
        let mut csv = String::from("dropout,noise,pairuplight_travel,fixedtime_travel\n");
        println!("\nSENSOR-DEGRADATION ROBUSTNESS (avg travel time, s)");
        println!(
            "{:<10}{:<8}{:>14}{:>14}",
            "dropout", "noise", "PairUpLight", "FixedTime"
        );
        for (dropout, noise) in [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.3, 0.0),
            (0.0, 0.3),
            (0.3, 0.3),
            (0.6, 0.3),
        ] {
            let sim_cfg = SimConfig {
                detector: DetectorConfig {
                    range: 50.0,
                    noise,
                    dropout,
                },
                ..SimConfig::default()
            };
            let eval_cfg = EvalConfig {
                horizon: scale.eval_horizon,
                drain_cap: scale.drain_cap,
                seed: scale.seed + 500,
            };
            let rl = evaluate(&mut *trained.controller, &scenario, sim_cfg, &eval_cfg)?;
            let mut fixed = FixedTimeController::default();
            let ft = evaluate(&mut fixed, &scenario, sim_cfg, &eval_cfg)?;
            println!(
                "{:<10.2}{:<8.2}{:>14.2}{:>14.2}",
                dropout, noise, rl.avg_travel_time, ft.avg_travel_time
            );
            csv.push_str(&format!(
                "{dropout},{noise},{:.2},{:.2}\n",
                rl.avg_travel_time, ft.avg_travel_time
            ));
        }
        Ok(csv)
    };
    match run() {
        Ok(csv) => match experiments::write_result("robustness.csv", &csv) {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write results: {e}"),
        },
        Err(e) => {
            eprintln!("robustness failed: {e}");
            std::process::exit(1);
        }
    }
}
