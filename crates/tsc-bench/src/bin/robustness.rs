//! Sensor-degradation robustness study (extension; the paper's claims
//! center on "robustness, resilience and overall performance").
//! Trains PairUpLight on clean detectors, then evaluates it — and the
//! FixedTime reference — under increasing detector dropout and noise,
//! injected through the chaos engine (`ChaosPlan`) rather than
//! detector-config knobs so the schedule, seeding and semantics are
//! shared with every other fault experiment. FixedTime ignores
//! detectors entirely, so it is the natural degradation-free floor; a
//! robust learned policy should stay below it well past nominal
//! conditions.
//!
//! Accepts the usual `ExperimentScale` flags plus `--json`, which also
//! writes `BENCH_robustness.json` at the repository root, and
//! `--scenario <name-or-path>`, which trains and evaluates on a
//! compiled world instead of the default grid (the report is stamped
//! with the world's structural fingerprint either way).

use tsc_baselines::FixedTimeController;
use tsc_bench::cli::BenchArgs;
use tsc_bench::eval::{evaluate_with_chaos, EvalConfig};
use tsc_bench::experiments::{self, ExperimentScale};
use tsc_bench::models::{train_model, ModelKind};
use tsc_bench::report::Json;
use tsc_bench::world::resolve_scenario;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{ChaosPlan, EnvConfig, LinkSel, SimConfig, TscEnv, Window};

/// Always-on sensing faults at the given levels; `(0, 0)` is the
/// empty plan (bit-identical to a clean evaluation).
fn degradation_plan(dropout: f64, noise: f64) -> ChaosPlan {
    let mut plan = ChaosPlan::default();
    if dropout > 0.0 {
        plan = plan.sensor_dropout(Window::always(), LinkSel::All, dropout);
    }
    if noise > 0.0 {
        plan = plan.sensor_noise(Window::always(), LinkSel::All, noise);
    }
    plan
}

fn main() {
    let args = BenchArgs::parse();
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("robustness study at scale {scale:?}");
    let run = || -> Result<(String, String, Vec<Json>), tsc_sim::SimError> {
        let (label, scenario) = match resolve_scenario(&args, scale.seed)? {
            Some(compiled) => {
                let label = format!(
                    "{} ({})",
                    compiled.scenario.name,
                    compiled.fingerprint_hex()
                );
                (label, compiled.scenario)
            }
            None => {
                let grid = Grid::build(GridConfig {
                    cols: scale.grid,
                    rows: scale.grid,
                    spacing: 200.0,
                })?;
                let scenario =
                    patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
                (format!("{0}x{0}", scale.grid), scenario)
            }
        };
        eprintln!("world: {label}");
        let mut env = TscEnv::new(
            scenario.clone(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: scale.train_horizon,
            },
            scale.seed,
        )?;
        let setup = tsc_bench::TrainSetup {
            hidden: scale.hidden,
            lstm_hidden: scale.hidden,
            episodes: scale.episodes,
            ppo_epochs: 2,
            seed: scale.seed,
            heterogeneous: false,
        };
        eprintln!("training PairUpLight on clean sensors …");
        let mut trained = train_model(ModelKind::PairUpLight, &mut env, &setup, |p| {
            if p.episode % 10 == 0 {
                eprintln!(
                    "  episode {:>3}: wait {:>7.2}s",
                    p.episode, p.avg_waiting_time
                );
            }
        })?;
        let mut csv = String::from("dropout,noise,pairuplight_travel,fixedtime_travel\n");
        let mut rows = Vec::new();
        println!("\nSENSOR-DEGRADATION ROBUSTNESS (avg travel time, s)");
        println!(
            "{:<10}{:<8}{:>14}{:>14}",
            "dropout", "noise", "PairUpLight", "FixedTime"
        );
        for (dropout, noise) in [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.3, 0.0),
            (0.0, 0.3),
            (0.3, 0.3),
            (0.6, 0.3),
        ] {
            let plan = degradation_plan(dropout, noise);
            let eval_cfg = EvalConfig {
                horizon: scale.eval_horizon,
                drain_cap: scale.drain_cap,
                seed: scale.seed + 500,
            };
            let rl = evaluate_with_chaos(
                &mut *trained.controller,
                &scenario,
                SimConfig::default(),
                &plan,
                &eval_cfg,
            )?;
            let mut fixed = FixedTimeController::default();
            let ft = evaluate_with_chaos(
                &mut fixed,
                &scenario,
                SimConfig::default(),
                &plan,
                &eval_cfg,
            )?;
            println!(
                "{:<10.2}{:<8.2}{:>14.2}{:>14.2}",
                dropout, noise, rl.avg_travel_time, ft.avg_travel_time
            );
            csv.push_str(&format!(
                "{dropout},{noise},{:.2},{:.2}\n",
                rl.avg_travel_time, ft.avg_travel_time
            ));
            rows.push(Json::obj([
                ("dropout", Json::num(dropout)),
                ("noise", Json::num(noise)),
                ("pairuplight_travel_s", Json::num(rl.avg_travel_time)),
                ("fixedtime_travel_s", Json::num(ft.avg_travel_time)),
                ("pairuplight_completion", Json::num(rl.completion_rate)),
            ]));
        }
        Ok((label, csv, rows))
    };
    match run() {
        Ok((label, csv, rows)) => {
            match experiments::write_result("robustness.csv", &csv) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
            let report = Json::obj([
                ("bench", Json::str("robustness")),
                ("grid", Json::str(label)),
                ("episodes", Json::num(scale.episodes as f64)),
                ("seed", Json::num(scale.seed as f64)),
                ("rows", Json::Arr(rows)),
            ]);
            if let Err(e) = args.write_report_if_json("BENCH_robustness.json", &report) {
                eprintln!("could not write report: {e}");
            }
        }
        Err(e) => {
            eprintln!("robustness failed: {e}");
            std::process::exit(1);
        }
    }
}
