//! Cost of the observability layer on the training hot path.
//!
//! The span instrumentation threaded through rollout collection, GAE,
//! PPO, and the simulator must be near-free when disabled (one relaxed
//! atomic load per span site). This bench measures the K=1 serial
//! rollout loop — the exact cell `rollout_throughput` reports — in
//! three views:
//!
//! 1. **disabled** — spans compiled in, tracing off (the production
//!    default);
//! 2. **enabled** — tracing on, per-span timing collected;
//! 3. against the **`BENCH_rollout.json` baseline** recorded before
//!    the instrumentation existed, when that file is present.
//!
//! With `--json` it writes `BENCH_obs.json`, including the measured
//! disabled-mode overhead versus the baseline (expected within noise;
//! the acceptance bar is < 2%) and the per-span self/total breakdown
//! from the enabled pass.
//!
//! Usage: `obs_overhead [--json] [horizon_seconds] [rounds]`
//! (defaults: 300, 2).

use std::time::Instant;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::{read_report, Json};
use tsc_sim::rollout::{derive_rollout_seed, RolloutSet};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() {
    let args = BenchArgs::parse();
    let horizon: u32 = args.pos_or(0, 300);
    let rounds: u64 = args.pos_or(1, 2);
    exit_on_error("obs_overhead", run(horizon, rounds, &args));
}

/// One measurement pass: the K=1 serial collection loop of
/// `rollout_throughput`, byte-for-byte the same work.
fn measure(
    model: &PairUpLight,
    env: &TscEnv,
    rounds: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut set = RolloutSet::new(env, 1);
    let start = Instant::now();
    let mut steps_done: u64 = 0;
    for round in 0..rounds {
        let seeds = [derive_rollout_seed(0, round, 0)];
        let rollouts = model.collect_rollouts(&mut set, &seeds, false)?;
        steps_done += rollouts.iter().map(|r| r.stats.steps as u64).sum::<u64>();
    }
    Ok(steps_done as f64 / start.elapsed().as_secs_f64())
}

fn run(horizon: u32, rounds: u64, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::build(GridConfig::default())?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )?;
    let cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        ..Default::default()
    };
    let model = PairUpLight::new(&env, cfg);

    println!(
        "obs overhead: 6x6 grid, horizon {horizon}s, {} decision steps/episode, {rounds} round(s)",
        env.steps_per_episode()
    );

    // Warm-up pass so neither measured pass pays first-touch costs.
    tsc_obs::span::set_enabled(false);
    measure(&model, &env, 1)?;

    let disabled = measure(&model, &env, rounds)?;
    println!("spans disabled: {disabled:>10.0} env-steps/s");

    tsc_obs::span::reset();
    tsc_obs::span::set_enabled(true);
    let enabled = measure(&model, &env, rounds)?;
    tsc_obs::span::set_enabled(false);
    let spans = tsc_obs::span::report();
    println!("spans enabled:  {enabled:>10.0} env-steps/s");
    let enabled_overhead_pct = (disabled - enabled) / disabled * 100.0;
    println!("enabled-mode overhead vs disabled: {enabled_overhead_pct:.2}%");

    println!(
        "{:>22} {:>10} {:>14} {:>14}",
        "span", "count", "total", "self"
    );
    let mut span_rows = Vec::new();
    for (name, stat) in &spans {
        println!(
            "{name:>22} {:>10} {:>12.2}ms {:>12.2}ms",
            stat.count,
            stat.total_ns as f64 / 1e6,
            stat.self_ns as f64 / 1e6
        );
        span_rows.push(Json::obj([
            ("name", Json::str(*name)),
            ("count", Json::num(stat.count as f64)),
            ("total_ms", Json::num(stat.total_ns as f64 / 1e6)),
            ("self_ms", Json::num(stat.self_ns as f64 / 1e6)),
        ]));
    }

    // PR-1 recorded the same cell before any instrumentation existed;
    // compare when available. Cross-session wall-clock comparisons are
    // noisy, so this is reported, while the in-process disabled-vs-
    // enabled pair above is the controlled measurement.
    let baseline = read_report("BENCH_rollout.json")?.and_then(|r| {
        let cells = match r.get("cells") {
            Some(Json::Arr(cells)) => cells.clone(),
            _ => return None,
        };
        cells
            .iter()
            .find(|c| c.get_num("replicas") == Some(1.0) && c.get_str("mode") == Some("serial"))
            .and_then(|c| c.get_num("env_steps_per_sec"))
    });
    let disabled_overhead_pct = baseline.map(|b| (b - disabled) / b * 100.0);
    match (baseline, disabled_overhead_pct) {
        (Some(b), Some(pct)) => {
            println!("BENCH_rollout.json baseline (K=1 serial): {b:.0} env-steps/s");
            println!("disabled-mode overhead vs baseline: {pct:.2}% (bar: < 2%)");
        }
        _ => println!("BENCH_rollout.json baseline not found; skipping cross-run comparison"),
    }

    let report = Json::obj([
        ("bench", Json::str("obs_overhead")),
        ("grid", Json::str("6x6")),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("rounds", Json::num(rounds as f64)),
        ("disabled_steps_per_sec", Json::num(disabled)),
        ("enabled_steps_per_sec", Json::num(enabled)),
        ("enabled_overhead_pct", Json::num(enabled_overhead_pct)),
        (
            "baseline_steps_per_sec",
            baseline.map_or(Json::Null, Json::num),
        ),
        (
            "disabled_overhead_pct",
            disabled_overhead_pct.map_or(Json::Null, Json::num),
        ),
        ("overhead_bar_pct", Json::num(2.0)),
        ("spans", Json::Arr(span_rows)),
    ]);
    args.write_report_if_json("BENCH_obs.json", &report)?;
    Ok(())
}
