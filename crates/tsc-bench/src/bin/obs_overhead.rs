//! Cost of the observability layer on the training hot path.
//!
//! The span instrumentation threaded through rollout collection, GAE,
//! PPO, and the simulator must be near-free when disabled (one relaxed
//! atomic load per span site). This bench measures the K=1 serial
//! rollout loop — the exact cell `rollout_throughput` reports — in
//! three views:
//!
//! 1. **disabled** — spans compiled in, tracing off (the production
//!    default);
//! 2. **enabled** — tracing on, per-span timing collected;
//! 3. against the **`BENCH_rollout.json` baseline** recorded before
//!    the instrumentation existed, when that file is present.
//!
//! With `--json` it writes `BENCH_obs.json`, including the measured
//! disabled-mode overhead versus the baseline (expected within noise;
//! the acceptance bar is < 2%) and the per-span self/total breakdown
//! from the enabled pass.
//!
//! The bench also runs the **flight-recorder gate**: the same
//! supervised fleet serving loop with recording off and on must fold
//! to identical decision digests (recording is observation-only, by
//! construction and by pin), and the recording overhead must stay
//! under the bar recorded in `BENCH_obs.json` — the number that
//! justifies leaving the recorder always-on in production.
//!
//! Usage: `obs_overhead [--json] [--smoke] [horizon_seconds] [rounds]`
//! (defaults: 300, 2).

use std::time::Instant;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::forensics::{FleetWorldSpec, TenantWorldSpec};
use tsc_bench::report::{read_report, Json};
use tsc_serve::{FleetRuntime, FlightConfig, SupervisorConfig};
use tsc_sim::rollout::{derive_rollout_seed, RolloutSet};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

/// Recording overhead acceptance bar (percent of fleet serving
/// throughput). Typical measurements sit near zero — a frame is a few
/// digests folded into a preallocated ring — but wall-clock gates in
/// CI need headroom for noise.
const RECORDER_OVERHEAD_BAR_PCT: f64 = 10.0;

fn main() {
    let args = BenchArgs::parse();
    let horizon: u32 = args.pos_or(0, 300);
    let rounds: u64 = args.pos_or(1, 2);
    exit_on_error("obs_overhead", run(horizon, rounds, &args));
}

/// One arm of the recorder gate: a fleet (recorder off or on) plus
/// its environments, advanced in chunks so both arms sample the same
/// wall-clock windows. Only the `FleetRuntime::step` calls are timed
/// — environment stepping is identical work on both arms and would
/// just dilute the signal.
struct GateArm {
    fleet: FleetRuntime,
    envs: Vec<TscEnv>,
    obs: Vec<Vec<tsc_sim::IntersectionObs>>,
    digest: u64,
    serve_ns: u64,
}

impl GateArm {
    fn new(
        spec: &FleetWorldSpec,
        flight: Option<FlightConfig>,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let (fleet, mut envs) = spec.build_with_flight(flight)?;
        let obs = envs
            .iter_mut()
            .zip(&spec.tenants)
            .map(|(env, t)| env.reset(t.env_seed))
            .collect();
        Ok(GateArm {
            fleet,
            envs,
            obs,
            digest: 0xcbf2_9ce4_8422_2325,
            serve_ns: 0,
        })
    }

    /// Advances `steps` fleet steps and returns the serve-time of
    /// this chunk alone (also folded into the arm's running total).
    fn advance(&mut self, steps: u64) -> Result<u64, Box<dyn std::error::Error>> {
        let mut chunk_ns = 0u64;
        for _ in 0..steps {
            let views: Vec<&[_]> = self.obs.iter().map(|o| o.as_slice()).collect();
            let t0 = Instant::now();
            let out = self.fleet.step(&views)?;
            chunk_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for byte in out.digest().to_le_bytes() {
                self.digest ^= u64::from(byte);
                self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
            for (i, (t, env)) in out.tenants.iter().zip(self.envs.iter_mut()).enumerate() {
                self.obs[i] = env.step(&t.actions)?.obs;
            }
        }
        self.serve_ns += chunk_ns;
        Ok(chunk_ns)
    }
}

/// The flight-recorder gate: identical decision digests with the
/// recorder off and on, and recording overhead under the bar. The two
/// arms advance in alternating 25-step chunks, so frequency drift and
/// noisy neighbors hit both equally. Returns
/// `(off_steps_per_sec, on_steps_per_sec, overhead_pct)`.
fn recorder_gate(steps: u64) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let spec = FleetWorldSpec {
        tenants: (0..3)
            .map(|i| TenantWorldSpec {
                name: format!("gate-{i}"),
                cols: 2,
                rows: 2,
                spacing: 150.0,
                pattern: (i * 2) % 5,
                hidden: 16,
                lstm_hidden: 16,
                model_seed: 500 + i as u64,
                env_seed: 900 + i as u64,
            })
            .collect(),
        decision_interval: 5,
        horizon: 1_000_000,
        fleet_seed: 7,
        supervisor: SupervisorConfig::default(),
        admission_capacity: None,
        flight_capacity: 256,
        flight_cooldown: 64,
        chaos: tsc_serve::InfraChaosPlan::new(),
        load: tsc_serve::LoadPlan::new(),
    };
    // Warm-up arm: first-touch page faults and lazy init don't count.
    GateArm::new(&spec, None)?.advance(25)?;

    let mut off = GateArm::new(&spec, None)?;
    let mut on = GateArm::new(&spec, Some(FlightConfig::default()))?;
    let chunk = 25;
    let mut done = 0;
    let mut off_chunks = Vec::new();
    let mut on_chunks = Vec::new();
    while done < steps {
        let n = chunk.min(steps - done);
        off_chunks.push((off.advance(n)?, n));
        on_chunks.push((on.advance(n)?, n));
        done += n;
    }
    if off.digest != on.digest {
        return Err("recorder-on fleet diverged from recorder-off (must be bit-identical)".into());
    }
    assert_eq!(
        on.fleet.flight_health().frames_recorded,
        steps * 3,
        "every tenant records one frame per step"
    );
    // A single scheduler stall inside one chunk would dominate raw
    // totals (the whole gate serves for mere milliseconds), so the
    // verdict comes from the MEDIAN per-chunk overhead — outlier
    // chunks cannot move it.
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let overhead_pct = median(
        off_chunks
            .iter()
            .zip(&on_chunks)
            .map(|(&(o, _), &(n, _))| (n as f64 - o as f64) / o as f64 * 100.0)
            .collect(),
    );
    let rate = |chunks: &[(u64, u64)]| {
        median(
            chunks
                .iter()
                .map(|&(ns, n)| n as f64 / (ns as f64 / 1e9))
                .collect(),
        )
    };
    Ok((rate(&off_chunks), rate(&on_chunks), overhead_pct))
}

/// One measurement pass: the K=1 serial collection loop of
/// `rollout_throughput`, byte-for-byte the same work.
fn measure(
    model: &PairUpLight,
    env: &TscEnv,
    rounds: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut set = RolloutSet::new(env, 1);
    let start = Instant::now();
    let mut steps_done: u64 = 0;
    for round in 0..rounds {
        let seeds = [derive_rollout_seed(0, round, 0)];
        let rollouts = model.collect_rollouts(&mut set, &seeds, false)?;
        steps_done += rollouts.iter().map(|r| r.stats.steps as u64).sum::<u64>();
    }
    Ok(steps_done as f64 / start.elapsed().as_secs_f64())
}

fn run(horizon: u32, rounds: u64, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::build(GridConfig::default())?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )?;
    let cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        ..Default::default()
    };
    let model = PairUpLight::new(&env, cfg);

    println!(
        "obs overhead: 6x6 grid, horizon {horizon}s, {} decision steps/episode, {rounds} round(s)",
        env.steps_per_episode()
    );

    // Warm-up pass so neither measured pass pays first-touch costs.
    tsc_obs::span::set_enabled(false);
    measure(&model, &env, 1)?;

    let disabled = measure(&model, &env, rounds)?;
    println!("spans disabled: {disabled:>10.0} env-steps/s");

    tsc_obs::span::reset();
    tsc_obs::span::set_enabled(true);
    let enabled = measure(&model, &env, rounds)?;
    tsc_obs::span::set_enabled(false);
    let spans = tsc_obs::span::report();
    println!("spans enabled:  {enabled:>10.0} env-steps/s");
    let enabled_overhead_pct = (disabled - enabled) / disabled * 100.0;
    println!("enabled-mode overhead vs disabled: {enabled_overhead_pct:.2}%");

    println!(
        "{:>22} {:>10} {:>14} {:>14}",
        "span", "count", "total", "self"
    );
    let mut span_rows = Vec::new();
    for (name, stat) in &spans {
        println!(
            "{name:>22} {:>10} {:>12.2}ms {:>12.2}ms",
            stat.count,
            stat.total_ns as f64 / 1e6,
            stat.self_ns as f64 / 1e6
        );
        span_rows.push(Json::obj([
            ("name", Json::str(*name)),
            ("count", Json::num(stat.count as f64)),
            ("total_ms", Json::num(stat.total_ns as f64 / 1e6)),
            ("self_ms", Json::num(stat.self_ns as f64 / 1e6)),
        ]));
    }

    // PR-1 recorded the same cell before any instrumentation existed;
    // compare when available. Cross-session wall-clock comparisons are
    // noisy, so this is reported, while the in-process disabled-vs-
    // enabled pair above is the controlled measurement.
    let baseline = read_report("BENCH_rollout.json")?.and_then(|r| {
        let cells = match r.get("cells") {
            Some(Json::Arr(cells)) => cells.clone(),
            _ => return None,
        };
        cells
            .iter()
            .find(|c| c.get_num("replicas") == Some(1.0) && c.get_str("mode") == Some("serial"))
            .and_then(|c| c.get_num("env_steps_per_sec"))
    });
    let disabled_overhead_pct = baseline.map(|b| (b - disabled) / b * 100.0);
    match (baseline, disabled_overhead_pct) {
        (Some(b), Some(pct)) => {
            println!("BENCH_rollout.json baseline (K=1 serial): {b:.0} env-steps/s");
            println!("disabled-mode overhead vs baseline: {pct:.2}% (bar: < 2%)");
        }
        _ => println!("BENCH_rollout.json baseline not found; skipping cross-run comparison"),
    }

    let gate_steps: u64 = if args.smoke { 400 } else { 1000 };
    let (rec_off, rec_on, rec_pct) = recorder_gate(gate_steps)?;
    println!(
        "flight recorder gate ({gate_steps} fleet steps): off {rec_off:.0} steps/s, \
         on {rec_on:.0} steps/s, overhead {rec_pct:.2}% (bar: < {RECORDER_OVERHEAD_BAR_PCT}%), \
         digests identical"
    );
    if rec_pct >= RECORDER_OVERHEAD_BAR_PCT {
        return Err(format!(
            "flight-recorder overhead {rec_pct:.2}% exceeds the {RECORDER_OVERHEAD_BAR_PCT}% bar"
        )
        .into());
    }

    let report = Json::obj([
        ("bench", Json::str("obs_overhead")),
        ("grid", Json::str("6x6")),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("rounds", Json::num(rounds as f64)),
        ("disabled_steps_per_sec", Json::num(disabled)),
        ("enabled_steps_per_sec", Json::num(enabled)),
        ("enabled_overhead_pct", Json::num(enabled_overhead_pct)),
        (
            "baseline_steps_per_sec",
            baseline.map_or(Json::Null, Json::num),
        ),
        (
            "disabled_overhead_pct",
            disabled_overhead_pct.map_or(Json::Null, Json::num),
        ),
        ("overhead_bar_pct", Json::num(2.0)),
        ("spans", Json::Arr(span_rows)),
        (
            "flight_recorder",
            Json::obj([
                ("fleet_steps", Json::num(gate_steps as f64)),
                ("off_steps_per_sec", Json::num(rec_off)),
                ("on_steps_per_sec", Json::num(rec_on)),
                ("overhead_pct", Json::num(rec_pct)),
                ("overhead_bar_pct", Json::num(RECORDER_OVERHEAD_BAR_PCT)),
                ("digests_identical", Json::Bool(true)),
            ]),
        ),
    ]);
    args.write_report_if_json("BENCH_obs.json", &report)?;
    Ok(())
}
