//! Flight-recorder forensics: dump incidents from a chaos-stressed
//! fleet, then reconstruct the world from each incident's replay
//! context alone and re-execute it — asserting the replayed frames
//! match the captured ones **bit-for-bit**.
//!
//! Without arguments the bin runs the canonical round trip:
//!
//! 1. build the deterministic forensics world (three small-grid
//!    tenants, flight recorder on) with an [`InfraChaosPlan`] that
//!    panics one tenant through a window — driving it breaker-open →
//!    quarantine → recovery and dumping incidents along the way;
//! 2. read every incident file back from `results/incidents/`;
//! 3. replay each from its embedded context and diff frame-by-frame;
//! 4. exit non-zero unless every replay is clean.
//!
//! With incident paths as positional arguments, the bin skips the
//! capture phase and replays those files instead (the
//! "reproduce-from-attachment" workflow: an incident file is all you
//! need).
//!
//! Usage: `forensics [--json] [--smoke] [<incident.jsonl>...]`
//! (`--json` also writes `BENCH_forensics.json` and the live
//! Prometheus exposition `BENCH_forensics.prom` at the repo root).

use std::panic;
use std::path::PathBuf;

use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::forensics::{replay_incident, FleetWorldSpec, TenantWorldSpec};
use tsc_bench::report::{repo_root, write_prometheus, Json};
use tsc_obs::{read_incident, FlightTrigger};
use tsc_serve::{InfraChaosPlan, SupervisorConfig, TenantSel};
use tsc_sim::Window;

fn main() {
    let args = BenchArgs::parse();
    install_quiet_hook();
    exit_on_error("forensics", run(&args));
}

/// Silences the default panic report for *injected* tenant panics —
/// caught at the tenant boundary by design; the backtrace banner
/// would only be noise.
fn install_quiet_hook() {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected tenant panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected tenant panic"));
        if !injected {
            prev(info);
        }
    }));
}

/// The canonical forensics world: three heterogeneous small-grid
/// tenants, recorder on, fast supervision so the whole
/// panic → quarantine → recovery arc fits a short run.
fn canonical_spec() -> FleetWorldSpec {
    let tenants = (0..3)
        .map(|i| TenantWorldSpec {
            name: format!("tenant-{i}"),
            cols: 2,
            rows: 2,
            spacing: 150.0,
            pattern: (i * 2) % 5,
            hidden: 16,
            lstm_hidden: 16,
            model_seed: 1000 + i as u64,
            env_seed: 100 + i as u64,
        })
        .collect();
    FleetWorldSpec {
        tenants,
        decision_interval: 5,
        horizon: 1_000_000,
        fleet_seed: 42,
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 2,
            ..Default::default()
        },
        admission_capacity: None,
        flight_capacity: 32,
        flight_cooldown: 8,
        chaos: InfraChaosPlan::new().tenant_panic(Window::new(10, 25), TenantSel::One(1), 1.0),
        load: tsc_serve::LoadPlan::new(),
    }
}

fn run(args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let steps: u64 = if args.smoke { 40 } else { 60 };
    let incident_paths: Vec<PathBuf> = if args.positional().is_empty() {
        capture(steps, args)?
    } else {
        args.positional().iter().map(PathBuf::from).collect()
    };
    if incident_paths.is_empty() {
        return Err("capture phase dumped no incidents".into());
    }

    println!("replaying {} incident(s):", incident_paths.len());
    let mut reports = Vec::new();
    let mut dirty = 0usize;
    for path in &incident_paths {
        let incident = read_incident(path)?;
        let report = replay_incident(&incident)?;
        println!(
            "  {} tenant={} trigger={} step={} frames={} -> {}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            incident.tenant_name,
            incident.trigger.as_str(),
            incident.step,
            report.captured_frames,
            if report.clean() {
                "clean (bit-for-bit)".to_string()
            } else {
                dirty += 1;
                format!("DIVERGED ({} mismatches)", report.mismatches.len())
            }
        );
        reports.push((path.clone(), incident, report));
    }

    if args.json {
        let incidents = reports
            .iter()
            .map(|(path, incident, report)| {
                Json::obj([
                    ("path", Json::str(path.display().to_string())),
                    ("tenant", Json::str(&incident.tenant_name)),
                    ("trigger", Json::str(incident.trigger.as_str())),
                    ("step", Json::num(incident.step as f64)),
                    ("report", report.to_json()),
                ])
            })
            .collect();
        let report = Json::obj([
            ("bench", Json::str("forensics")),
            ("steps", Json::num(steps as f64)),
            ("incidents", Json::Arr(incidents)),
            ("clean", Json::Bool(dirty == 0)),
        ]);
        args.write_report_if_json("BENCH_forensics.json", &report)?;
    }

    if dirty > 0 {
        return Err(format!("{dirty} incident replay(s) diverged").into());
    }
    println!("all replays clean: captured incidents reproduce bit-for-bit");
    Ok(())
}

/// The capture phase: run the canonical world under chaos with an
/// incident directory attached; return the incident files it dumped.
fn capture(steps: u64, args: &BenchArgs) -> Result<Vec<PathBuf>, Box<dyn std::error::Error>> {
    let dir = repo_root().join("results").join("incidents");
    std::fs::create_dir_all(&dir)?;
    // Stale incidents from previous runs would double-count below.
    for entry in std::fs::read_dir(&dir)? {
        let p = entry?.path();
        if p.extension().is_some_and(|e| e == "jsonl") {
            std::fs::remove_file(p)?;
        }
    }
    let spec = canonical_spec();
    let (mut fleet, mut envs) = spec.build()?;
    fleet.set_incident_dir(dir.clone());
    spec.run(&mut fleet, &mut envs, steps)?;

    let health = fleet.flight_health();
    println!(
        "capture: {} steps, {} frames recorded, {} incidents dumped (last: {:?})",
        steps, health.frames_recorded, health.incidents_dumped, health.last_trigger
    );
    let triggers: Vec<FlightTrigger> = fleet.take_incidents().iter().map(|i| i.trigger).collect();
    if !triggers.contains(&FlightTrigger::Panic) {
        return Err("the chaos window must dump a panic-triggered incident".into());
    }
    if fleet.tenant_stats(1).quarantines == 0 {
        return Err("the chaos window must drive the faulty tenant into quarantine".into());
    }
    if args.json {
        write_prometheus("BENCH_forensics.prom", &fleet.exposition().prometheus)?;
        println!("wrote BENCH_forensics.prom");
    }
    Ok(fleet.incident_paths().to_vec())
}
