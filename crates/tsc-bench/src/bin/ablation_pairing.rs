//! Pairing-rule ablation (DESIGN.md §4.4): does it matter *who* each
//! intersection talks to? Trains PairUpLight with the paper's
//! most-congested-upstream rule against a self-loop and a random
//! upstream partner, on the turning-heavy Pattern 2.

use pairuplight::{PairUpLight, PairUpLightConfig, PairingMode};
use tsc_bench::experiments::{self, ExperimentScale};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("pairing ablation at scale {scale:?}");
    let run = || -> Result<Vec<(String, f64, f64)>, tsc_sim::SimError> {
        let grid = Grid::build(GridConfig {
            cols: scale.grid,
            rows: scale.grid,
            spacing: 200.0,
        })?;
        let scenario = patterns::grid_scenario(&grid, FlowPattern::Two, &PatternConfig::default())?;
        let mut rows = Vec::new();
        for (name, mode) in [
            ("congested-upstream (paper)", PairingMode::CongestedUpstream),
            ("self-loop", PairingMode::SelfLoop),
            ("random-upstream", PairingMode::RandomUpstream),
        ] {
            let mut env = TscEnv::new(
                scenario.clone(),
                SimConfig::default(),
                EnvConfig {
                    decision_interval: 5,
                    episode_horizon: scale.train_horizon,
                },
                scale.seed,
            )?;
            let mut cfg = PairUpLightConfig {
                pairing: mode,
                hidden: scale.hidden,
                lstm_hidden: scale.hidden,
                seed: scale.seed,
                eps_decay_episodes: (scale.episodes / 2).max(1),
                ..Default::default()
            };
            cfg.ppo.epochs = 2;
            let mut model = PairUpLight::new(&env, cfg);
            eprintln!("training {name} …");
            let mut best = f64::INFINITY;
            let mut last = f64::NAN;
            for i in 0..scale.episodes {
                let ep = model.train_episode(&mut env, scale.seed + i as u64)?;
                best = best.min(ep.stats.avg_waiting_time);
                last = ep.stats.avg_waiting_time;
                if i % 10 == 0 {
                    eprintln!(
                        "  episode {:>3}: wait {:>7.2}s",
                        i, ep.stats.avg_waiting_time
                    );
                }
            }
            rows.push((name.to_string(), best, last));
        }
        Ok(rows)
    };
    match run() {
        Ok(rows) => {
            println!("\nPAIRING-RULE ABLATION (Pattern 2, avg waiting time)");
            println!(
                "{:<30}{:>12}{:>12}",
                "Pairing rule", "best (s)", "final (s)"
            );
            let mut csv = String::from("pairing,best_wait,final_wait\n");
            for (name, best, last) in &rows {
                println!("{name:<30}{best:>12.2}{last:>12.2}");
                csv.push_str(&format!("{name},{best:.2},{last:.2}\n"));
            }
            match experiments::write_result("ablation_pairing.csv", &csv) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("ablation_pairing failed: {e}");
            std::process::exit(1);
        }
    }
}
