//! Regenerates Fig. 10: training performance on the Monaco-style
//! heterogeneous network (no parameter sharing) — PairUpLight vs MA2C,
//! with the FixedTime reference level.

use tsc_bench::experiments::{self, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Fig. 10 at scale {scale:?}");
    match experiments::monaco_training(&scale) {
        Ok((curves, fixed)) => {
            println!("\nFIG. 10 — TRAINING UNDER THE REAL-WORLD-STYLE SETTING (MONACO)");
            println!("FixedTime reference waiting time: {fixed:.2}s");
            for c in &curves {
                println!(
                    "  {:<24} final {:>8.2}s  best {:>8.2}s",
                    c.model,
                    c.final_wait().unwrap_or(f64::NAN),
                    c.best().map(|b| b.1).unwrap_or(f64::NAN)
                );
            }
            let csv = experiments::curves_to_csv(&curves);
            print!("\n{csv}");
            match experiments::write_result("fig10.csv", &csv) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig10 failed: {e}");
            std::process::exit(1);
        }
    }
}
