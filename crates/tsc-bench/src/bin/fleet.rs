//! Multi-tenant serving fleet under supervision: aggregate throughput,
//! per-tenant latency, and fault/recovery behavior across three
//! regimes.
//!
//! Each tenant is an independent `ServeRuntime` (own grid, own flow
//! pattern, own checkpoint) behind the `FleetRuntime` supervisor. The
//! bench drives the whole fleet step-by-step through three regimes:
//!
//! 1. **clean** — no deadline pressure, no injected faults; the
//!    baseline cost of supervision.
//! 2. **overload** — a tight per-step deadline plus injected latency
//!    spikes, exercising the deadline fallback and the circuit
//!    breaker's trip → backoff → probation → close cycle.
//! 3. **infra-chaos** — injected tenant panics (one tenant with a
//!    valid checkpoint, so quarantine → reload → recovery completes),
//!    permanently corrupted reloads on another (budget exhaustion,
//!    parked in quarantine), latency spikes, and a reload storm.
//!
//! The infra-chaos regime runs twice and asserts a bit-identical step
//! digest — the supervised fleet inherits the chaos engine's replay
//! guarantee. The bench also asserts that the process never aborts
//! (every injected panic is caught at the tenant boundary) and that at
//! least one full quarantine → recovery cycle completed.
//!
//! Usage: `fleet [--json] [--smoke] [--scenario <name-or-path>]
//! [steps]` (default steps: 400; `--smoke` shrinks the fleet and run
//! for CI; `--json` also writes `BENCH_fleet.json` and the live
//! Prometheus exposition `BENCH_fleet.prom` at the repo root).
//! With `--scenario` every tenant serves the compiled world instead
//! of the alternating grids.

use std::panic;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::{write_prometheus, Json};
use tsc_bench::world::resolve_scenario;
use tsc_scenario::CompiledScenario;
use tsc_serve::{
    FleetConfig, FleetRuntime, FlightConfig, InfraChaosPlan, ServeConfig, SupervisorConfig,
    TenantSel, TenantSpec, TenantState,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv, Window};

const SEED: u64 = 42;

fn main() {
    let args = BenchArgs::parse();
    let steps = args.pos_or(0, if args.smoke { 120usize } else { 400 });
    install_quiet_hook();
    exit_on_error("fleet bench", run(steps, &args));
}

/// Silences the default panic report for *injected* tenant panics —
/// they are caught at the tenant boundary and counted, so the stderr
/// backtrace banner would only be noise. Every other panic still goes
/// through the previous hook untouched.
fn install_quiet_hook() {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected tenant panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected tenant panic"));
        if !injected {
            prev(info);
        }
    }));
}

/// One tenant's fixed identity across every regime.
struct TenantSetup {
    name: String,
    grid: String,
    env: TscEnv,
    model: PairUpLight,
    checkpoint: PathBuf,
}

/// A heterogeneous fleet: alternating 2×2 / 3×3 grids, flow patterns
/// cycling through the paper's five, every tenant with a valid
/// checkpoint on disk (the reload path the supervisor recovers from).
/// With a compiled world, every tenant serves that world instead.
fn build_tenants(
    n: usize,
    world: Option<&CompiledScenario>,
) -> Result<Vec<TenantSetup>, Box<dyn std::error::Error>> {
    let patterns = FlowPattern::ALL;
    let mut out = Vec::new();
    for i in 0..n {
        // Generous horizon: the bench drives well under this many
        // decision steps, so episodes never terminate.
        let env_cfg = EnvConfig {
            decision_interval: 5,
            episode_horizon: 1_000_000,
        };
        let size = if i % 2 == 0 { 2 } else { 3 };
        let (name, grid_label, env) = match world {
            Some(compiled) => (
                format!("tenant-{i}-{}", compiled.scenario.name),
                compiled.scenario.name.clone(),
                compiled.env(SimConfig::default(), env_cfg, SEED)?,
            ),
            None => {
                let grid = Grid::build(GridConfig {
                    cols: size,
                    rows: size,
                    spacing: 150.0,
                })?;
                let pattern = patterns[i % patterns.len()];
                let f = flows(&grid, pattern, &PatternConfig::default())?;
                let scenario = grid.scenario("fleet-bench", f)?;
                (
                    format!("tenant-{i}-{pattern:?}"),
                    format!("{size}x{size}"),
                    TscEnv::new(scenario, SimConfig::default(), env_cfg, SEED)?,
                )
            }
        };
        let model = PairUpLight::new(
            &env,
            PairUpLightConfig {
                hidden: 16,
                lstm_hidden: 16,
                ..Default::default()
            },
        );
        let checkpoint = std::env::temp_dir().join(format!("tsc_fleet_bench_{i}.ckpt"));
        model.save_checkpoint(&checkpoint, SEED)?;
        out.push(TenantSetup {
            name,
            grid: grid_label,
            env,
            model,
            checkpoint,
        });
    }
    Ok(out)
}

fn specs_for(tenants: &[TenantSetup], serve_cfg: ServeConfig) -> Vec<TenantSpec> {
    tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.name.clone(),
            snapshot: t.model.policy_snapshot(),
            serve_cfg,
            checkpoint: Some(t.checkpoint.clone()),
            sla: Default::default(),
        })
        .collect()
}

struct RegimeOutcome {
    /// FNV fold of every step digest — the replay fingerprint.
    digest: u64,
    /// Aggregate policy decisions per second of fleet-step wall time.
    decisions_per_sec: f64,
    rows: Vec<Json>,
    human: Vec<String>,
    recoveries: u64,
    final_states: Vec<TenantState>,
}

/// Drives `fleet` for `steps`, each tenant on its own environment
/// (tenant `i` reset with seed `100 + i`), and folds per-tenant
/// metrics into report rows.
fn run_regime(
    fleet: &mut FleetRuntime,
    tenants: &mut [TenantSetup],
    steps: usize,
) -> Result<RegimeOutcome, Box<dyn std::error::Error>> {
    let mut obs: Vec<_> = tenants
        .iter_mut()
        .enumerate()
        .map(|(i, t)| t.env.reset(100 + i as u64))
        .collect();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut serve_time = Duration::ZERO;
    let mut decisions: u64 = 0;
    for _ in 0..steps {
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let t0 = Instant::now();
        let out = fleet.step(&views)?;
        serve_time += t0.elapsed();
        digest = (digest ^ out.digest()).wrapping_mul(0x0000_0100_0000_01b3);
        for (i, (ts, tenant)) in out.tenants.iter().zip(tenants.iter_mut()).enumerate() {
            decisions += ts.actions.len() as u64;
            let step = tenant.env.step(&ts.actions)?;
            obs[i] = if step.done {
                tenant.env.reset(200 + i as u64)
            } else {
                step.obs
            };
        }
    }

    let mut rows = Vec::new();
    let mut human = Vec::new();
    let mut recoveries = 0;
    let mut final_states = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let stats = fleet.tenant_stats(t);
        let hist = fleet.tenant_step_latency(t);
        let tel = fleet.tenant_telemetry(t);
        let state = fleet.tenant_state(t);
        let q_steps = stats.state_steps[TenantState::Quarantined.index()];
        let quarantine_rate = q_steps as f64 / stats.steps.max(1) as f64;
        let standby_rate = stats.standby_steps as f64 / stats.steps.max(1) as f64;
        let recovery_ticks = (stats.recoveries > 0)
            .then(|| stats.recovery_ticks_total as f64 / stats.recoveries as f64);
        recoveries += stats.recoveries;
        final_states.push(state);
        human.push(format!(
            "{:<18} {:<6} {:>9.1} {:>9.1} {:>9.1} {:>8.1}% {:>8.1}% {:>7} {:>6} {:>5} {:>11}",
            tenant.name,
            tenant.grid,
            hist.percentile_us(0.50),
            hist.percentile_us(0.95),
            hist.percentile_us(0.99),
            tel.fallback_rate() * 100.0,
            quarantine_rate * 100.0,
            stats.panics,
            stats.breaker_trips,
            stats.recoveries,
            format!("{state:?}"),
        ));
        rows.push(Json::obj([
            ("name", Json::str(&tenant.name)),
            ("grid", Json::str(&tenant.grid)),
            ("state", Json::str(format!("{state:?}"))),
            ("p50_us", Json::num(hist.percentile_us(0.50))),
            ("p95_us", Json::num(hist.percentile_us(0.95))),
            ("p99_us", Json::num(hist.percentile_us(0.99))),
            ("fallback_rate", Json::num(tel.fallback_rate())),
            ("standby_rate", Json::num(standby_rate)),
            ("quarantine_rate", Json::num(quarantine_rate)),
            ("panics", Json::num(stats.panics as f64)),
            ("breaker_trips", Json::num(stats.breaker_trips as f64)),
            ("breaker_closes", Json::num(stats.breaker_closes as f64)),
            ("quarantines", Json::num(stats.quarantines as f64)),
            ("recoveries", Json::num(stats.recoveries as f64)),
            ("reload_attempts", Json::num(stats.reload_attempts as f64)),
            (
                "recovery_latency_ticks",
                recovery_ticks.map_or(Json::Null, Json::num),
            ),
        ]));
    }
    Ok(RegimeOutcome {
        digest,
        decisions_per_sec: decisions as f64 / serve_time.as_secs_f64().max(1e-9),
        rows,
        human,
        recoveries,
        final_states,
    })
}

fn print_regime(regime: &str, out: &RegimeOutcome) {
    println!(
        "\n[{regime}] aggregate {:.0} decisions/s",
        out.decisions_per_sec
    );
    println!(
        "{:<18} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>5} {:>11}",
        "tenant",
        "grid",
        "p50 us",
        "p95 us",
        "p99 us",
        "fallback",
        "quarant",
        "panics",
        "trips",
        "recov",
        "state"
    );
    for line in &out.human {
        println!("{line}");
    }
}

fn regime_json(regime: &str, out: &RegimeOutcome) -> Json {
    Json::obj([
        ("regime", Json::str(regime)),
        ("decisions_per_sec", Json::num(out.decisions_per_sec)),
        ("replay_digest", Json::str(format!("{:016x}", out.digest))),
        ("tenants", Json::Arr(out.rows.clone())),
    ])
}

/// The infra-chaos schedule: tenant 0 panics over an early window but
/// reloads from its valid checkpoint (a guaranteed full recovery
/// cycle); tenant 1 panics once and then every reload is corrupted
/// (budget exhaustion, parked in quarantine); everyone sees latency
/// spikes; the last tenant rides a reload storm.
fn infra_plan(n: usize) -> InfraChaosPlan {
    InfraChaosPlan::new()
        .tenant_panic(Window::new(0, 3), TenantSel::One(0), 1.0)
        .tenant_panic(Window::new(0, 1), TenantSel::One(1 % n), 1.0)
        .reload_corrupt(Window::always(), TenantSel::One(1 % n), 1.0)
        .latency_spike(Window::always(), TenantSel::All, 400, 0.2)
        .reload_storm(Window::always(), TenantSel::One(n - 1), 50)
}

fn run(steps: usize, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let n = if args.smoke { 3 } else { 6 };
    let world = resolve_scenario(args, SEED)?;
    let mut tenants = build_tenants(n, world.as_ref())?;
    let fleet_label = match &world {
        Some(c) => format!("{} ({})", c.scenario.name, c.fingerprint_hex()),
        None => "alternating 2x2/3x3".into(),
    };
    println!(
        "fleet bench: {n} tenants ({fleet_label}), {steps} fleet steps per regime, seed {SEED}"
    );

    // Regime 1: clean. No faults, no deadline — supervision at rest.
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: SEED,
            ..Default::default()
        },
        specs_for(&tenants, ServeConfig::default()),
    );
    let clean = run_regime(&mut fleet, &mut tenants, steps)?;
    print_regime("clean", &clean);
    assert!(
        clean.recoveries == 0
            && clean
                .final_states
                .iter()
                .all(|&s| s == TenantState::Healthy),
        "clean regime must stay healthy"
    );

    // Regime 2: overload. Tight deadline + latency spikes — the
    // breaker trips on real deadline overruns and closes again after
    // probation.
    let overload_cfg = ServeConfig {
        deadline: Some(Duration::from_micros(250)),
        ..Default::default()
    };
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: SEED,
            ..Default::default()
        },
        specs_for(&tenants, overload_cfg),
    );
    fleet.set_infra_chaos(InfraChaosPlan::new().latency_spike(
        Window::always(),
        TenantSel::All,
        2_000,
        0.7,
    ))?;
    let overload = run_regime(&mut fleet, &mut tenants, steps)?;
    print_regime("overload", &overload);

    // Regime 3: infra chaos, twice — the second run must replay the
    // first bit-for-bit.
    let infra_supervisor = SupervisorConfig {
        backoff_base: 1,
        backoff_max: 2,
        ..Default::default()
    };
    // The flight recorder rides along (observation-only: the replay
    // digest below proves recording never perturbs decisions) so the
    // live exposition carries real flight health.
    let mut outs = Vec::new();
    let mut exposition = None;
    for _ in 0..2 {
        let mut fleet = FleetRuntime::new(
            FleetConfig {
                supervisor: infra_supervisor,
                seed: SEED,
                flight: Some(FlightConfig::default()),
                ..Default::default()
            },
            specs_for(&tenants, ServeConfig::default()),
        );
        fleet.set_infra_chaos(infra_plan(n))?;
        outs.push(run_regime(&mut fleet, &mut tenants, steps)?);
        exposition = Some(fleet.exposition());
    }
    let infra_replay = outs.pop().expect("second infra run");
    let infra = outs.pop().expect("first infra run");
    print_regime("infra-chaos", &infra);
    assert_eq!(
        infra.digest, infra_replay.digest,
        "infra-chaos regime must replay bit-for-bit under the same seed and plan"
    );
    assert!(
        infra.recoveries >= 1,
        "at least one quarantine -> reload -> recovery cycle must complete"
    );
    assert_eq!(
        infra.final_states[1 % n],
        TenantState::Quarantined,
        "the permanently-corrupt tenant must stay quarantined"
    );
    println!(
        "\ninfra-chaos replay digest {:016x} reproduced; {} recovery cycle(s) completed; \
         no process abort",
        infra.digest, infra.recoveries
    );

    let report = Json::obj([
        ("bench", Json::str("fleet")),
        ("tenants", Json::num(n as f64)),
        ("steps_per_regime", Json::num(steps as f64)),
        ("smoke", Json::Bool(args.smoke)),
        ("seed", Json::num(SEED as f64)),
        (
            "regimes",
            Json::Arr(vec![
                regime_json("clean", &clean),
                regime_json("overload", &overload),
                regime_json("infra_chaos", &infra),
            ]),
        ),
        ("infra_replay_digest_match", Json::Bool(true)),
        ("infra_recovery_cycles", Json::num(infra.recoveries as f64)),
        (
            "flight",
            exposition
                .as_ref()
                .map(|e| e.summary.clone())
                .unwrap_or(Json::Null),
        ),
    ]);
    args.write_report_if_json("BENCH_fleet.json", &report)?;
    if args.json {
        if let Some(e) = &exposition {
            write_prometheus("BENCH_fleet.prom", &e.prometheus)?;
            println!("wrote BENCH_fleet.prom");
        }
    }

    for t in &tenants {
        std::fs::remove_file(&t.checkpoint).ok();
    }
    Ok(())
}
