//! Human-readable summaries of `tsc-obs` run JSONL streams.
//!
//! A training run instrumented with `PairUpLight::attach_obs` (or a
//! serving run with `ServeRuntime::attach_obs`) streams one JSON
//! record per line. This tool turns that stream back into tables:
//! the manifest, the per-update training curve, event counts
//! (divergences, rollbacks, worker-panic retries, checkpoints), and
//! serve-step latency. Torn tails and bad lines are reported, never
//! fatal — the whole point is to inspect runs that are still writing
//! or that died mid-line.
//!
//! Usage:
//!   `obs_report <run.jsonl>`            summarize a run
//!   `obs_report --follow <run.jsonl>`   tail a live run (poll + print)
//!   `obs_report --csv <run.jsonl>`      re-derived metrics as CSV
//!   `obs_report --prom <run.jsonl>`     re-derived metrics as Prometheus text
//!   `obs_report --smoke`                self-contained CI gate: run a tiny
//!                                       instrumented training, verify the
//!                                       stream, summarize it, exit 0
//!   `obs_report --spans`                run a tiny span-instrumented
//!                                       training + observe pass and print the
//!                                       flamegraph-style span JSON
//!                                       (`span::report_json`) plus a table
//!
//! `--tail N` limits the update table to the last `N` rows (default 10).

use std::path::{Path, PathBuf};
use std::time::Duration;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_obs::{parse_jsonl, Json, JsonlWarning, MetricsRegistry};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() {
    let mut follow = false;
    let mut smoke = false;
    let mut spans = false;
    let mut csv = false;
    let mut prom = false;
    let mut tail: usize = 10;
    let mut path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--smoke" => smoke = true,
            "--spans" => spans = true,
            "--csv" => csv = true,
            "--prom" => prom = true,
            "--tail" => {
                tail = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--tail needs a number"));
            }
            other if !other.starts_with('-') => path = Some(PathBuf::from(other)),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let result = if smoke {
        run_smoke()
    } else if spans {
        run_spans()
    } else {
        let path = path.unwrap_or_else(|| usage("missing <run.jsonl> path"));
        if follow {
            run_follow(&path)
        } else {
            run_summary(&path, tail, csv, prom)
        }
    };
    if let Err(e) = result {
        eprintln!("obs_report failed: {e}");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("obs_report: {msg}");
    eprintln!(
        "usage: obs_report [--follow|--csv|--prom] [--tail N] <run.jsonl> | --smoke | --spans"
    );
    std::process::exit(2);
}

/// Reads the stream, reporting (not failing on) torn tails.
fn read_stream(path: &Path) -> Result<(Vec<Json>, Vec<JsonlWarning>), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(parse_jsonl(&text))
}

/// Rebuilds a metrics registry from the event stream, so the exporters
/// work on any run file without needing the in-process registry.
fn registry_from(records: &[Json]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for r in records {
        match r.get_str("type") {
            Some("update") => {
                reg.inc("train.updates");
                reg.add(
                    "train.episodes",
                    r.get_num("episodes").unwrap_or(0.0) as u64,
                );
                if let Some(us) = r.get_num("update_wall_us") {
                    reg.observe_ns("train.update_wall", (us * 1_000.0) as u64);
                }
                if let Some(v) = r.get_num("mean_reward") {
                    reg.set_gauge("train.mean_reward", v);
                }
                if let Some(v) = r.get_num("mean_wait_s") {
                    reg.set_gauge("train.mean_wait_s", v);
                }
            }
            Some("divergence") => reg.inc("train.divergences"),
            Some("rollback") => reg.inc("train.rollbacks"),
            Some("worker_panic_retry") => reg.inc("train.worker_panic_retries"),
            Some("checkpoint") => reg.inc("train.checkpoints"),
            Some("serve_step") => {
                reg.inc("serve.steps");
                if let Some(us) = r.get_num("latency_us") {
                    reg.observe_ns("serve.step_latency", (us * 1_000.0) as u64);
                }
            }
            _ => {}
        }
    }
    reg
}

fn num(r: &Json, key: &str) -> f64 {
    r.get_num(key).unwrap_or(f64::NAN)
}

fn print_update_header() {
    println!(
        "{:>6} {:>6} {:>10} {:>8} {:>8} {:>9} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "round",
        "ep",
        "reward",
        "queue",
        "wait_s",
        "p_loss",
        "v_loss",
        "kl",
        "clipfrac",
        "gnorm",
        "wall_ms"
    );
}

fn print_update_row(r: &Json) {
    println!(
        "{:>6} {:>6} {:>10.1} {:>8.2} {:>8.1} {:>9.4} {:>8.3} {:>9.5} {:>9.3} {:>8.2} {:>9.1}",
        num(r, "round"),
        num(r, "episode_start"),
        num(r, "mean_reward"),
        num(r, "mean_queue"),
        num(r, "mean_wait_s"),
        num(r, "policy_loss"),
        num(r, "value_loss"),
        num(r, "approx_kl"),
        num(r, "clip_fraction"),
        num(r, "grad_norm"),
        num(r, "update_wall_us") / 1_000.0,
    );
}

fn print_event_line(r: &Json) {
    match r.get_str("type") {
        Some("divergence") => println!(
            "!! divergence at round {} (attempt {}): {}",
            num(r, "round"),
            num(r, "attempt"),
            r.get_str("reason").unwrap_or("?")
        ),
        Some("rollback") => println!(
            "!! rollback of round {} (attempt {}, will_retry={:?})",
            num(r, "round"),
            num(r, "attempt"),
            r.get("will_retry").map(|v| v.compact()).unwrap_or_default()
        ),
        Some("worker_panic_retry") => println!(
            "!! worker panic: round {} env {} retry #{}",
            num(r, "round"),
            num(r, "env"),
            num(r, "retries")
        ),
        Some("checkpoint") => println!(
            "-- checkpoint at round {}: {}",
            num(r, "round"),
            r.get_str("path").unwrap_or("?")
        ),
        _ => {}
    }
}

fn summarize(records: &[Json], warnings: &[JsonlWarning], tail: usize) {
    if let Some(m) = records
        .iter()
        .find(|r| r.get_str("type") == Some("manifest"))
    {
        let build = m.get("build");
        println!(
            "manifest: schema={} fingerprint={} seed={} agents={} params={} build={} ({}, {})",
            m.get_str("schema").unwrap_or("?"),
            m.get_str("fingerprint").unwrap_or("?"),
            m.get_str("seed").unwrap_or("?"),
            num(m, "num_agents"),
            num(m, "num_params"),
            build.and_then(|b| b.get_str("version")).unwrap_or("?"),
            build.and_then(|b| b.get_str("git")).unwrap_or("?"),
            build.and_then(|b| b.get_str("profile")).unwrap_or("?"),
        );
    } else {
        println!("manifest: MISSING");
    }
    for r in records
        .iter()
        .filter(|r| r.get_str("type") == Some("train_start"))
    {
        println!(
            "train_start: base_seed={} episodes={} resume_round={}",
            r.get_str("base_seed").unwrap_or("?"),
            num(r, "episodes"),
            num(r, "resume_round"),
        );
    }
    let updates: Vec<&Json> = records
        .iter()
        .filter(|r| r.get_str("type") == Some("update"))
        .collect();
    println!("updates: {}", updates.len());
    if !updates.is_empty() {
        let skipped = updates.len().saturating_sub(tail);
        print_update_header();
        if skipped > 0 {
            println!("{:>6}", format!("… {skipped} earlier"));
        }
        for r in &updates[skipped..] {
            print_update_row(r);
        }
    }
    for r in records {
        print_event_line(r);
    }
    let serve_steps = records
        .iter()
        .filter(|r| r.get_str("type") == Some("serve_step"))
        .count();
    if serve_steps > 0 {
        let reg = registry_from(records);
        if let Some(h) = reg.histogram("serve.step_latency") {
            println!(
                "serve: {serve_steps} steps, latency p50={:.1}us p99={:.1}us max={:.1}us",
                h.percentile_us(0.50),
                h.percentile_us(0.99),
                h.max_us()
            );
        }
    }
    for w in warnings {
        println!("warning: {w}");
    }
}

fn run_summary(
    path: &Path,
    tail: usize,
    csv: bool,
    prom: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let (records, warnings) = read_stream(path)?;
    if csv || prom {
        let reg = registry_from(&records);
        if csv {
            print!("{}", reg.to_csv());
        }
        if prom {
            print!("{}", reg.to_prometheus());
        }
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        return Ok(());
    }
    summarize(&records, &warnings, tail);
    Ok(())
}

/// Tails a live run: polls the file and prints records as they land.
/// A torn tail (a record the writer is mid-way through) is retried on
/// the next poll rather than reported.
fn run_follow(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let mut seen = 0usize;
    let mut header_printed = false;
    println!("following {} (Ctrl-C to stop)", path.display());
    loop {
        if path.exists() {
            let (records, _warnings) = read_stream(path)?;
            for r in &records[seen.min(records.len())..] {
                match r.get_str("type") {
                    Some("update") => {
                        if !header_printed {
                            print_update_header();
                            header_printed = true;
                        }
                        print_update_row(r);
                    }
                    Some("manifest") => println!(
                        "manifest: fingerprint={} seed={}",
                        r.get_str("fingerprint").unwrap_or("?"),
                        r.get_str("seed").unwrap_or("?")
                    ),
                    Some("summary") => {
                        println!("run finished (summary record seen)");
                        return Ok(());
                    }
                    _ => print_event_line(r),
                }
            }
            seen = records.len();
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// Runs a tiny span-instrumented training round plus an observation
/// pass and prints the span call tree — first as the flamegraph-style
/// JSON from `span::report_json` (fold `self_ns` up the `parent`
/// chain to reconstruct the flame stacks), then as a human table. The
/// event-core `sim.observe_all` span must be present and measurable.
fn run_spans() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 200.0,
    })?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let mut env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 150,
        },
        0,
    )?;
    let cfg = PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    };
    let mut model = PairUpLight::new(&env, cfg);
    tsc_obs::span::reset();
    tsc_obs::span::set_enabled(true);
    model.train(&mut env, 3, 0, |_| {})?;
    tsc_obs::span::set_enabled(false);

    let json = tsc_obs::span::report_json();
    println!("{}", json.pretty());
    println!();
    println!(
        "{:>10} {:>12} {:>12}  span (parent)",
        "count", "total_ms", "self_ms"
    );
    let tree = tsc_obs::span::report_tree();
    for node in &tree {
        println!(
            "{:>10} {:>12.3} {:>12.3}  {} ({})",
            node.stat.count,
            node.stat.total_ns as f64 / 1e6,
            node.stat.self_ns as f64 / 1e6,
            node.name,
            node.parent.unwrap_or("root"),
        );
    }
    // `sim.observe_all` can appear under several parents (reset and
    // step paths) — sum its edges for the gate.
    let (count, total_ns) = tree
        .iter()
        .filter(|n| n.name == "sim.observe_all")
        .fold((0u64, 0u64), |(c, t), n| {
            (c + n.stat.count, t + n.stat.total_ns)
        });
    if count == 0 || total_ns == 0 {
        return Err("sim.observe_all span missing or recorded no time".into());
    }
    println!(
        "\nspan report OK: {} edges, sim.observe_all x{count} ({:.3} ms total)",
        tree.len(),
        total_ns as f64 / 1e6
    );
    Ok(())
}

/// CI gate: a tiny instrumented training run must produce a parseable
/// stream with a manifest and one update record per round, and the
/// summarizer must handle it.
fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    const EPISODES: usize = 5;
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 200.0,
    })?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let mut env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 150,
        },
        0,
    )?;
    let cfg = PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    };
    let mut model = PairUpLight::new(&env, cfg);
    let path = std::env::temp_dir().join(format!("tsc-obs-smoke-{}.jsonl", std::process::id()));
    model.attach_obs(tsc_obs::EventSink::create(&path)?);
    model.train(&mut env, EPISODES, 0, |_| {})?;
    let metrics = model.finish_obs().expect("logger was attached");

    let (records, warnings) = read_stream(&path)?;
    if !warnings.is_empty() {
        return Err(format!("stream has warnings: {warnings:?}").into());
    }
    if records.first().map(|r| r.get_str("type")) != Some(Some("manifest")) {
        return Err("first record is not the manifest".into());
    }
    let updates = records
        .iter()
        .filter(|r| r.get_str("type") == Some("update"))
        .count();
    if updates < EPISODES {
        return Err(format!("expected >= {EPISODES} update records, found {updates}").into());
    }
    if metrics.counter("train.updates") != updates as u64 {
        return Err("registry counter disagrees with the stream".into());
    }
    summarize(&records, &warnings, 10);
    println!(
        "obs smoke OK: {} records, {updates} updates, stream parses clean",
        records.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
