//! Regenerates Fig. 11: communication bandwidth study — training with
//! one vs two 32-bit messages. The paper finds that widening the
//! channel does not help.

use tsc_bench::experiments::{self, ExperimentScale};
use tsc_bench::ModelKind;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Fig. 11 at scale {scale:?}");
    let kinds = [
        ModelKind::PairUpLightBandwidth(1),
        ModelKind::PairUpLightBandwidth(2),
    ];
    match experiments::training_curves(&scale, &kinds) {
        Ok(curves) => {
            println!("\nFIG. 11 — COMMUNICATION BANDWIDTH COMPARISON (avg waiting time, s)");
            for c in &curves {
                println!(
                    "  {:<24} final {:>8.2}s  best {:>8.2}s",
                    c.model,
                    c.final_wait().unwrap_or(f64::NAN),
                    c.best().map(|b| b.1).unwrap_or(f64::NAN)
                );
            }
            let csv = experiments::curves_to_csv(&curves);
            print!("\n{csv}");
            match experiments::write_result("fig11.csv", &csv) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
