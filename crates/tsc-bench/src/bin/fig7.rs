//! Regenerates Fig. 7: PairUpLight's training curve (average waiting
//! time per episode) with the FixedTime reference level.

use tsc_bench::experiments::{self, ExperimentScale};
use tsc_bench::ModelKind;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Fig. 7 at scale {scale:?}");
    let run = || -> Result<(), tsc_sim::SimError> {
        let fixed = experiments::fixed_time_reference(&scale)?;
        let curves = experiments::training_curves(&scale, &[ModelKind::PairUpLight])?;
        println!("\nFIG. 7 — PAIRUPLIGHT TRAINING PERFORMANCE");
        println!("FixedTime reference waiting time: {fixed:.2}s");
        if let Some((ep, wait)) = curves[0].best() {
            println!("best performance at episode {ep} with {wait:.2}s waiting time");
        }
        println!("\nepisode, avg_waiting_time(s)");
        for p in &curves[0].points {
            println!("{:>5}, {:.3}", p.episode, p.avg_waiting_time);
        }
        let csv = experiments::curves_to_csv(&curves);
        match experiments::write_result("fig7.csv", &csv) {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write results: {e}"),
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("fig7 failed: {e}");
        std::process::exit(1);
    }
}
