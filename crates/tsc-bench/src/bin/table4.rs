//! Regenerates Table IV: per-step communication overhead of MA2C,
//! CoLight and PairUpLight, computed from what each implemented model
//! actually pulls from other intersections.

use tsc_bench::experiments;

fn main() {
    // local_dim = 32 (4 approaches x [count, halting, 3 per-movement
    // halts, wait] + 4 outgoing counts + 4-phase one-hot), max_phases =
    // 4 — the defaults used by every model in this repository.
    let rows = experiments::table4(32, 4);
    println!("\nTABLE IV — COMMUNICATION OVERHEAD ANALYSIS\n");
    println!("{}", experiments::render_table4(&rows));
    let mut csv = String::from("model,bits_this_impl,bits_paper,information\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},\"{}\"\n",
            r.model, r.bits, r.paper_bits, r.information
        ));
    }
    match experiments::write_result("table4.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
