//! Regenerates Table II: average travel time of all five models across
//! flow patterns 1–5, trained on Pattern 1 only.

use tsc_bench::experiments::{self, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Table II at scale {scale:?}");
    match experiments::table2(&scale) {
        Ok(table) => {
            println!("\nTABLE II — EVALUATION OF AVERAGE TRAVEL TIME (SECONDS)");
            println!(
                "(all models trained on Pattern 1 for {} episodes)\n",
                scale.episodes
            );
            println!("{}", table.render());
            match experiments::write_result("table2.csv", &table.to_csv()) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
