//! Serving throughput and latency of the `tsc-serve` runtime.
//!
//! Drives the paper's 6×6 grid under all five flow patterns with the
//! batched tape-free serving path: one checkpoint is written and
//! loaded through the full `ServeRuntime::from_checkpoint` pipeline,
//! then each pattern runs one complete episode and reports decisions
//! per second, latency p50/p95/p99 (streaming histogram), and the
//! fallback rate (0 unless a deadline is set). Weights are freshly
//! initialized — serving cost does not depend on their values.
//!
//! Usage: `serve_grid [--json] [--smoke] [--scenario <name-or-path>]
//! [horizon_seconds]` (default horizon: 300; `--smoke` shrinks the
//! nets and horizon for CI; `--json` also writes `BENCH_serve.json`
//! at the repo root). With `--scenario` the episode runs on the
//! compiled world instead of the five grid patterns.

use std::time::Instant;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_bench::world::resolve_scenario;
use tsc_serve::{ServeConfig, ServeRuntime};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::Scenario;
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() {
    let args = BenchArgs::parse();
    let horizon = args.pos_or(0, if args.smoke { 60 } else { 300 });
    exit_on_error("serve_grid", run(horizon, &args));
}

fn run(horizon: u32, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let smoke = args.smoke;
    let env_cfg = EnvConfig {
        decision_interval: 5,
        episode_horizon: horizon,
    };
    // Worlds to serve: the five grid patterns by default, or the one
    // compiled world when `--scenario` is given.
    let (label, worlds): (String, Vec<(String, Scenario)>) = match resolve_scenario(args, 0)? {
        Some(compiled) => (
            format!(
                "{} ({})",
                compiled.scenario.name,
                compiled.fingerprint_hex()
            ),
            vec![(compiled.scenario.name.clone(), compiled.scenario)],
        ),
        None => {
            let grid = Grid::build(GridConfig::default())?;
            let worlds = FlowPattern::ALL
                .into_iter()
                .map(|p| {
                    patterns::grid_scenario(&grid, p, &PatternConfig::default())
                        .map(|s| (format!("{p:?}"), s))
                })
                .collect::<Result<Vec<_>, _>>()?;
            ("6x6 grid".into(), worlds)
        }
    };
    let cfg = if smoke {
        PairUpLightConfig {
            hidden: 16,
            lstm_hidden: 16,
            ..Default::default()
        }
    } else {
        PairUpLightConfig::default()
    };

    // One checkpoint through the full load path; per-pattern runtimes
    // are built from the validated snapshot.
    let env = TscEnv::new(worlds[0].1.clone(), SimConfig::default(), env_cfg, 0)?;
    let model = PairUpLight::new(&env, cfg);
    let ck = std::env::temp_dir().join("tsc_serve_grid_bench.ckpt");
    model.save_checkpoint(&ck, 0)?;
    let t = Instant::now();
    let loaded = ServeRuntime::from_checkpoint(&env, cfg, ServeConfig::default(), &ck)?;
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    let snapshot = loaded.policy().clone();
    std::fs::remove_file(&ck).ok();

    println!(
        "serve_grid: {label} ({} agents), horizon {horizon}s, {} decision steps/world, \
         batched={}, checkpoint load {load_ms:.1}ms",
        env.num_agents(),
        env.steps_per_episode(),
        snapshot.shared(),
    );
    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "pattern", "steps", "decisions/s", "p50 us", "p95 us", "p99 us", "fallback"
    );

    let mut rows = Vec::new();
    for (name, scenario) in &worlds {
        let mut env = TscEnv::new(scenario.clone(), SimConfig::default(), env_cfg, 0)?;
        let mut serve = ServeRuntime::new(snapshot.clone(), ServeConfig::default());
        env.run_episode(&mut serve, 0)?;
        let t = serve.telemetry();
        println!(
            "{:<10} {:>7} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>8.1}%",
            name,
            t.steps(),
            t.decisions_per_sec(),
            t.p50_us(),
            t.p95_us(),
            t.p99_us(),
            t.fallback_rate() * 100.0,
        );
        rows.push(Json::obj([
            ("pattern", Json::str(name.clone())),
            ("steps", Json::num(t.steps() as f64)),
            ("decisions", Json::num(t.decisions() as f64)),
            ("decisions_per_sec", Json::num(t.decisions_per_sec())),
            ("p50_us", Json::num(t.p50_us())),
            ("p95_us", Json::num(t.p95_us())),
            ("p99_us", Json::num(t.p99_us())),
            ("mean_us", Json::num(t.mean_us())),
            ("max_us", Json::num(t.max_us())),
            ("fallback_rate", Json::num(t.fallback_rate())),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("serve_grid")),
        ("grid", Json::str(label)),
        ("agents", Json::num(env.num_agents() as f64)),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("steps_per_world", Json::num(env.steps_per_episode() as f64)),
        ("batched", Json::Bool(snapshot.shared())),
        ("smoke", Json::Bool(smoke)),
        ("checkpoint_load_ms", Json::num(load_ms)),
        ("patterns", Json::Arr(rows)),
    ]);
    args.write_report_if_json("BENCH_serve.json", &report)?;
    Ok(())
}
