//! Regenerates Fig. 8: training performance over the first episodes for
//! PairUpLight, CoLight, MA2C, and the no-communication ablation.

use tsc_bench::experiments::{self, ExperimentScale};
use tsc_bench::ModelKind;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("Fig. 8 at scale {scale:?}");
    let kinds = [
        ModelKind::PairUpLight,
        ModelKind::CoLight,
        ModelKind::Ma2c,
        ModelKind::PairUpLightNoComm,
    ];
    match experiments::training_curves(&scale, &kinds) {
        Ok(curves) => {
            println!("\nFIG. 8 — TRAINING PERFORMANCE COMPARISON (avg waiting time, s)");
            for c in &curves {
                println!(
                    "  {:<24} final {:>8.2}s  best {:>8.2}s",
                    c.model,
                    c.final_wait().unwrap_or(f64::NAN),
                    c.best().map(|b| b.1).unwrap_or(f64::NAN)
                );
            }
            let csv = experiments::curves_to_csv(&curves);
            print!("\n{csv}");
            match experiments::write_result("fig8.csv", &csv) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("could not write results: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
