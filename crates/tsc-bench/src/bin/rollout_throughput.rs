//! Rollout-collection throughput of the data-parallel engine.
//!
//! Measures environment steps per second when collecting episodes with
//! `K = 1, 2, 4, 8` replicas on the paper's 6×6 grid, comparing the
//! scoped-thread worker path against the serial path at each `K`, and
//! reporting the speedup over `K = 1`. Numbers scale with the host's
//! core count: on a single-core machine the parallel path degenerates
//! to serial throughput (minus negligible thread overhead), which is
//! expected and does not affect determinism.
//!
//! Usage: `rollout_throughput [--json] [horizon_seconds] [rounds]`
//! (defaults: 300, 2; `--json` also writes `BENCH_rollout.json` at the
//! repo root).

use std::time::Instant;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_bench::cli::{exit_on_error, BenchArgs};
use tsc_bench::report::Json;
use tsc_sim::rollout::{derive_rollout_seed, RolloutSet};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, Scenario, SimConfig, Simulation, TscEnv};

fn main() {
    let args = BenchArgs::parse();
    let horizon: u32 = args.pos_or(0, 300);
    let rounds: u64 = args.pos_or(1, 2);
    exit_on_error("rollout_throughput", run(horizon, rounds, &args));
}

/// Simulator ticks per second on one engine. `control` adds the full
/// consumer-side loop — phase rotation plus `observe_all` at every
/// 10 s decision boundary; without it the measurement isolates the
/// stepping hot loop itself.
fn sim_core_ticks_per_sec(
    scenario: &Scenario,
    legacy: bool,
    control: bool,
    horizon: u32,
    rounds: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let agents = scenario.agents();
    let start = Instant::now();
    let mut ticks: u64 = 0;
    for round in 0..rounds {
        let mut sim = if legacy {
            Simulation::new_legacy(scenario, SimConfig::default(), round)?
        } else {
            Simulation::new(scenario, SimConfig::default(), round)?
        };
        for t in 0..horizon {
            if control && t % 10 == 0 {
                for (i, &node) in agents.iter().enumerate() {
                    let phase = ((t / 10) as usize + i) % scenario.signal_plans[i].num_phases();
                    sim.request_phase(node, phase)?;
                }
                let _ = sim.observe_all();
            }
            sim.step()?;
        }
        ticks += u64::from(horizon);
    }
    Ok(ticks as f64 / start.elapsed().as_secs_f64())
}

fn run(horizon: u32, rounds: u64, args: &BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::build(GridConfig::default())?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )?;
    // Small nets keep the bench dominated by what it measures: the
    // collection loop, not one-off weight initialization.
    let cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        ..Default::default()
    };
    let model = PairUpLight::new(&env, cfg);
    let sim_seconds_per_episode =
        u64::from(env.steps_per_episode() as u32) * u64::from(env.seconds_per_step());

    println!(
        "rollout throughput: 6x6 grid, horizon {horizon}s, {} decision steps/episode, \
         {rounds} round(s) per cell, host cores: {}",
        env.steps_per_episode(),
        std::thread::available_parallelism().map_or(1, usize::from),
    );
    println!(
        "{:>3} {:>10} {:>14} {:>14} {:>10}",
        "K", "mode", "elapsed", "env-steps/s", "speedup"
    );

    let mut baseline: Option<f64> = None;
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            let mut set = RolloutSet::new(&env, k);
            let start = Instant::now();
            let mut steps_done: u64 = 0;
            for round in 0..rounds {
                let seeds: Vec<u64> = (0..k)
                    .map(|e| derive_rollout_seed(0, round, e as u64))
                    .collect();
                let rollouts = model.collect_rollouts(&mut set, &seeds, parallel)?;
                steps_done += rollouts.iter().map(|r| r.stats.steps as u64).sum::<u64>();
            }
            let elapsed = start.elapsed();
            let steps_per_sec = steps_done as f64 / elapsed.as_secs_f64();
            // Serial K=1 is the reference a single classic training
            // loop achieves.
            if k == 1 && !parallel {
                baseline = Some(steps_per_sec);
            }
            let speedup = steps_per_sec / baseline.expect("K=1 serial measured first");
            println!(
                "{k:>3} {:>10} {:>14.2?} {steps_per_sec:>14.0} {speedup:>9.2}x",
                if parallel { "threads" } else { "serial" },
                elapsed,
            );
            rows.push(Json::obj([
                ("replicas", Json::num(k as f64)),
                (
                    "mode",
                    Json::str(if parallel { "threads" } else { "serial" }),
                ),
                ("elapsed_s", Json::num(elapsed.as_secs_f64())),
                ("env_steps_per_sec", Json::num(steps_per_sec)),
                ("speedup", Json::num(speedup)),
            ]));
        }
    }
    println!(
        "(each episode simulates {sim_seconds_per_episode}s of traffic; \
         decision steps = episodes x steps/episode)"
    );

    // Simulator-core comparison: the discrete-event engine vs the
    // legacy per-second tick stepper, isolated from model inference.
    // 3600 s is a fully-loaded demand cycle (worst case for the event
    // core: no idle time to skip); 7200 s adds the drain tail every
    // episode also pays. "raw" times only the stepping hot loop;
    // "control" adds phase rotation + observation every 10 s boundary,
    // which costs both engines alike and so dilutes the ratio.
    let mut sim_rows = Vec::new();
    println!("sim core (6x6 grid; legacy tick stepper vs discrete-event engine):");
    for sim_horizon in [3600u32, 7200] {
        for control in [false, true] {
            let workload = if control { "control" } else { "raw" };
            let legacy_tps =
                sim_core_ticks_per_sec(env.scenario(), true, control, sim_horizon, rounds)?;
            let event_tps =
                sim_core_ticks_per_sec(env.scenario(), false, control, sim_horizon, rounds)?;
            let core_speedup = event_tps / legacy_tps;
            println!(
                "  {workload:>7} {sim_horizon:>5}s: legacy {legacy_tps:>7.0} ticks/s, \
                 event {event_tps:>8.0} ticks/s, {core_speedup:>4.1}x"
            );
            sim_rows.push(Json::obj([
                ("workload", Json::str(workload)),
                ("horizon_s", Json::num(f64::from(sim_horizon))),
                ("legacy_ticks_per_sec", Json::num(legacy_tps)),
                ("event_ticks_per_sec", Json::num(event_tps)),
                ("speedup", Json::num(core_speedup)),
            ]));
        }
    }

    let report = Json::obj([
        ("bench", Json::str("rollout_throughput")),
        ("grid", Json::str("6x6")),
        ("horizon_s", Json::num(f64::from(horizon))),
        ("rounds", Json::num(rounds as f64)),
        (
            "host_cores",
            Json::num(std::thread::available_parallelism().map_or(1, usize::from) as f64),
        ),
        ("cells", Json::Arr(rows)),
        ("sim_core", Json::Arr(sim_rows)),
    ]);
    args.write_report_if_json("BENCH_rollout.json", &report)?;
    Ok(())
}
