//! # tsc-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Paper artifact | Driver | Binary |
//! |---|---|---|
//! | Table II (travel time, 5 patterns) | [`experiments::table2`] | `table2` |
//! | Table III (light traffic) | [`experiments::table3`] | `table3` |
//! | Table IV (communication overhead) | [`experiments::table4`] | `table4` |
//! | Fig. 7 (training curve) | [`experiments::training_curves`] | `fig7` |
//! | Fig. 8 (200-episode comparison + ablation) | [`experiments::training_curves`] | `fig8` |
//! | Fig. 10 (Monaco heterogeneous) | [`experiments::monaco_training`] | `fig10` |
//! | Fig. 11 (bandwidth 1 vs 2) | [`experiments::training_curves`] | `fig11` |
//!
//! Every binary accepts `--episodes`, `--horizon`, `--eval-horizon`,
//! `--hidden`, `--seed` and `--grid` to trade fidelity for wall-clock
//! time; results are printed and written under `results/`.
//!
//! Performance bins (`rollout_throughput`, `checkpoint_overhead`,
//! `serve_grid`, `fleet`, `cityscale`, …) additionally accept
//! `--json`, writing `BENCH_*.json` at the repository root via
//! [`report`]; their shared argument grammar lives in [`cli`].
//! `serve_grid`, `chaos` and `fleet` also take `--scenario
//! <name-or-path>` to run on a compiled `tsc-scenario` world (see
//! [`world`]), and every report embeds the compiled scenario's
//! fingerprint.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod eval;
pub mod experiments;
pub mod forensics;
pub mod models;
pub mod report;
pub mod world;

pub use cli::{exit_on_error, BenchArgs};
pub use eval::{evaluate, evaluate_seeds, EvalConfig, EvalResult};
pub use experiments::{ExperimentScale, TravelTimeTable};
pub use forensics::{replay_incident, FleetWorldSpec, ReplayReport, TenantWorldSpec};
pub use models::{train_model, ModelKind, TrainSetup, TrainedModel};
pub use report::{repo_root, write_prometheus, write_report, Json};
pub use world::resolve_scenario;
