//! Shared command-line plumbing for the performance bench binaries.
//!
//! Every `BENCH_*`-writing binary speaks the same tiny grammar —
//! `--json`, `--smoke`, then lenient positionals — and ends its `main`
//! with the same epilogue (print the failure, exit non-zero) and its
//! report path with the same announcement. Before this module each
//! binary hand-rolled that loop; now the grammar lives in one place
//! and a new bench bin starts at [`BenchArgs::parse`].

use std::fmt::Display;
use std::io;
use std::str::FromStr;

use crate::report::{write_report, Json};

/// Parsed command line of a performance bench binary.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--json`: also write the binary's `BENCH_*.json` report at the
    /// repository root.
    pub json: bool,
    /// `--smoke`: shrink the workload to CI-gate size.
    pub smoke: bool,
    /// `--scenario <name-or-path>`: run on a compiled scenario instead
    /// of the binary's built-in world — a `tsc-scenario` preset name
    /// (`monaco`, `grid`, `city-<n>`, `corridor-<n>`, `ring-<n>`) or a
    /// path to a spec text file. See [`crate::world::resolve_scenario`].
    pub scenario: Option<String>,
    positional: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments (everything after the binary name).
    #[must_use]
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument stream — the testable core of
    /// [`BenchArgs::parse`]. Flags may appear anywhere; every
    /// non-flag token is kept as a positional in order.
    pub fn from_args<I>(args: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Self::default();
        let mut scenario_next = false;
        for arg in args {
            if scenario_next {
                out.scenario = Some(arg);
                scenario_next = false;
                continue;
            }
            match arg.as_str() {
                "--json" => out.json = true,
                "--smoke" => out.smoke = true,
                "--scenario" => scenario_next = true,
                _ => out.positional.push(arg),
            }
        }
        out
    }

    /// The raw positional arguments, in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The `idx`-th positional parsed as `T`, or `default` when the
    /// argument is absent or does not parse — the lenient behavior
    /// every bench bin has always had.
    pub fn pos_or<T: FromStr>(&self, idx: usize, default: T) -> T {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Writes `report` as `<repo root>/<name>` and announces the path
    /// on stdout — but only when `--json` was passed; otherwise a
    /// no-op, so callers can build the report unconditionally and let
    /// the flag decide.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the underlying
    /// [`write_report`].
    pub fn write_report_if_json(&self, name: &str, report: &Json) -> io::Result<()> {
        if self.json {
            let report = stamp_scenario(report.clone());
            let path = write_report(name, &report)?;
            println!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// Embeds the most recently constructed scenario (name + structural
/// fingerprint, from the tsc-obs registry) into an object-shaped
/// report under the `"scenario"` key, so every `BENCH_*.json` is
/// attributable to an exact compiled world. A report that already
/// carries the key, a non-object report, or a run that never built an
/// environment passes through unchanged.
fn stamp_scenario(report: Json) -> Json {
    match report {
        Json::Obj(mut fields) if !fields.iter().any(|(k, _)| k == "scenario") => {
            if let Some(event) = tsc_obs::latest_scenario() {
                fields.push(("scenario".into(), event.to_json()));
            }
            Json::Obj(fields)
        }
        other => other,
    }
}

/// The shared `main` epilogue: on `Err`, prints `<name> failed: <e>`
/// to stderr and exits with status 1; on `Ok`, returns normally.
pub fn exit_on_error<E: Display>(name: &str, result: Result<(), E>) {
    if let Err(e) = result {
        eprintln!("{name} failed: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_parse_anywhere_and_positionals_keep_order() {
        let a = parse(&["--json", "300", "--smoke", "2"]);
        assert!(a.json && a.smoke);
        assert_eq!(a.positional(), ["300", "2"]);
        let b = parse(&["120", "--json"]);
        assert!(b.json && !b.smoke);
        assert_eq!(b.positional(), ["120"]);
    }

    #[test]
    fn pos_or_parses_with_lenient_fallback() {
        let a = parse(&["250", "junk"]);
        assert_eq!(a.pos_or(0, 300u32), 250);
        assert_eq!(a.pos_or(1, 7u64), 7, "unparseable falls back");
        assert_eq!(a.pos_or(5, 2usize), 2, "absent falls back");
    }

    #[test]
    fn empty_args_are_all_defaults() {
        let a = parse(&[]);
        assert!(!a.json && !a.smoke && a.positional().is_empty());
        assert!(a.scenario.is_none());
    }

    #[test]
    fn scenario_takes_the_next_token() {
        let a = parse(&["--scenario", "city-200", "120", "--json"]);
        assert_eq!(a.scenario.as_deref(), Some("city-200"));
        assert_eq!(a.positional(), ["120"]);
        assert!(a.json);
        let b = parse(&["--scenario"]);
        assert!(b.scenario.is_none(), "dangling flag is ignored");
    }

    #[test]
    fn stamp_scenario_respects_existing_key_and_shape() {
        let with_key = Json::obj([("scenario", Json::str("mine"))]);
        assert_eq!(stamp_scenario(with_key.clone()), with_key);
        let arr = Json::Arr(vec![]);
        assert_eq!(stamp_scenario(arr.clone()), arr);
    }
}
