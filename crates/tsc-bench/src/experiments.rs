//! Drivers that regenerate every table and figure of the paper's
//! evaluation (§VI). Each driver returns structured results and can
//! render a paper-style text table/series; the `table2`, `fig7`, …
//! binaries are thin wrappers around these functions.
//!
//! Scale: the paper trains 1000 SUMO episodes; these drivers default to
//! scaled-down runs (see [`ExperimentScale`]) so each finishes in
//! minutes on a laptop. EXPERIMENTS.md records the scale used and how
//! the *shape* of each result compares with the paper.

use std::fmt::Write as _;

use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, Scenario, SimConfig, SimError, TscEnv};

use crate::eval::{evaluate, EvalConfig};
use crate::models::{train_model, CurvePoint, ModelKind, TrainSetup};

/// Effort/size knobs for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentScale {
    /// Training episodes per model.
    pub episodes: usize,
    /// Episode horizon (s) used during training.
    pub train_horizon: u32,
    /// Evaluation horizon (s).
    pub eval_horizon: u32,
    /// Drain cap (s) for travel-time accounting.
    pub drain_cap: u32,
    /// Network width.
    pub hidden: usize,
    /// Base seed.
    pub seed: u64,
    /// Grid size (the paper's main experiment is 6×6).
    pub grid: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            episodes: 60,
            train_horizon: 2700,
            eval_horizon: 2700,
            drain_cap: 5400,
            hidden: 32,
            seed: 7,
            grid: 6,
        }
    }
}

impl ExperimentScale {
    /// Parses `--episodes N --horizon S --eval-horizon S --hidden H
    /// --seed S --grid G` style flags from an iterator of CLI args
    /// (unknown flags are ignored so binaries can add their own).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = ExperimentScale::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut set = |target: &mut dyn FnMut(u64)| {
                if let Some(v) = it.next().and_then(|s| s.parse::<u64>().ok()) {
                    target(v);
                }
            };
            match flag.as_str() {
                "--episodes" => set(&mut |v| scale.episodes = v as usize),
                "--horizon" => set(&mut |v| scale.train_horizon = v as u32),
                "--eval-horizon" => set(&mut |v| scale.eval_horizon = v as u32),
                "--drain-cap" => set(&mut |v| scale.drain_cap = v as u32),
                "--hidden" => set(&mut |v| scale.hidden = v as usize),
                "--seed" => set(&mut |v| scale.seed = v),
                "--grid" => set(&mut |v| scale.grid = v as usize),
                _ => {}
            }
        }
        scale
    }

    fn setup(&self) -> TrainSetup {
        TrainSetup {
            hidden: self.hidden,
            lstm_hidden: self.hidden,
            episodes: self.episodes,
            ppo_epochs: 2,
            seed: self.seed,
            heterogeneous: false,
        }
    }
}

fn grid(scale: &ExperimentScale) -> Result<Grid, SimError> {
    Grid::build(GridConfig {
        cols: scale.grid,
        rows: scale.grid,
        spacing: 200.0,
    })
}

fn training_env(scenario: Scenario, scale: &ExperimentScale) -> Result<TscEnv, SimError> {
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: scale.train_horizon,
        },
        scale.seed,
    )
}

fn progress(kind: ModelKind) -> impl FnMut(&CurvePoint) {
    move |p: &CurvePoint| {
        if p.episode.is_multiple_of(5) {
            eprintln!(
                "  [{}] episode {:>4}: wait {:>8.2}s travel {:>9.2}s pl {:>7.3} vl {:>7.3} H {:>5.2}",
                kind.name(),
                p.episode,
                p.avg_waiting_time,
                p.avg_travel_time,
                p.policy_loss,
                p.value_loss,
                p.entropy
            );
        }
    }
}

// ---------------------------------------------------------------------
// Table II / Table III
// ---------------------------------------------------------------------

/// One model's row of Table II.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TravelTimeRow {
    /// Model name.
    pub model: String,
    /// Average travel time per pattern (s).
    pub per_pattern: Vec<f64>,
}

/// Result of the Table II experiment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TravelTimeTable {
    /// Pattern names (columns).
    pub patterns: Vec<String>,
    /// Model rows.
    pub rows: Vec<TravelTimeRow>,
}

impl TravelTimeTable {
    /// Renders a paper-style aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<24}", "Model");
        for p in &self.patterns {
            let _ = write!(out, "{p:>12}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<24}", row.model);
            for v in &row.per_pattern {
                let _ = write!(out, "{v:>12.2}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("model");
        for p in &self.patterns {
            let _ = write!(out, ",{p}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{}", row.model);
            for v in &row.per_pattern {
                let _ = write!(out, ",{v:.2}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Table II: train every model on Pattern 1, evaluate average travel
/// time on Patterns 1–5.
///
/// # Errors
///
/// Propagates scenario/simulation failures.
pub fn table2(scale: &ExperimentScale) -> Result<TravelTimeTable, SimError> {
    let grid = grid(scale)?;
    let pattern_cfg = PatternConfig::default();
    let train_scenario = patterns::grid_scenario(&grid, FlowPattern::One, &pattern_cfg)?;
    let eval_cfg = EvalConfig {
        horizon: scale.eval_horizon,
        drain_cap: scale.drain_cap,
        seed: scale.seed + 1000,
    };
    let mut rows = Vec::new();
    for kind in ModelKind::TABLE2 {
        eprintln!("training {} on Pattern 1 …", kind.name());
        let mut env = training_env(train_scenario.clone(), scale)?;
        let mut trained = train_model(kind, &mut env, &scale.setup(), progress(kind))?;
        let mut per_pattern = Vec::new();
        for pattern in FlowPattern::ALL {
            let scenario = patterns::grid_scenario(&grid, pattern, &pattern_cfg)?;
            let r = evaluate(
                &mut *trained.controller,
                &scenario,
                SimConfig::default(),
                &eval_cfg,
            )?;
            eprintln!(
                "  eval {}: travel {:.2}s (completion {:.0}%)",
                pattern.name(),
                r.avg_travel_time,
                100.0 * r.completion_rate
            );
            per_pattern.push(r.avg_travel_time);
        }
        rows.push(TravelTimeRow {
            model: kind.name(),
            per_pattern,
        });
    }
    Ok(TravelTimeTable {
        patterns: FlowPattern::ALL.iter().map(|p| p.name().into()).collect(),
        rows,
    })
}

/// Table III: train *and* evaluate every model on the light uniform
/// Pattern 5.
///
/// # Errors
///
/// Propagates scenario/simulation failures.
pub fn table3(scale: &ExperimentScale) -> Result<TravelTimeTable, SimError> {
    let grid = grid(scale)?;
    let pattern_cfg = PatternConfig::default();
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &pattern_cfg)?;
    let eval_cfg = EvalConfig {
        horizon: scale.eval_horizon,
        drain_cap: scale.drain_cap,
        seed: scale.seed + 1000,
    };
    let mut rows = Vec::new();
    for kind in ModelKind::TABLE2 {
        eprintln!("training {} on Pattern 5 …", kind.name());
        let mut env = training_env(scenario.clone(), scale)?;
        let mut trained = train_model(kind, &mut env, &scale.setup(), progress(kind))?;
        let r = evaluate(
            &mut *trained.controller,
            &scenario,
            SimConfig::default(),
            &eval_cfg,
        )?;
        eprintln!("  eval Pattern 5: travel {:.2}s", r.avg_travel_time);
        rows.push(TravelTimeRow {
            model: kind.name(),
            per_pattern: vec![r.avg_travel_time],
        });
    }
    Ok(TravelTimeTable {
        patterns: vec!["Pattern 5".into()],
        rows,
    })
}

// ---------------------------------------------------------------------
// Training-curve figures (Figs. 7, 8, 11)
// ---------------------------------------------------------------------

/// One model's training curve.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Curve {
    /// Model name.
    pub model: String,
    /// Per-episode points.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Minimum waiting time reached and its episode (the paper quotes
    /// "best performance occurs at episode 980 with 3.13 s").
    pub fn best(&self) -> Option<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.episode, p.avg_waiting_time))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Waiting time of the final episode.
    pub fn final_wait(&self) -> Option<f64> {
        self.points.last().map(|p| p.avg_waiting_time)
    }
}

/// Renders several curves as CSV (`episode,model1,model2,…`).
pub fn curves_to_csv(curves: &[Curve]) -> String {
    let mut out = String::from("episode");
    for c in curves {
        let _ = write!(out, ",{}", c.model);
    }
    let _ = writeln!(out);
    let len = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..len {
        let _ = write!(out, "{i}");
        for c in curves {
            match c.points.get(i) {
                Some(p) => {
                    let _ = write!(out, ",{:.3}", p.avg_waiting_time);
                }
                None => out.push(','),
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Trains each requested model on the grid Pattern 1 environment and
/// records its training curve (Figs. 7, 8, 11 all reduce to this with
/// different model lists).
///
/// # Errors
///
/// Propagates scenario/simulation failures.
pub fn training_curves(
    scale: &ExperimentScale,
    kinds: &[ModelKind],
) -> Result<Vec<Curve>, SimError> {
    let grid = grid(scale)?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let mut curves = Vec::new();
    for &kind in kinds {
        eprintln!("training {} …", kind.name());
        let mut env = training_env(scenario.clone(), scale)?;
        let trained = train_model(kind, &mut env, &scale.setup(), progress(kind))?;
        curves.push(Curve {
            model: kind.name(),
            points: trained.curve,
        });
    }
    Ok(curves)
}

/// Fig. 7 reference lines: FixedTime and the untrained-policy level are
/// usually drawn as horizontal references. Returns the FixedTime
/// episode-average waiting time on the same workload.
///
/// # Errors
///
/// Propagates scenario/simulation failures.
pub fn fixed_time_reference(scale: &ExperimentScale) -> Result<f64, SimError> {
    let grid = grid(scale)?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let mut env = training_env(scenario, scale)?;
    let mut ctl = tsc_baselines::FixedTimeController::default();
    let stats = env.run_episode(&mut ctl, scale.seed)?;
    Ok(stats.avg_waiting_time)
}

// ---------------------------------------------------------------------
// Fig. 10: Monaco heterogeneous environment
// ---------------------------------------------------------------------

/// Fig. 10: training curves on the Monaco-style heterogeneous network
/// (PairUpLight without parameter sharing vs MA2C vs FixedTime
/// reference).
///
/// # Errors
///
/// Propagates scenario/simulation failures.
pub fn monaco_training(scale: &ExperimentScale) -> Result<(Vec<Curve>, f64), SimError> {
    let scenario = tsc_scenario::compile(&tsc_scenario::monaco_spec(scale.seed))?.scenario;
    let mut setup = scale.setup();
    setup.heterogeneous = true; // §VI-D: parameter sharing infeasible
    let mut curves = Vec::new();
    for kind in [ModelKind::PairUpLight, ModelKind::Ma2c] {
        eprintln!("training {} on Monaco …", kind.name());
        let mut env = training_env(scenario.clone(), scale)?;
        let trained = train_model(kind, &mut env, &setup, progress(kind))?;
        curves.push(Curve {
            model: kind.name(),
            points: trained.curve,
        });
    }
    let mut env = training_env(scenario, scale)?;
    let mut ctl = tsc_baselines::FixedTimeController::default();
    let fixed = env.run_episode(&mut ctl, scale.seed)?.avg_waiting_time;
    Ok((curves, fixed))
}

// ---------------------------------------------------------------------
// Table IV: communication overhead
// ---------------------------------------------------------------------

/// One row of the communication-overhead table.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OverheadRow {
    /// Model name.
    pub model: String,
    /// What crosses the wire each decision step.
    pub information: String,
    /// Bits received per intersection per decision step in *this
    /// implementation*.
    pub bits: usize,
    /// Bits the paper reports for its implementation.
    pub paper_bits: usize,
}

/// Table IV: per-step communication overhead, computed from the actual
/// inputs each implemented model pulls from other intersections
/// (32-bit floats), alongside the paper's reported numbers.
pub fn table4(local_dim: usize, max_phases: usize) -> Vec<OverheadRow> {
    vec![
        OverheadRow {
            model: "MA2C".into(),
            information: "neighbor observations + policy fingerprints from 4 neighbors".into(),
            bits: 4 * (local_dim + max_phases) * 32,
            paper_bits: 1280,
        },
        OverheadRow {
            model: "CoLight".into(),
            information: "link-level observations from 4 neighbors".into(),
            bits: 4 * local_dim * 32,
            paper_bits: 1536,
        },
        OverheadRow {
            model: "PairUpLight".into(),
            information: "one 32-bit message from one of its 4 neighbors".into(),
            bits: pairuplight::message::bits_per_step(1),
            paper_bits: 32,
        },
    ]
}

/// Renders Table IV.
pub fn render_table4(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>18}{:>14}  Information from other intersections",
        "Model", "bits (this impl)", "bits (paper)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14}{:>18}{:>14}  {}",
            r.model, r.bits, r.paper_bits, r.information
        );
    }
    out
}

/// Writes `contents` under `results/<name>` (creating the directory),
/// returning the path written.
///
/// # Errors
///
/// Returns `std::io::Error` on filesystem failures.
pub fn write_result(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_flags_and_ignores_unknown() {
        let scale = ExperimentScale::from_args(
            ["--episodes", "5", "--wat", "--hidden", "16", "--grid", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(scale.episodes, 5);
        assert_eq!(scale.hidden, 16);
        assert_eq!(scale.grid, 3);
        assert_eq!(scale.seed, ExperimentScale::default().seed);
    }

    #[test]
    fn table4_shape_matches_paper_ordering() {
        let rows = table4(32, 4);
        assert_eq!(rows.len(), 3);
        // PairUpLight must be dramatically cheaper than both baselines,
        // in our implementation and in the paper.
        let p = rows.iter().find(|r| r.model == "PairUpLight").unwrap();
        for r in &rows {
            if r.model != "PairUpLight" {
                assert!(
                    r.bits >= 20 * p.bits,
                    "{}: {} vs {}",
                    r.model,
                    r.bits,
                    p.bits
                );
                assert!(r.paper_bits > p.paper_bits);
            }
        }
        assert_eq!(p.bits, 32);
    }

    #[test]
    fn travel_time_table_renders() {
        let t = TravelTimeTable {
            patterns: vec!["Pattern 1".into()],
            rows: vec![TravelTimeRow {
                model: "Fixedtime".into(),
                per_pattern: vec![123.45],
            }],
        };
        let s = t.render();
        assert!(s.contains("Fixedtime"));
        assert!(s.contains("123.45"));
        assert!(t.to_csv().contains("Fixedtime,123.45"));
    }

    #[test]
    fn curves_csv_is_rectangular() {
        let curves = vec![
            Curve {
                model: "A".into(),
                points: vec![CurvePoint {
                    episode: 0,
                    avg_waiting_time: 1.0,
                    avg_travel_time: 2.0,
                    total_reward: -1.0,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                }],
            },
            Curve {
                model: "B".into(),
                points: vec![],
            },
        ];
        let csv = curves_to_csv(&curves);
        assert!(csv.starts_with("episode,A,B"));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    fn curve_best_finds_minimum() {
        let c = Curve {
            model: "A".into(),
            points: vec![
                CurvePoint {
                    episode: 0,
                    avg_waiting_time: 5.0,
                    avg_travel_time: 0.0,
                    total_reward: 0.0,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                },
                CurvePoint {
                    episode: 1,
                    avg_waiting_time: 2.0,
                    avg_travel_time: 0.0,
                    total_reward: 0.0,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                },
                CurvePoint {
                    episode: 2,
                    avg_waiting_time: 3.0,
                    avg_travel_time: 0.0,
                    total_reward: 0.0,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                },
            ],
        };
        assert_eq!(c.best(), Some((1, 2.0)));
        assert_eq!(c.final_wait(), Some(3.0));
    }
}
