//! `--scenario` resolution: compiled worlds for the bench binaries.
//!
//! Every performance bench accepts `--scenario <name-or-path>` through
//! the shared [`BenchArgs`] grammar; this module turns that value into
//! a [`CompiledScenario`]. The value is either a `tsc-scenario` preset
//! name (`monaco`, `grid`, `city-<n>`, `corridor-<n>`, `ring-<n>`) or
//! a filesystem path to a spec in the `tsc-scenario spec v1` text
//! format — presets are tried first, so a file literally named
//! `monaco` needs a `./` prefix.

use tsc_scenario::{compile, preset, CompiledScenario, ScenarioSpec};
use tsc_sim::SimError;

use crate::cli::BenchArgs;

/// Resolves the `--scenario` argument, if present, into a compiled
/// world. Returns `Ok(None)` when the flag was not passed — the
/// binary should fall back to its built-in world.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when the value is neither a
/// preset name nor a readable spec file, when the spec fails to
/// parse, or when compilation fails.
pub fn resolve_scenario(args: &BenchArgs, seed: u64) -> Result<Option<CompiledScenario>, SimError> {
    let Some(value) = args.scenario.as_deref() else {
        return Ok(None);
    };
    let spec = spec_for(value, seed)?;
    compile(&spec).map(Some)
}

fn spec_for(value: &str, seed: u64) -> Result<ScenarioSpec, SimError> {
    if let Some(spec) = preset(value, seed) {
        return Ok(spec);
    }
    let text = std::fs::read_to_string(value).map_err(|e| {
        SimError::InvalidConfig(format!(
            "--scenario '{value}' is neither a preset (monaco, grid, city-<n>, \
             corridor-<n>, ring-<n>) nor a readable spec file: {e}"
        ))
    })?;
    ScenarioSpec::from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(argv: &[&str]) -> BenchArgs {
        BenchArgs::from_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn absent_flag_resolves_to_none() {
        assert!(resolve_scenario(&args(&["--json"]), 1).unwrap().is_none());
    }

    #[test]
    fn preset_name_resolves_and_seed_flows_through() {
        let a = resolve_scenario(&args(&["--scenario", "corridor-8"]), 5)
            .unwrap()
            .unwrap();
        let b = resolve_scenario(&args(&["--scenario", "corridor-8"]), 5)
            .unwrap()
            .unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.spec.seed, 5);
        assert_eq!(a.num_agents(), 8);
    }

    #[test]
    fn spec_file_resolves_via_text_format() {
        let spec = tsc_scenario::ring_spec(12, 9);
        let path = std::env::temp_dir().join("tsc_bench_world_test.spec");
        std::fs::write(&path, spec.to_text()).unwrap();
        let compiled = resolve_scenario(
            &args(&["--scenario", path.to_str().unwrap()]),
            0, // a file carries its own seed; the default is unused
        )
        .unwrap()
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(compiled.fingerprint, compile(&spec).unwrap().fingerprint);
    }

    #[test]
    fn junk_value_is_a_clear_error() {
        let err = resolve_scenario(&args(&["--scenario", "no-such-thing-42x"]), 1);
        assert!(err.is_err());
    }
}
