//! Policy evaluation: run a controller on a scenario and extract the
//! paper's metrics.

use tsc_sim::{ChaosPlan, Controller, EnvConfig, Scenario, SimConfig, SimError, TscEnv};

/// Result of evaluating one controller on one scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalResult {
    /// Average travel time (s) over all spawned vehicles, unfinished
    /// trips counted up to the drain cap — the Table II metric.
    pub avg_travel_time: f64,
    /// Episode-average waiting time (s) — the Fig. 7/8/10 metric.
    pub avg_waiting_time: f64,
    /// Completed trips.
    pub finished: usize,
    /// Generated vehicles.
    pub spawned: usize,
    /// `finished / spawned`.
    pub completion_rate: f64,
}

/// Evaluation setup shared across experiments.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalConfig {
    /// Demand/episode horizon (s).
    pub horizon: u32,
    /// Hard cap (s) when draining remaining vehicles after the horizon;
    /// gridlocked vehicles accrue travel time until this point.
    pub drain_cap: u32,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            horizon: 3600,
            drain_cap: 7200,
            seed: 1000,
        }
    }
}

/// Runs `controller` on `scenario` for one full episode plus drain and
/// returns the paper's metrics.
///
/// # Errors
///
/// Propagates environment construction/step failures.
pub fn evaluate<C: Controller + ?Sized>(
    controller: &mut C,
    scenario: &Scenario,
    sim_config: SimConfig,
    cfg: &EvalConfig,
) -> Result<EvalResult, SimError> {
    evaluate_with_chaos(controller, scenario, sim_config, &ChaosPlan::default(), cfg)
}

/// [`evaluate`] with a [`ChaosPlan`] installed on the environment:
/// sensing and actuation faults fire on their scheduled windows for
/// the whole episode (and drain). An empty plan is bit-identical to
/// [`evaluate`].
///
/// # Errors
///
/// Propagates environment construction/step failures.
pub fn evaluate_with_chaos<C: Controller + ?Sized>(
    controller: &mut C,
    scenario: &Scenario,
    sim_config: SimConfig,
    chaos: &ChaosPlan,
    cfg: &EvalConfig,
) -> Result<EvalResult, SimError> {
    let mut env = TscEnv::new(
        scenario.clone(),
        sim_config,
        EnvConfig {
            decision_interval: 5,
            episode_horizon: cfg.horizon,
        },
        cfg.seed,
    )?;
    env.set_chaos(chaos.clone());
    let stats = env.run_episode(controller, cfg.seed)?;
    env.drain(controller, cfg.drain_cap)?;
    let sim = env.sim();
    let spawned = sim.metrics().spawned();
    let finished = sim.metrics().finished();
    Ok(EvalResult {
        avg_travel_time: sim.avg_travel_time(),
        avg_waiting_time: stats.avg_waiting_time,
        finished,
        spawned,
        completion_rate: if spawned == 0 {
            1.0
        } else {
            finished as f64 / spawned as f64
        },
    })
}

/// Evaluates over several seeds and averages the metrics (used where a
/// single stochastic run would be noisy).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn evaluate_seeds<C: Controller + ?Sized>(
    controller: &mut C,
    scenario: &Scenario,
    sim_config: SimConfig,
    cfg: &EvalConfig,
    seeds: &[u64],
) -> Result<EvalResult, SimError> {
    assert!(!seeds.is_empty(), "at least one seed");
    let mut acc = EvalResult {
        avg_travel_time: 0.0,
        avg_waiting_time: 0.0,
        finished: 0,
        spawned: 0,
        completion_rate: 0.0,
    };
    for &seed in seeds {
        let r = evaluate(
            controller,
            scenario,
            sim_config,
            &EvalConfig { seed, ..*cfg },
        )?;
        acc.avg_travel_time += r.avg_travel_time;
        acc.avg_waiting_time += r.avg_waiting_time;
        acc.finished += r.finished;
        acc.spawned += r.spawned;
        acc.completion_rate += r.completion_rate;
    }
    let n = seeds.len() as f64;
    acc.avg_travel_time /= n;
    acc.avg_waiting_time /= n;
    acc.completion_rate /= n;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_baselines::FixedTimeController;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};

    #[test]
    fn fixed_time_evaluation_completes_light_traffic() {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let cfg = PatternConfig {
            uniform_end: 300.0,
            ..PatternConfig::default()
        };
        let f = flows(&grid, FlowPattern::Five, &cfg).unwrap();
        let scenario = grid.scenario("t", f).unwrap();
        let mut ctl = FixedTimeController::default();
        let r = evaluate(
            &mut ctl,
            &scenario,
            SimConfig::default(),
            &EvalConfig {
                horizon: 300,
                drain_cap: 1500,
                seed: 0,
            },
        )
        .unwrap();
        assert!(r.spawned > 0);
        assert!(r.completion_rate > 0.9, "light traffic drains: {r:?}");
        assert!(r.avg_travel_time > 0.0);
    }

    #[test]
    fn chaos_evaluation_matches_clean_on_empty_plan_and_survives_dropout() {
        use tsc_sim::{ChaosPlan, LinkSel, Window};
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let cfg = PatternConfig {
            uniform_end: 300.0,
            ..PatternConfig::default()
        };
        let f = flows(&grid, FlowPattern::Five, &cfg).unwrap();
        let scenario = grid.scenario("t", f).unwrap();
        let eval_cfg = EvalConfig {
            horizon: 300,
            drain_cap: 1500,
            seed: 0,
        };
        let mut ctl = FixedTimeController::default();
        let clean = evaluate(&mut ctl, &scenario, SimConfig::default(), &eval_cfg).unwrap();
        let mut ctl = FixedTimeController::default();
        let empty = evaluate_with_chaos(
            &mut ctl,
            &scenario,
            SimConfig::default(),
            &ChaosPlan::default(),
            &eval_cfg,
        )
        .unwrap();
        assert_eq!(clean, empty, "empty plan is bit-identical to clean");
        // Full detector dropout: FixedTime ignores sensors, so the
        // physics (and thus the metrics) are untouched.
        let blind = ChaosPlan::default().sensor_dropout(Window::always(), LinkSel::All, 1.0);
        let mut ctl = FixedTimeController::default();
        let degraded =
            evaluate_with_chaos(&mut ctl, &scenario, SimConfig::default(), &blind, &eval_cfg)
                .unwrap();
        assert_eq!(clean, degraded, "FixedTime is sensor-blind");
    }

    #[test]
    fn seed_averaging_runs() {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let cfg = PatternConfig {
            uniform_end: 200.0,
            ..PatternConfig::default()
        };
        let f = flows(&grid, FlowPattern::Five, &cfg).unwrap();
        let scenario = grid.scenario("t", f).unwrap();
        let mut ctl = FixedTimeController::default();
        let r = evaluate_seeds(
            &mut ctl,
            &scenario,
            SimConfig::default(),
            &EvalConfig {
                horizon: 200,
                drain_cap: 800,
                seed: 0,
            },
            &[1, 2, 3],
        )
        .unwrap();
        assert!(r.spawned > 0);
    }
}
