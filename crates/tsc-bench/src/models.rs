//! Uniform model zoo: train any of the paper's five models (plus
//! ablations) on an environment and obtain a deployable controller and
//! a training curve.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::{
    single_agent_with, CoLight, CoLightConfig, FixedTimeController, Ma2c, Ma2cConfig,
};
use tsc_sim::{Controller, SimError, TscEnv};

/// The models of Table II plus the ablations of Figs. 8 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// Predetermined cyclic timing.
    FixedTime,
    /// Shared PPO on local observations.
    SingleAgent,
    /// Independent A2C with fingerprints (Chu et al., 2019).
    Ma2c,
    /// GAT + DQN with parameter sharing (Wei et al., 2019).
    CoLight,
    /// The full proposed model.
    PairUpLight,
    /// PairUpLight without the communication module (Fig. 8 ablation).
    PairUpLightNoComm,
    /// PairUpLight with a custom message bandwidth (Fig. 11).
    PairUpLightBandwidth(usize),
}

impl ModelKind {
    /// All Table II rows, in paper order.
    pub const TABLE2: [ModelKind; 5] = [
        ModelKind::FixedTime,
        ModelKind::SingleAgent,
        ModelKind::Ma2c,
        ModelKind::CoLight,
        ModelKind::PairUpLight,
    ];

    /// Paper-style display name.
    pub fn name(self) -> String {
        match self {
            ModelKind::FixedTime => "Fixedtime".into(),
            ModelKind::SingleAgent => "SingleAgent".into(),
            ModelKind::Ma2c => "MA2C".into(),
            ModelKind::CoLight => "CoLight".into(),
            ModelKind::PairUpLight => "PairUpLight".into(),
            ModelKind::PairUpLightNoComm => "PairUpLight (no comm)".into(),
            ModelKind::PairUpLightBandwidth(b) => format!("PairUpLight (bw={b})"),
        }
    }
}

/// Size/effort knobs shared by all trainable models so experiments can
/// be scaled between "smoke test" and "paper scale".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainSetup {
    /// Hidden/trunk width.
    pub hidden: usize,
    /// LSTM width (actor-critic models).
    pub lstm_hidden: usize,
    /// Training episodes.
    pub episodes: usize,
    /// PPO epochs per episode.
    pub ppo_epochs: usize,
    /// Base seed; episode `i` runs on `seed + i`.
    pub seed: u64,
    /// Disable parameter sharing (Monaco §VI-D).
    pub heterogeneous: bool,
}

impl Default for TrainSetup {
    fn default() -> Self {
        TrainSetup {
            hidden: 32,
            lstm_hidden: 32,
            episodes: 30,
            ppo_epochs: 2,
            seed: 7,
            heterogeneous: false,
        }
    }
}

/// One point of a training curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurvePoint {
    /// Episode index.
    pub episode: usize,
    /// Episode-average waiting time (s) — the Fig. 7/8/10 y-axis.
    pub avg_waiting_time: f64,
    /// Average travel time (s) at the horizon.
    pub avg_travel_time: f64,
    /// Sum of agent rewards.
    pub total_reward: f64,
    /// Mean policy loss over the episode's updates (0 for non-PPO).
    pub policy_loss: f32,
    /// Mean value loss over the updates (0 for non-PPO).
    pub value_loss: f32,
    /// Mean policy entropy over the updates (0 for non-PPO).
    pub entropy: f32,
}

/// A trained (or static) model ready for evaluation.
pub struct TrainedModel {
    /// The deployable controller.
    pub controller: Box<dyn Controller>,
    /// Per-episode training diagnostics (empty for FixedTime).
    pub curve: Vec<CurvePoint>,
    /// Which model this is.
    pub kind: ModelKind,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("kind", &self.kind)
            .field("curve_len", &self.curve.len())
            .finish()
    }
}

fn pairuplight_config(setup: &TrainSetup, bandwidth: usize) -> PairUpLightConfig {
    let mut cfg = PairUpLightConfig {
        hidden: setup.hidden,
        lstm_hidden: setup.lstm_hidden,
        bandwidth,
        parameter_sharing: !setup.heterogeneous,
        seed: setup.seed,
        eps_decay_episodes: (setup.episodes / 2).max(1),
        ..PairUpLightConfig::default()
    };
    cfg.ppo.epochs = setup.ppo_epochs;
    cfg
}

/// Trains `kind` on `env` and returns the controller plus curve.
///
/// `on_episode` fires after every training episode (use it for
/// progress output); it receives the fresh curve point.
///
/// # Errors
///
/// Propagates environment failures.
pub fn train_model(
    kind: ModelKind,
    env: &mut TscEnv,
    setup: &TrainSetup,
    mut on_episode: impl FnMut(&CurvePoint),
) -> Result<TrainedModel, SimError> {
    let mut curve = Vec::with_capacity(setup.episodes);
    let controller: Box<dyn Controller> = match kind {
        ModelKind::FixedTime => Box::new(FixedTimeController::default()),
        ModelKind::SingleAgent => {
            let mut model = single_agent_with(env, pairuplight_config(setup, 0));
            for i in 0..setup.episodes {
                let ep = model.train_episode(env, setup.seed + i as u64)?;
                let point = CurvePoint {
                    episode: i,
                    avg_waiting_time: ep.stats.avg_waiting_time,
                    avg_travel_time: ep.stats.avg_travel_time,
                    total_reward: ep.stats.total_reward,
                    policy_loss: ep.policy_loss,
                    value_loss: ep.value_loss,
                    entropy: ep.entropy,
                };
                on_episode(&point);
                curve.push(point);
            }
            Box::new(model.controller())
        }
        ModelKind::PairUpLight
        | ModelKind::PairUpLightNoComm
        | ModelKind::PairUpLightBandwidth(_) => {
            let bandwidth = match kind {
                ModelKind::PairUpLightNoComm => 0,
                ModelKind::PairUpLightBandwidth(b) => b,
                _ => 1,
            };
            let mut model = PairUpLight::new(env, pairuplight_config(setup, bandwidth));
            for i in 0..setup.episodes {
                let ep = model.train_episode(env, setup.seed + i as u64)?;
                let point = CurvePoint {
                    episode: i,
                    avg_waiting_time: ep.stats.avg_waiting_time,
                    avg_travel_time: ep.stats.avg_travel_time,
                    total_reward: ep.stats.total_reward,
                    policy_loss: ep.policy_loss,
                    value_loss: ep.value_loss,
                    entropy: ep.entropy,
                };
                on_episode(&point);
                curve.push(point);
            }
            Box::new(model.controller())
        }
        ModelKind::Ma2c => {
            let cfg = Ma2cConfig {
                hidden: setup.hidden,
                lstm_hidden: setup.lstm_hidden,
                seed: setup.seed,
                ..Ma2cConfig::default()
            };
            let mut model = Ma2c::new(env, cfg);
            for i in 0..setup.episodes {
                let stats = model.train_episode(env, setup.seed + i as u64)?;
                let point = CurvePoint {
                    episode: i,
                    avg_waiting_time: stats.avg_waiting_time,
                    avg_travel_time: stats.avg_travel_time,
                    total_reward: stats.total_reward,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                };
                on_episode(&point);
                curve.push(point);
            }
            Box::new(model.controller())
        }
        ModelKind::CoLight => {
            let cfg = CoLightConfig {
                embed: setup.hidden,
                seed: setup.seed,
                ..CoLightConfig::default()
            };
            let mut model = CoLight::new(env, cfg);
            for i in 0..setup.episodes {
                let stats = model.train_episode(env, setup.seed + i as u64)?;
                let point = CurvePoint {
                    episode: i,
                    avg_waiting_time: stats.avg_waiting_time,
                    avg_travel_time: stats.avg_travel_time,
                    total_reward: stats.total_reward,
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                };
                on_episode(&point);
                curve.push(point);
            }
            Box::new(model.controller())
        }
    };
    Ok(TrainedModel {
        controller,
        curve,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{EnvConfig, SimConfig};

    fn tiny_env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        TscEnv::new(
            grid.scenario("t", f).unwrap(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 140,
            },
            0,
        )
        .unwrap()
    }

    fn tiny_setup() -> TrainSetup {
        TrainSetup {
            hidden: 8,
            lstm_hidden: 8,
            episodes: 2,
            ppo_epochs: 1,
            seed: 1,
            heterogeneous: false,
        }
    }

    #[test]
    fn every_model_kind_trains_and_evaluates() {
        for kind in [
            ModelKind::FixedTime,
            ModelKind::SingleAgent,
            ModelKind::Ma2c,
            ModelKind::CoLight,
            ModelKind::PairUpLight,
            ModelKind::PairUpLightNoComm,
            ModelKind::PairUpLightBandwidth(2),
        ] {
            let mut env = tiny_env();
            let mut count = 0;
            let trained = train_model(kind, &mut env, &tiny_setup(), |_| count += 1).unwrap();
            if kind == ModelKind::FixedTime {
                assert!(trained.curve.is_empty());
            } else {
                assert_eq!(trained.curve.len(), 2);
                assert_eq!(count, 2);
            }
            let mut ctl = trained.controller;
            let stats = env.run_episode(&mut *ctl, 5).unwrap();
            assert!(stats.spawned > 0, "{}", kind.name());
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelKind::Ma2c.name(), "MA2C");
        assert_eq!(
            ModelKind::PairUpLightBandwidth(2).name(),
            "PairUpLight (bw=2)"
        );
        assert_eq!(ModelKind::TABLE2.len(), 5);
    }
}
