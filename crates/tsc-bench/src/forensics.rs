//! Replay-to-reproduce forensics over flight-recorder incidents.
//!
//! An incident file carries two things: the flight ring (compact
//! per-step [`FlightFrame`]s) and a **replay context** — here, a
//! [`FleetWorldSpec`]: the complete deterministic recipe for the world
//! that produced the incident (grids, flow patterns, model seeds,
//! supervisor knobs, chaos plan, load plan). Because every fleet
//! decision is a pure function of that recipe, [`replay_incident`]
//! can rebuild the world from the context alone, re-execute the
//! captured window, and diff frame-by-frame: a clean replay matches
//! **bit-for-bit** (pinned by a tier-1 test and a property test over
//! random chaos/load plans).
//!
//! Wall-clock is the one thing a replay cannot reproduce, so the
//! canonical forensics world serves with no deadline (`ServeConfig`
//! default) and the frame's `slack_us` is excluded from digests and
//! diffs ([`FlightFrame::diff_fields`]).
//!
//! The replay also runs a **causal-correlation pass** over the
//! message plane: under pairwise communication, agent `a`'s step-`t`
//! forward consumed the message its partner published at `t − 1`
//! ([`ServeRuntime::last_partners`]), so a frame whose *previous*
//! frame was served by standby or a held plan consumed messages
//! published under degradation — the pass flags those frames and maps
//! each agent to its upstream partner.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_obs::{FlightFrame, Incident, Json};
use tsc_serve::{
    AdmissionConfig, FleetConfig, FleetRuntime, FlightConfig, InfraChaosPlan, LoadPlan,
    ServeConfig, ServeRuntime, SupervisorConfig, TenantSpec,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

/// One tenant's share of the deterministic world recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantWorldSpec {
    /// Operator-facing tenant name.
    pub name: String,
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Grid spacing in meters.
    pub spacing: f64,
    /// Index into [`FlowPattern::ALL`].
    pub pattern: usize,
    /// Trunk width of the tenant's policy.
    pub hidden: usize,
    /// LSTM width of the tenant's policy.
    pub lstm_hidden: usize,
    /// Weight-init seed ([`PairUpLightConfig::seed`]) — the policy is
    /// rebuilt from scratch on replay, bit-identical.
    pub model_seed: u64,
    /// The environment reset seed the canonical loop drives with.
    pub env_seed: u64,
}

/// The complete deterministic recipe for a forensics fleet world —
/// the replay context stamped into every incident this harness dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetWorldSpec {
    /// Per-tenant world recipes.
    pub tenants: Vec<TenantWorldSpec>,
    /// Environment decision interval (s).
    pub decision_interval: u32,
    /// Episode horizon (s) — generous, so episodes outlive the run.
    pub horizon: u32,
    /// The fleet seed (chaos draws, backoff jitter, admission
    /// tie-breaks, load-plan bursts).
    pub fleet_seed: u64,
    /// Supervision knobs.
    pub supervisor: SupervisorConfig,
    /// Admission capacity (`None` = admission disabled).
    pub admission_capacity: Option<u64>,
    /// Flight-ring capacity in frames.
    pub flight_capacity: usize,
    /// Automatic-dump cooldown in fleet steps.
    pub flight_cooldown: u64,
    /// The infrastructure chaos plan.
    pub chaos: InfraChaosPlan,
    /// The offered-load program.
    pub load: LoadPlan,
}

impl FleetWorldSpec {
    /// The recipe as self-describing JSON (the incident replay
    /// context). [`from_json`](Self::from_json) round-trips it.
    pub fn to_json(&self) -> Json {
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Json::obj([
                    ("name", Json::str(&t.name)),
                    ("cols", Json::num(t.cols as f64)),
                    ("rows", Json::num(t.rows as f64)),
                    ("spacing", Json::num(t.spacing)),
                    ("pattern", Json::num(t.pattern as f64)),
                    ("hidden", Json::num(t.hidden as f64)),
                    ("lstm_hidden", Json::num(t.lstm_hidden as f64)),
                    (
                        "model_seed",
                        Json::str(tsc_obs::flight::u64_to_hex(t.model_seed)),
                    ),
                    (
                        "env_seed",
                        Json::str(tsc_obs::flight::u64_to_hex(t.env_seed)),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("world", Json::str("fleet-forensics-v1")),
            ("tenants", Json::Arr(tenants)),
            (
                "decision_interval",
                Json::num(f64::from(self.decision_interval)),
            ),
            ("horizon", Json::num(f64::from(self.horizon))),
            (
                "fleet_seed",
                Json::str(tsc_obs::flight::u64_to_hex(self.fleet_seed)),
            ),
            ("supervisor", self.supervisor.to_json()),
            (
                "admission_capacity",
                match self.admission_capacity {
                    Some(c) => Json::num(c as f64),
                    None => Json::Null,
                },
            ),
            ("flight_capacity", Json::num(self.flight_capacity as f64)),
            ("flight_cooldown", Json::num(self.flight_cooldown as f64)),
            ("chaos", self.chaos.to_json()),
            ("load", self.load.to_json()),
        ])
    }

    /// Parses a recipe produced by [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Option<FleetWorldSpec> {
        if j.get_str("world") != Some("fleet-forensics-v1") {
            return None;
        }
        let tenants = match j.get("tenants")? {
            Json::Arr(arr) => arr
                .iter()
                .map(|t| {
                    Some(TenantWorldSpec {
                        name: t.get_str("name")?.to_string(),
                        cols: t.get_num("cols")? as usize,
                        rows: t.get_num("rows")? as usize,
                        spacing: t.get_num("spacing")?,
                        pattern: t.get_num("pattern")? as usize,
                        hidden: t.get_num("hidden")? as usize,
                        lstm_hidden: t.get_num("lstm_hidden")? as usize,
                        model_seed: tsc_obs::flight::u64_from_hex(t.get_str("model_seed")?)?,
                        env_seed: tsc_obs::flight::u64_from_hex(t.get_str("env_seed")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(FleetWorldSpec {
            tenants,
            decision_interval: j.get_num("decision_interval")? as u32,
            horizon: j.get_num("horizon")? as u32,
            fleet_seed: tsc_obs::flight::u64_from_hex(j.get_str("fleet_seed")?)?,
            supervisor: SupervisorConfig::from_json(j.get("supervisor")?)?,
            admission_capacity: match j.get("admission_capacity")? {
                Json::Null => None,
                Json::Num(n) => Some(*n as u64),
                _ => return None,
            },
            flight_capacity: j.get_num("flight_capacity")? as usize,
            flight_cooldown: j.get_num("flight_cooldown")? as u64,
            chaos: InfraChaosPlan::from_json(j.get("chaos")?)?,
            load: LoadPlan::from_json(j.get("load")?)?,
        })
    }

    /// Rebuilds the world: the fleet (flight recorder on, chaos plan
    /// installed, replay context stamped) plus each tenant's
    /// environment. Deterministic — two builds from the same spec are
    /// bit-identical.
    pub fn build(&self) -> Result<(FleetRuntime, Vec<TscEnv>), Box<dyn std::error::Error>> {
        self.build_with_flight(Some(FlightConfig {
            capacity: self.flight_capacity,
            cooldown: self.flight_cooldown,
        }))
    }

    /// [`build`](Self::build) with an explicit flight-recorder
    /// override — `None` disables recording entirely (the overhead
    /// gate's control arm; replay itself always records).
    pub fn build_with_flight(
        &self,
        flight: Option<FlightConfig>,
    ) -> Result<(FleetRuntime, Vec<TscEnv>), Box<dyn std::error::Error>> {
        let mut envs = Vec::new();
        let mut specs = Vec::new();
        for t in &self.tenants {
            let grid = Grid::build(GridConfig {
                cols: t.cols,
                rows: t.rows,
                spacing: t.spacing,
            })?;
            let pattern = *FlowPattern::ALL
                .get(t.pattern)
                .ok_or("flow pattern index out of range")?;
            let f = flows(&grid, pattern, &PatternConfig::default())?;
            let scenario = grid.scenario(&t.name, f)?;
            let env = TscEnv::new(
                scenario,
                SimConfig::default(),
                EnvConfig {
                    decision_interval: self.decision_interval,
                    episode_horizon: self.horizon,
                },
                0,
            )?;
            let model = PairUpLight::new(
                &env,
                PairUpLightConfig {
                    hidden: t.hidden,
                    lstm_hidden: t.lstm_hidden,
                    seed: t.model_seed,
                    ..Default::default()
                },
            );
            specs.push(TenantSpec {
                name: t.name.clone(),
                snapshot: model.policy_snapshot(),
                // The canonical forensics world serves with no
                // deadline: wall-clock outcomes cannot replay.
                serve_cfg: ServeConfig::default(),
                checkpoint: None,
                sla: Default::default(),
            });
            envs.push(env);
        }
        let mut fleet = FleetRuntime::new(
            FleetConfig {
                supervisor: self.supervisor,
                seed: self.fleet_seed,
                admission: self
                    .admission_capacity
                    .map(|capacity| AdmissionConfig { capacity }),
                flight,
                ..Default::default()
            },
            specs,
        );
        fleet.set_infra_chaos(self.chaos.clone())?;
        fleet.set_replay_context(self.to_json());
        Ok((fleet, envs))
    }

    /// Drives the canonical forensics loop for `steps` fleet steps:
    /// env `i` starts from `reset(env_seed)`, obs advance by whatever
    /// the fleet answered, offered load comes from the load plan.
    pub fn run(
        &self,
        fleet: &mut FleetRuntime,
        envs: &mut [TscEnv],
        steps: u64,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let mut obs: Vec<_> = envs
            .iter_mut()
            .zip(&self.tenants)
            .map(|(env, t)| env.reset(t.env_seed))
            .collect();
        for step in 0..steps {
            let offered = self.load.offered_all(self.fleet_seed, step, envs.len());
            let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
            let out = fleet.step_with_load(&views, &offered)?;
            for (i, (t, env)) in out.tenants.iter().zip(envs.iter_mut()).enumerate() {
                let s = env.step(&t.actions)?;
                if s.done {
                    return Err("episode horizon too short for the forensics run".into());
                }
                obs[i] = s.obs;
            }
        }
        Ok(())
    }
}

/// One frame-level divergence between the captured and replayed rings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMismatch {
    /// Fleet step of the diverging frame.
    pub step: u64,
    /// Which fields differ ([`FlightFrame::diff_fields`]; `slack_us`
    /// is never listed — wall-clock does not replay). Empty means the
    /// frame exists on one side only.
    pub fields: Vec<&'static str>,
}

/// The outcome of replaying one incident.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Frames in the captured incident.
    pub captured_frames: usize,
    /// Frames the replayed ring held over the same window.
    pub replayed_frames: usize,
    /// Every frame-level divergence (empty on a clean replay).
    pub mismatches: Vec<FrameMismatch>,
    /// Whether the rings' fold digests match (implied by zero
    /// mismatches; a cheap whole-window check).
    pub frames_digest_match: bool,
    /// The causal-correlation pass over the message plane.
    pub causal: Json,
}

impl ReplayReport {
    /// A clean, bit-for-bit replay.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
            && self.frames_digest_match
            && self.captured_frames == self.replayed_frames
    }

    /// The report as JSON (for `BENCH_forensics.json`).
    pub fn to_json(&self) -> Json {
        let mismatches = self
            .mismatches
            .iter()
            .map(|m| {
                Json::obj([
                    ("step", Json::num(m.step as f64)),
                    (
                        "fields",
                        Json::Arr(m.fields.iter().map(|f| Json::str(*f)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("captured_frames", Json::num(self.captured_frames as f64)),
            ("replayed_frames", Json::num(self.replayed_frames as f64)),
            ("clean", Json::Bool(self.clean())),
            ("mismatches", Json::Arr(mismatches)),
            ("causal", self.causal.clone()),
        ])
    }
}

/// Rebuilds the world from `incident.replay`, re-executes the
/// captured window (steps `0..=incident.step`), and diffs the
/// replayed ring frame-by-frame against the captured one.
///
/// # Errors
///
/// When the incident carries no parsable `fleet-forensics-v1` context,
/// or the rebuilt world fails to construct or run.
pub fn replay_incident(incident: &Incident) -> Result<ReplayReport, Box<dyn std::error::Error>> {
    let spec = FleetWorldSpec::from_json(&incident.replay)
        .ok_or("incident carries no fleet-forensics-v1 replay context")?;
    let (mut fleet, mut envs) = spec.build()?;
    // Re-execute exactly through the last captured frame's step. (An
    // automatic dump's `incident.step` is the in-flight step, a
    // snapshot's is one past it — the frames themselves are the
    // authoritative window either way.)
    let steps = incident.frames.last().map_or(0, |f| f.step + 1);
    spec.run(&mut fleet, &mut envs, steps)?;
    let replayed = fleet
        .tenant_flight(incident.tenant)
        .ok_or("rebuilt fleet has no flight recorder")?
        .frames();
    let causal = causal_report(&fleet, incident);
    Ok(diff_frames(&incident.frames, &replayed, causal))
}

/// Frame-by-frame diff of two rings, aligned on step index.
pub fn diff_frames(
    captured: &[FlightFrame],
    replayed: &[FlightFrame],
    causal: Json,
) -> ReplayReport {
    let mut mismatches = Vec::new();
    let find = |frames: &[FlightFrame], step: u64| frames.iter().find(|f| f.step == step).copied();
    for c in captured {
        match find(replayed, c.step) {
            Some(r) => {
                let fields = c.diff_fields(&r);
                if !fields.is_empty() {
                    mismatches.push(FrameMismatch {
                        step: c.step,
                        fields,
                    });
                }
            }
            None => mismatches.push(FrameMismatch {
                step: c.step,
                fields: Vec::new(),
            }),
        }
    }
    for r in replayed {
        if find(captured, r.step).is_none() {
            mismatches.push(FrameMismatch {
                step: r.step,
                fields: Vec::new(),
            });
        }
    }
    let fold = |frames: &[FlightFrame]| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in frames {
            for byte in f.digest().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    };
    ReplayReport {
        captured_frames: captured.len(),
        replayed_frames: replayed.len(),
        mismatches,
        frames_digest_match: fold(captured) == fold(replayed),
        causal,
    }
}

/// The causal-correlation pass: walks the replayed tenant's message
/// plane upstream. Under pairwise communication, the step-`t` forward
/// consumed messages published at `t − 1`
/// ([`ServeRuntime::last_partners`]), so any frame whose predecessor
/// was NOT policy-served (or panicked) ran on messages produced under
/// degradation — those are the frames to suspect first.
pub fn causal_report(fleet: &FleetRuntime, incident: &Incident) -> Json {
    let runtime: &ServeRuntime = fleet.tenant_runtime(incident.tenant);
    let partners: Vec<Json> = runtime
        .last_partners()
        .iter()
        .enumerate()
        .map(|(agent, &p)| {
            Json::obj([
                ("agent", Json::num(agent as f64)),
                ("upstream_partner", Json::num(p as f64)),
            ])
        })
        .collect();
    let mut degraded_upstream = Vec::new();
    let mut chaos_scoped = 0u64;
    for pair in incident.frames.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        if prev.served_by != 0 || prev.panicked {
            degraded_upstream.push(Json::num(cur.step as f64));
        }
        if cur.chaos_mask != 0 {
            chaos_scoped += 1;
        }
    }
    Json::obj([
        ("tenant", Json::num(incident.tenant as f64)),
        ("partners", Json::Arr(partners)),
        (
            "frames_with_degraded_upstream_messages",
            Json::Arr(degraded_upstream),
        ),
        ("frames_in_chaos_scope", Json::num(chaos_scoped as f64)),
        (
            "final_msg_digest",
            Json::str(tsc_obs::flight::u64_to_hex(runtime.last_message_digest())),
        ),
    ])
}
