//! Machine-readable benchmark reports.
//!
//! Benchmark binaries print human-readable tables; with `--json` they
//! *also* write a `BENCH_*.json` file at the repository root so CI and
//! tooling can track numbers across commits. The JSON value type is
//! the workspace-shared [`tsc_obs::Json`] (re-exported here): every
//! bench writer and every report reader — `obs_report`, the overhead
//! gate, CI — uses the same encoder/parser, so shapes can never drift
//! between the tool that writes a report and the tool that reads it.

use std::io;
use std::path::PathBuf;

pub use tsc_obs::Json;

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// Writes `report` as `<repo root>/<name>` and returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_report(name: &str, report: &Json) -> io::Result<PathBuf> {
    let path = repo_root().join(name);
    std::fs::write(&path, report.pretty())?;
    Ok(path)
}

/// Writes a Prometheus text-exposition page as `<repo root>/<name>`
/// (conventionally `BENCH_*.prom`, written alongside the same bench's
/// `BENCH_*.json` from [`tsc_serve::FleetRuntime::exposition`]) and
/// returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_prometheus(name: &str, page: &str) -> io::Result<PathBuf> {
    let path = repo_root().join(name);
    std::fs::write(&path, page)?;
    Ok(path)
}

/// Reads a `BENCH_*.json` report back from the repository root.
///
/// # Errors
///
/// `Ok(None)` when the file does not exist; `Err` for unreadable files
/// or files that do not parse as JSON.
pub fn read_report(name: &str) -> io::Result<Option<Json>> {
    let path = repo_root().join(name);
    match std::fs::read_to_string(&path) {
        Ok(text) => Json::parse(&text)
            .map(Some)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display()))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_contains_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn reports_round_trip_through_the_shared_json() {
        let j = Json::obj([
            ("name", Json::str("cell")),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::num(2.5)])),
        ]);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn missing_report_reads_as_none() {
        assert!(read_report("BENCH_definitely_not_there.json")
            .unwrap()
            .is_none());
    }
}
