//! Machine-readable benchmark reports.
//!
//! Benchmark binaries print human-readable tables; with `--json` they
//! *also* write a `BENCH_*.json` file at the repository root so CI and
//! tooling can track numbers across commits. The JSON encoder is
//! hand-rolled: the workspace is offline (no `serde_json`), and the
//! subset needed here — objects, arrays, strings, numbers, booleans —
//! is a page of code.

use std::io;
use std::path::PathBuf;

/// A JSON value. Build with the constructors, render with
/// [`Json::pretty`].
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor: `Json::obj([("key", value), …])`.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor (accepts anything convertible to `f64`).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).render(out, depth + 1);
                    out.push_str(": ");
                    v.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// Writes `report` as `<repo root>/<name>` and returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_report(name: &str, report: &Json) -> io::Result<PathBuf> {
    let path = repo_root().join(name);
    std::fs::write(&path, report.pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_with_escapes() {
        let j = Json::obj([
            ("name", Json::str("a \"quoted\"\nline")),
            ("count", Json::num(3u32)),
            ("ratio", Json::num(0.5)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::Null])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = j.pretty();
        assert!(text.contains("\"a \\\"quoted\\\"\\nline\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn repo_root_contains_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::num(200u32).pretty(), "200\n");
        assert_eq!(Json::num(2.25).pretty(), "2.25\n");
    }
}
