//! Captures git-describe-style build provenance at compile time so run
//! manifests can pin the exact source tree a run was produced by. The
//! build never fails when git (or the repository) is absent — the
//! manifest then records `unknown`.

use std::process::Command;

fn main() {
    let git = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=TSC_OBS_GIT_DESCRIBE={git}");
    // Re-stamp when the checked-out commit moves; harmless if the path
    // does not exist (cargo ignores missing rerun-if-changed files).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
