//! Property tests: histogram merging is exactly combined recording,
//! percentiles stay within bucket resolution of the true sample
//! quantile, JSONL round-trips arbitrary records, and the flight
//! recorder's ring drops exactly the oldest frames on wraparound.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsc_obs::{parse_jsonl, FlightFrame, FlightRecorder, Histogram, Json};

/// Deterministic pseudo-random sample set in nanoseconds, spanning the
/// histogram's full range (sub-µs to ~1 s).
fn samples(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let exponent = rng.gen_range(0..10u32); // decades: 1ns..1s
            let mantissa = 1 + rng.gen_range(0..1000u64);
            mantissa * 10u64.pow(exponent) % 1_200_000_000
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging independently recorded histograms produces exactly the
    /// histogram of the combined sample stream — same buckets, same
    /// extrema, and therefore the same percentile at every quantile.
    #[test]
    fn merged_histogram_matches_combined(
        seed in 0u64..1000,
        na in 0usize..200,
        nb in 0usize..200,
    ) {
        let a_samples = samples(seed, na);
        let b_samples = samples(seed.wrapping_add(1), nb);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &ns in &a_samples {
            a.record_ns(ns);
            combined.record_ns(ns);
        }
        for &ns in &b_samples {
            b.record_ns(ns);
            combined.record_ns(ns);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &combined);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let merged_p = a.percentile_us(q);
            let combined_p = combined.percentile_us(q);
            prop_assert_eq!(merged_p, combined_p, "q={}", q);
        }
    }

    /// An interior percentile is within one bucket (×RATIO) of the true
    /// sample quantile, and q=0 / q=1 are exact.
    #[test]
    fn percentiles_are_within_bucket_resolution(
        seed in 0u64..1000,
        n in 1usize..300,
    ) {
        let mut data = samples(seed, n);
        let mut h = Histogram::new();
        for &ns in &data {
            h.record_ns(ns);
        }
        data.sort_unstable();
        prop_assert_eq!(h.percentile_us(0.0), data[0] as f64 / 1_000.0);
        prop_assert_eq!(h.percentile_us(1.0), data[n - 1] as f64 / 1_000.0);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * n as f64).ceil().max(1.0) as usize).min(n);
            let truth_us = data[rank - 1] as f64 / 1_000.0;
            let read = h.percentile_us(q);
            // The bucket's upper edge can only overestimate, by at most
            // one ratio step; sub-µs samples all read as the first
            // bucket edge (1 µs).
            prop_assert!(read >= truth_us.min(1.0) - 1e-9,
                "q={} read={} truth={}", q, read, truth_us);
            prop_assert!(read <= truth_us.max(1.0) * Histogram::RATIO + 1e-9,
                "q={} read={} truth={}", q, read, truth_us);
        }
    }

    /// Over any frame count and capacity, the ring holds exactly the
    /// last `min(n, capacity)` frames in recording order — wraparound
    /// drops precisely the oldest, never reorders, and the counters
    /// account for every frame.
    #[test]
    fn flight_ring_wraparound_drops_exactly_the_oldest(
        capacity in 1usize..64,
        n in 0usize..300,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = FlightRecorder::new(capacity);
        let mut expected: Vec<FlightFrame> = Vec::new();
        for step in 0..n as u64 {
            let frame = FlightFrame {
                step,
                obs_digest: rng.gen(),
                msg_digest: rng.gen(),
                actions_digest: rng.gen(),
                served_by: rng.gen_range(0..3u8),
                level: rng.gen_range(0..4u8),
                state: rng.gen_range(0..4u8),
                panicked: rng.gen_bool(0.1),
                offered: rng.gen_range(1..100u64),
                chaos_mask: rng.gen(),
                slack_us: rng.gen_range(-1000..1000i64),
            };
            recorder.record(frame);
            expected.push(frame);
        }
        let keep = n.min(capacity);
        prop_assert_eq!(recorder.len(), keep);
        prop_assert_eq!(recorder.recorded(), n as u64);
        prop_assert_eq!(recorder.dropped(), (n - keep) as u64);
        prop_assert_eq!(recorder.frames(), expected[n - keep..].to_vec());
    }

    /// Compact-rendered records survive a JSONL write/parse cycle.
    #[test]
    fn jsonl_round_trips_random_records(seed in 0u64..1000, n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Json> = (0..n)
            .map(|i| {
                Json::obj([
                    ("type", Json::str("update")),
                    ("round", Json::num(i as f64)),
                    ("loss", Json::num(rng.gen_range(-10.0..10.0))),
                    ("note", Json::str(format!("r{}\t\"q\"", rng.gen_range(0..100u32)))),
                    ("flag", Json::Bool(rng.gen_range(0..2u32) == 1)),
                ])
            })
            .collect();
        let text: String = records.iter().map(|r| r.compact() + "\n").collect();
        let (parsed, warnings) = parse_jsonl(&text);
        prop_assert!(warnings.is_empty());
        prop_assert_eq!(parsed, records);
    }
}
