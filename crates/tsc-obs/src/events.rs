//! Structured JSONL event sink and reader.
//!
//! A run writes its manifest and every subsequent event as one compact
//! JSON object per line. Each record is rendered fully in memory and
//! appended with a **single** `write_all` on a file opened in append
//! mode, so a crash (or a disk-full error) can at worst leave one torn
//! line at the tail — it can never corrupt records already on disk.
//! [`read_jsonl`] tolerates exactly that failure mode: a torn tail
//! line is skipped with a typed [`JsonlWarning`] instead of failing the
//! whole read.
//!
//! For tests, [`EventSink::inject_write_fault`] schedules a torn write
//! (the obs-side analogue of the trainer's `FaultPlan` checkpoint-write
//! fault): the sink writes only a prefix of the faulted record and then
//! surfaces an I/O error, exactly like a process dying mid-append.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;

/// An injected write failure: record number `after_records` (0-based)
/// is torn after `keep_bytes` bytes and the write fails. Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteFault {
    /// Index of the record whose write fails (0 = the next record).
    pub after_records: u64,
    /// How many bytes of the doomed record still reach the file.
    pub keep_bytes: usize,
}

/// Appending JSONL writer. One [`emit`](EventSink::emit) call = one
/// complete line = one `write_all`.
#[derive(Debug)]
pub struct EventSink {
    file: File,
    path: PathBuf,
    records: u64,
    fault: Option<WriteFault>,
}

impl EventSink {
    /// Creates (truncating) `path` and returns a sink over it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(EventSink {
            file,
            path,
            records: 0,
            fault: None,
        })
    }

    /// Opens `path` for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(EventSink {
            file,
            path,
            records: 0,
            fault: None,
        })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records emitted through this sink (successful `emit` calls).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Schedules one torn write (test instrumentation; see the module
    /// docs). `after_records` counts from the sink's current position.
    pub fn inject_write_fault(&mut self, fault: WriteFault) {
        self.fault = Some(WriteFault {
            after_records: self.records + fault.after_records,
            keep_bytes: fault.keep_bytes,
        });
    }

    /// Appends `record` as one compact JSON line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (and fires any injected fault).
    /// On error the tail of the file may hold one torn line; previously
    /// emitted records are untouched.
    pub fn emit(&mut self, record: &Json) -> io::Result<()> {
        let mut line = record.compact();
        line.push('\n');
        if let Some(fault) = self.fault {
            if fault.after_records == self.records {
                self.fault = None;
                let keep = fault.keep_bytes.min(line.len().saturating_sub(1));
                self.file.write_all(&line.as_bytes()[..keep])?;
                self.file.flush()?;
                return Err(io::Error::other(
                    "injected JSONL write fault: record torn mid-line",
                ));
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.records += 1;
        Ok(())
    }
}

/// A non-fatal irregularity found while reading a JSONL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonlWarning {
    /// The final line is unterminated and does not parse — the
    /// signature of a write torn by a crash or a full disk. The line
    /// was skipped.
    TornTail {
        /// 1-based line number.
        line: usize,
        /// Bytes in the torn fragment.
        len: usize,
    },
    /// An interior line failed to parse and was skipped.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Parse failure description.
        error: String,
    },
}

impl std::fmt::Display for JsonlWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlWarning::TornTail { line, len } => {
                write!(f, "line {line}: torn tail ({len} bytes), skipped")
            }
            JsonlWarning::BadLine { line, error } => {
                write!(f, "line {line}: unparsable record skipped ({error})")
            }
        }
    }
}

/// Reads every parsable record of a JSONL file, reporting (not
/// failing on) torn or malformed lines.
///
/// # Errors
///
/// Propagates filesystem failures only; parse problems come back as
/// [`JsonlWarning`]s.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<(Vec<Json>, Vec<JsonlWarning>)> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_jsonl(&text))
}

/// [`read_jsonl`] over an in-memory buffer.
pub fn parse_jsonl(text: &str) -> (Vec<Json>, Vec<JsonlWarning>) {
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    for (i, chunk) in text.split_inclusive('\n').enumerate() {
        // An unterminated chunk is necessarily the file's last line.
        let terminated = chunk.ends_with('\n');
        let line = chunk.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(value) => records.push(value),
            Err(e) => {
                if terminated {
                    warnings.push(JsonlWarning::BadLine {
                        line: i + 1,
                        error: e.to_string(),
                    });
                } else {
                    warnings.push(JsonlWarning::TornTail {
                        line: i + 1,
                        len: line.len(),
                    });
                }
            }
        }
    }
    (records, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tsc-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn record(i: u64) -> Json {
        Json::obj([
            ("type", Json::str("update")),
            ("round", Json::num(i as f64)),
        ])
    }

    #[test]
    fn emit_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let mut sink = EventSink::create(&path).unwrap();
        for i in 0..5 {
            sink.emit(&record(i)).unwrap();
        }
        assert_eq!(sink.records(), 5);
        let (records, warnings) = read_jsonl(&path).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(records.len(), 5);
        assert_eq!(records[3].get_num("round"), Some(3.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_mode_continues_an_existing_file() {
        let path = tmp("append.jsonl");
        EventSink::create(&path).unwrap().emit(&record(0)).unwrap();
        EventSink::append(&path).unwrap().emit(&record(1)).unwrap();
        let (records, warnings) = read_jsonl(&path).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_never_corrupts_prior_records() {
        let path = tmp("torn.jsonl");
        let mut sink = EventSink::create(&path).unwrap();
        for i in 0..3 {
            sink.emit(&record(i)).unwrap();
        }
        sink.inject_write_fault(WriteFault {
            after_records: 0,
            keep_bytes: 9,
        });
        let err = sink.emit(&record(3)).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        let (records, warnings) = read_jsonl(&path).unwrap();
        assert_eq!(records.len(), 3, "prior records intact");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.get_num("round"), Some(i as f64));
        }
        assert_eq!(
            warnings,
            vec![JsonlWarning::TornTail { line: 4, len: 9 }],
            "torn tail skipped with a typed warning"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_garbage_is_a_bad_line_not_a_torn_tail() {
        let (records, warnings) = parse_jsonl("{\"a\":1}\nnot json\n{\"b\":2}\n");
        assert_eq!(records.len(), 2);
        assert!(matches!(warnings[0], JsonlWarning::BadLine { line: 2, .. }));
    }

    #[test]
    fn unterminated_but_complete_tail_still_parses() {
        // A writer killed between write_all and nothing-else leaves a
        // complete line without its newline only if the newline was in
        // the same write; our writer includes it, so this case means
        // the record survived fully — accept it.
        let (records, warnings) = parse_jsonl("{\"a\":1}\n{\"b\":2}");
        assert_eq!(records.len(), 2);
        assert!(warnings.is_empty());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let (records, warnings) = parse_jsonl("\n{\"a\":1}\n\n");
        assert_eq!(records.len(), 1);
        assert!(warnings.is_empty());
    }
}
