//! A mergeable streaming latency histogram.
//!
//! Samples land in a fixed array of log-spaced buckets, so `record` is
//! a handful of integer operations and the memory footprint is constant
//! no matter how long a process runs. Two histograms recorded
//! independently (e.g. by parallel rollout workers, or by a trainer and
//! a serving runtime) [`merge`](Histogram::merge) into exactly the
//! histogram a single combined recorder would have produced: bucket
//! counts add, min/max take the extrema, totals add. Percentiles are
//! read off cumulative bucket counts and are exact to within one bucket
//! (a factor of [`Histogram::RATIO`]); `min`/`max`/`mean` are exact.
//!
//! This is the one histogram implementation shared by serving telemetry
//! (`tsc-serve`), the metrics registry, and span timing reports.

use std::time::Duration;

/// Number of log-spaced buckets.
const BUCKETS: usize = 64;
/// Lower edge of the first bucket, nanoseconds (1 µs).
const BASE_NS: f64 = 1_000.0;
/// Geometric ratio between bucket edges. 64 buckets at ×1.25 span
/// 1 µs … ≈ 1.2 s, far beyond any sane per-step deadline.
const RATIO: f64 = 1.25;

/// Streaming log-bucket histogram of durations (internally nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u128,
    /// Exact extrema (`u64::MAX` / `0` when empty).
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Number of buckets (exposed for exporters).
    pub const BUCKETS: usize = BUCKETS;
    /// Geometric ratio between bucket edges: the worst-case relative
    /// error of a percentile read.
    pub const RATIO: f64 = RATIO;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_for(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let idx = ((ns as f64) / BASE_NS).ln() / RATIO.ln();
        (idx.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper edge of bucket `i` in microseconds.
    pub fn bucket_edge_us(i: usize) -> f64 {
        BASE_NS * RATIO.powi(i as i32) / 1_000.0
    }

    /// Per-bucket sample counts (parallel to [`bucket_edge_us`]
    /// (Self::bucket_edge_us)).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Records one sample given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_for(ns)] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Folds `other` into `self`. The result is identical to the
    /// histogram a single recorder fed both sample streams would hold.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Latency at quantile `q`, in microseconds.
    ///
    /// Edge cases are exact: an empty histogram reads 0 for every `q`,
    /// `q <= 0` reads the exact minimum, and `q >= 1` reads the exact
    /// maximum. Interior quantiles return the upper edge of the bucket
    /// containing the rank-`⌈q·n⌉` sample, which overestimates by at
    /// most a factor of [`RATIO`](Self::RATIO).
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min_us();
        }
        if q >= 1.0 {
            return self.max_us();
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cum += count;
            if cum >= rank {
                return Self::bucket_edge_us(i);
            }
        }
        Self::bucket_edge_us(BUCKETS - 1)
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Exact minimum in microseconds (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_ns as f64 / 1_000.0
        }
    }

    /// Exact maximum in microseconds (0 when empty).
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero_everywhere() {
        let h = Histogram::new();
        for q in [-0.5, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.percentile_us(q), 0.0, "q={q}");
        }
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.min_us(), 0.0);
        assert_eq!(h.max_us(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(7));
        // Extremes are exact; interior quantiles are the sample's
        // bucket upper edge.
        assert_eq!(h.percentile_us(0.0), 7.0);
        assert_eq!(h.percentile_us(1.0), 7.0);
        let p50 = h.percentile_us(0.5);
        assert!((7.0..=7.0 * RATIO).contains(&p50), "{p50}");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn q0_and_q1_are_exact_extrema() {
        let mut h = Histogram::new();
        for us in [3u64, 90, 15, 1_000, 42] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.percentile_us(0.0), 3.0);
        assert_eq!(h.percentile_us(1.0), 1_000.0);
        // Clamped out-of-range quantiles behave like the extremes.
        assert_eq!(h.percentile_us(-1.0), 3.0);
        assert_eq!(h.percentile_us(1.5), 1_000.0);
    }

    #[test]
    fn interior_percentiles_bracket_the_data() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i * 10));
        }
        let (p50, p95, p99) = (
            h.percentile_us(0.50),
            h.percentile_us(0.95),
            h.percentile_us(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((500.0..=500.0 * RATIO).contains(&p50), "{p50}");
        assert!((990.0..=990.0 * RATIO).contains(&p99), "{p99}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let samples_a = [5u64, 80, 80, 2_000, 13];
        let samples_b = [1u64, 999, 40_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &us in &samples_a {
            a.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        for &us in &samples_b {
            b.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a, combined, "merge must be exactly combined recording");
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(12));
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
