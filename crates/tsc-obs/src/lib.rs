//! # tsc-obs — unified observability for the PairUpLight stack
//!
//! One zero-dependency layer shared by the simulator, the trainer, the
//! serving runtime, and the benchmark binaries:
//!
//! * **Metrics** — [`MetricsRegistry`]: named counters, gauges, and
//!   mergeable streaming [`Histogram`]s (the same log-bucket histogram
//!   that backs `tsc-serve`'s latency telemetry), with Prometheus-text
//!   and CSV exporters.
//! * **Spans** — [`span!`] RAII timers with nesting and per-span
//!   self/total accounting, wired into the hot paths (rollout
//!   collection, GAE, PPO minibatches, tape-free inference, sim
//!   stepping). Disabled (the default) a span costs one relaxed atomic
//!   load; the `obs_overhead` bench pins that cost on the rollout hot
//!   loop.
//! * **Events** — [`EventSink`]: a structured JSONL sink with
//!   single-write atomic append, torn-tail-tolerant reading
//!   ([`read_jsonl`]), and injectable write faults for tests. Runs
//!   open with a manifest record ([`build_info`], config fingerprint,
//!   and seed) and stream per-update training metrics and per-step
//!   serve events; `obs_report` (in `tsc-bench`) turns the file back
//!   into human tables.
//! * **Flight recorder** — [`FlightRecorder`]: a fixed-capacity,
//!   allocation-free-in-steady-state ring of compact per-step
//!   [`FlightFrame`]s, dumped on a [`FlightTrigger`] together with a
//!   deterministic replay context as a self-describing JSONL
//!   [`Incident`] file (format v1) that the `forensics` bin replays
//!   bit-for-bit.
//! * **JSON** — [`Json`]: the hand-rolled value type (render + parse)
//!   behind both the JSONL sink and the `BENCH_*.json` reports.
//! * **Scenario events** — [`record_scenario`]/[`latest_scenario`]: a
//!   bounded process-global ring of environment constructions (name +
//!   compiled-scenario fingerprint), so every bench report and run log
//!   is attributable to an exact world.
//!
//! Everything here is observation-only: attaching any of it to a
//! training run changes no RNG stream and no parameter — an
//! instrumented run is bit-identical to an uninstrumented one (pinned
//! by a tier-1 workspace test).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod fleet;
pub mod flight;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod scenario;
pub mod span;

pub use events::{parse_jsonl, read_jsonl, EventSink, JsonlWarning, WriteFault};
pub use fleet::{fleet_event, FleetEventKind};
pub use flight::{
    read_incident, write_incident, FlightFrame, FlightRecorder, FlightTrigger, Incident,
};
pub use hist::Histogram;
pub use json::{Json, ParseError};
pub use manifest::{build_info, BuildInfo};
pub use metrics::{escape_label_value, prom_name, MetricsRegistry};
pub use scenario::{drain_scenarios, latest_scenario, record_scenario, ScenarioEvent};
pub use span::{SpanGuard, SpanNode, SpanStat};
