//! Named metrics: counters, gauges, and histograms, with Prometheus
//! text and CSV exporters.
//!
//! Names are dotted lowercase (`train.updates`, `serve.step_latency`);
//! the Prometheus exporter rewrites separators to `_` as the exposition
//! format requires. Registries recorded independently (one per worker,
//! one per subsystem) [`merge`](MetricsRegistry::merge) losslessly:
//! counters add, histograms fold bucket-wise, gauges take the other
//! side's latest value.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::json::Json;

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `ns` into histogram `name` (created on first use).
    pub fn observe_ns(&mut self, name: &str, ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record_ns(ns);
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self` (counters add, histograms merge,
    /// `other`'s gauges win).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Histogram buckets are cumulative with `le` edges in
    /// microseconds; `_sum` is in microseconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &count) in h.buckets().iter().enumerate() {
                cum += count;
                if count > 0 || i + 1 == Histogram::BUCKETS {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{:.3}\"}} {cum}",
                        Histogram::bucket_edge_us(i)
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.total_ns() as f64 / 1_000.0);
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Renders the registry as CSV, one metric per row:
    /// `kind,name,count,value,p50_us,p95_us,p99_us,mean_us,min_us,max_us`
    /// (empty cells where a column does not apply).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("kind,name,count,value,p50_us,p95_us,p99_us,mean_us,min_us,max_us\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},,{value},,,,,,");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},,{value},,,,,,");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},{},,{},{},{},{},{},{}",
                h.count(),
                h.percentile_us(0.50),
                h.percentile_us(0.95),
                h.percentile_us(0.99),
                h.mean_us(),
                h.min_us(),
                h.max_us(),
            );
        }
        out
    }

    /// Snapshot as a JSON object (counters and gauges verbatim;
    /// histograms summarized by count and percentiles) — the shape the
    /// run-summary JSONL record uses.
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::num(v as f64))),
        );
        let gauges = Json::obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::num(v))));
        let hists = Json::obj(self.histograms.iter().map(|(k, h)| {
            (
                k.clone(),
                Json::obj([
                    ("count", Json::num(h.count() as f64)),
                    ("p50_us", Json::num(h.percentile_us(0.50))),
                    ("p95_us", Json::num(h.percentile_us(0.95))),
                    ("p99_us", Json::num(h.percentile_us(0.99))),
                    ("mean_us", Json::num(h.mean_us())),
                    ("min_us", Json::num(h.min_us())),
                    ("max_us", Json::num(h.max_us())),
                ]),
            )
        }));
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", hists),
        ])
    }
}

/// Rewrites a dotted metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`,
/// a leading digit is prefixed with `_`, and an empty name renders as
/// a single `_` — the exposition format forbids all three.
pub fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline
/// → `\n` (the three escapes the text exposition format defines).
/// Label *values* may hold any UTF-8 — unlike metric names, nothing
/// else is rewritten.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let mut m = MetricsRegistry::new();
        m.inc("train.updates");
        m.add("train.updates", 4);
        m.set_gauge("train.epsilon", 0.15);
        m.set_gauge("train.epsilon", 0.10);
        assert_eq!(m.counter("train.updates"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("train.epsilon"), Some(0.10));
    }

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("n", 2);
        b.add("n", 3);
        a.observe_ns("lat", 10_000);
        b.observe_ns("lat", 20_000);
        b.set_gauge("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(7.0));
    }

    #[test]
    fn prometheus_text_has_types_buckets_and_sane_names() {
        let mut m = MetricsRegistry::new();
        m.add("serve.fallbacks", 3);
        m.set_gauge("train.lr", 3e-4);
        m.observe_ns("serve.step-latency", 5_000);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE serve_fallbacks counter"));
        assert!(text.contains("serve_fallbacks 3"));
        assert!(text.contains("# TYPE train_lr gauge"));
        assert!(text.contains("# TYPE serve_step_latency histogram"));
        assert!(text.contains("serve_step_latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("serve_step_latency_count 1"));
    }

    #[test]
    fn prom_names_escape_spaces_dots_and_leading_digits() {
        assert_eq!(prom_name("ppo.minibatch"), "ppo_minibatch");
        assert_eq!(prom_name("serve step latency"), "serve_step_latency");
        assert_eq!(prom_name("train:lr"), "train:lr", "colons are legal");
        assert_eq!(prom_name("95th.pct"), "_95th_pct", "no leading digit");
        assert_eq!(prom_name(""), "_", "never an empty name");
        assert_eq!(prom_name("µs/step"), "_s_step", "non-ASCII rewritten");
    }

    #[test]
    fn label_values_escape_exactly_backslash_quote_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_label_value("tenant \"a\\b\"\n"),
            "tenant \\\"a\\\\b\\\"\\n"
        );
        assert_eq!(escape_label_value("döt.ok"), "döt.ok", "UTF-8 untouched");
    }

    #[test]
    fn exposition_format_is_locked_for_awkward_names() {
        let mut m = MetricsRegistry::new();
        m.add("ppo.minibatch", 2);
        m.add("95th percentile tracker", 1);
        m.set_gauge("serve.load factor", 0.5);
        m.observe_ns("ppo.minibatch", 1_500);
        let text = m.to_prometheus();
        // One locked line per kind: TYPE header then sample, with the
        // rewritten name — never the raw dotted/spaced one.
        assert!(text.contains("# TYPE ppo_minibatch counter\nppo_minibatch 2\n"));
        assert!(
            text.contains("# TYPE _95th_percentile_tracker counter\n_95th_percentile_tracker 1\n")
        );
        assert!(text.contains("# TYPE serve_load_factor gauge\nserve_load_factor 0.5\n"));
        assert!(text.contains("# TYPE ppo_minibatch histogram"));
        assert!(text.contains("ppo_minibatch_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("ppo_minibatch_sum 1.5\n"));
        assert!(text.contains("ppo_minibatch_count 1\n"));
        assert!(
            !text.contains("ppo.minibatch"),
            "raw name never leaks:\n{text}"
        );
        assert!(!text.contains("load factor"), "{text}");
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.set_gauge("b", 1.5);
        m.observe_ns("c", 2_000);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "{csv}");
        assert!(lines[1].starts_with("counter,a,,1"));
        assert!(lines[2].starts_with("gauge,b,,1.5"));
        assert!(lines[3].starts_with("histogram,c,1,,"));
    }

    #[test]
    fn json_snapshot_contains_all_kinds() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.set_gauge("b", 2.0);
        m.observe_ns("c", 3_000);
        let j = m.to_json();
        assert_eq!(j.get("counters").unwrap().get_num("a"), Some(1.0));
        assert_eq!(j.get("gauges").unwrap().get_num("b"), Some(2.0));
        assert_eq!(
            j.get("histograms")
                .unwrap()
                .get("c")
                .unwrap()
                .get_num("count"),
            Some(1.0)
        );
    }
}
