//! Lightweight RAII span timers for profiling hot paths.
//!
//! A span is entered with the [`span!`](crate::span!) macro and timed
//! until its guard drops. Spans nest: each records its **total** time
//! (wall clock while the guard was alive) and its **self** time (total
//! minus the time spent in child spans entered on the same thread), so
//! a report answers "where does the time actually go" rather than
//! double-counting parents and children.
//!
//! Collection is off by default and toggled globally with
//! [`set_enabled`]. Disabled, entering a span costs one relaxed atomic
//! load and constructs a no-op guard — cheap enough to leave `span!`
//! calls in per-step simulation and inference loops permanently (the
//! `obs_overhead` bench measures this). Enabled, spans accumulate into
//! thread-local tables that are folded into a global registry when the
//! thread exits (scoped rollout workers flush before their round
//! returns) and whenever [`report`] runs on the owning thread.
//!
//! Each occurrence is attributed to its **parent** — the innermost
//! span open on the same thread at entry time — so the registry holds
//! the call tree, not just a flat table: [`report`] aggregates by name
//! (the flat view), [`report_tree`] keeps the `(name, parent)` edges,
//! and [`report_json`] renders them as flamegraph-style JSON
//! (`{name, parent, count, total_ns, self_ns}` per edge).
//!
//! Instrumentation is strictly out-of-band: spans never touch RNG
//! streams, parameters, or any training state, so an instrumented run
//! is bit-identical to an uninstrumented one.
//!
//! A recursive span (same name re-entered while alive) adds its full
//! elapsed time to the outer occurrence's child time, so `total` for
//! that name counts nested occurrences multiply — keep recursive call
//! trees in mind when reading reports.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated timing of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed occurrences.
    pub count: u64,
    /// Wall-clock nanoseconds while a guard with this name was alive.
    pub total_ns: u64,
    /// `total_ns` minus time spent inside child spans.
    pub self_ns: u64,
}

/// One `(name, parent)` edge of the span call tree, as aggregated by
/// [`report_tree`]. The same name can appear under several parents
/// (e.g. `sim.observe_all` under both reset and step paths); summing a
/// name's stats across its parents reproduces [`report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// The innermost enclosing span at entry time (`None` = root).
    pub parent: Option<&'static str>,
    /// Aggregated timing of this `(name, parent)` edge.
    pub stat: SpanStat,
}

/// Registry key: span name plus the name of the span it was entered
/// under (`None` for root spans).
type SpanKey = (&'static str, Option<&'static str>);

fn global() -> &'static Mutex<BTreeMap<SpanKey, SpanStat>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<SpanKey, SpanStat>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Per-thread span state: the stack of open spans (names + child-time
/// accumulators) plus locally aggregated stats. Flushed into the
/// global registry when the thread exits (the `Drop` impl —
/// thread-local destructors run on thread exit) and by
/// [`report`]/[`reset`].
#[derive(Default)]
struct LocalSpans {
    child_ns: Vec<u64>,
    /// Names of the open spans, innermost last (parent attribution).
    stack: Vec<&'static str>,
    stats: BTreeMap<SpanKey, SpanStat>,
}

impl LocalSpans {
    fn flush(&mut self) {
        if self.stats.is_empty() {
            return;
        }
        let mut global = global().lock().expect("span registry lock");
        for (key, stat) in std::mem::take(&mut self.stats) {
            let slot = global.entry(key).or_default();
            slot.count += stat.count;
            slot.total_ns += stat.total_ns;
            slot.self_ns += stat.self_ns;
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::default());
}

/// Turns span collection on or off globally (all threads).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of every span name's aggregated stats, sorted by name.
/// Flushes the calling thread's local table first; other live threads'
/// unflushed spans appear once those threads fully exit. Note that
/// `thread::scope` only waits for worker *closures* to return — the
/// exit-time TLS flush can land after the scope does — so workers
/// whose spans must be visible in a report taken right after the
/// scope call [`flush_thread`] before returning.
pub fn report() -> Vec<(&'static str, SpanStat)> {
    flush_thread();
    let mut by_name: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
    for (&(name, _parent), &stat) in global().lock().expect("span registry lock").iter() {
        let slot = by_name.entry(name).or_default();
        slot.count += stat.count;
        slot.total_ns += stat.total_ns;
        slot.self_ns += stat.self_ns;
    }
    by_name.into_iter().collect()
}

/// Like [`report`], but keeping the call tree: one [`SpanNode`] per
/// observed `(name, parent)` edge, sorted by name then parent. The
/// basis of the flamegraph-style JSON ([`report_json`]).
pub fn report_tree() -> Vec<SpanNode> {
    flush_thread();
    global()
        .lock()
        .expect("span registry lock")
        .iter()
        .map(|(&(name, parent), &stat)| SpanNode { name, parent, stat })
        .collect()
}

/// The span report as flamegraph-style JSON: an array of
/// `{name, parent, count, total_ns, self_ns}` objects, one per
/// `(name, parent)` edge (`parent` is `null` for root spans). Folding
/// `self_ns` up the `parent` chain reconstructs the flame stacks.
pub fn report_json() -> Json {
    Json::Arr(
        report_tree()
            .into_iter()
            .map(|node| {
                Json::obj([
                    ("name", Json::str(node.name)),
                    (
                        "parent",
                        match node.parent {
                            Some(p) => Json::str(p),
                            None => Json::Null,
                        },
                    ),
                    ("count", Json::num(node.stat.count as f64)),
                    ("total_ns", Json::num(node.stat.total_ns as f64)),
                    ("self_ns", Json::num(node.stat.self_ns as f64)),
                ])
            })
            .collect(),
    )
}

/// Folds the calling thread's local span table into the global
/// registry now, instead of waiting for the thread-local destructor
/// at thread exit. Call at the end of a scoped worker closure whose
/// spans must be visible to a [`report`] taken as soon as the scope
/// returns. No-op when the thread has recorded nothing.
pub fn flush_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Clears the global registry and the calling thread's local table.
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.stats.clear();
    });
    global().lock().expect("span registry lock").clear();
}

/// RAII timer created by [`span!`](crate::span!). Records on drop; a
/// guard created while collection was disabled is a no-op.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Enters a span. Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return SpanGuard { name, start: None };
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.child_ns.push(0);
            l.stack.push(name);
        });
        SpanGuard {
            name,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let child = l.child_ns.pop().unwrap_or(0);
            l.stack.pop();
            let parent = l.stack.last().copied();
            let stat = l.stats.entry((self.name, parent)).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
            stat.self_ns += elapsed.saturating_sub(child);
            if let Some(parent) = l.child_ns.last_mut() {
                *parent += elapsed;
            }
        });
    }
}

/// Enters a named RAII span: `let _span = span!("ppo_update");`.
///
/// The guard must be bound to a named variable — `let _ = span!(…)`
/// drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Span state (the enabled flag and the registry) is global; the
    // harness runs tests concurrently, so every test that toggles the
    // flag serializes on this lock and uses names unique to itself.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = serial();
        set_enabled(false);
        {
            let _g = crate::span!("test.disabled.outer");
        }
        assert!(report()
            .iter()
            .all(|(name, _)| *name != "test.disabled.outer"));
    }

    #[test]
    fn nested_spans_split_self_and_total_time() {
        let _serial = serial();
        set_enabled(true);
        {
            let _outer = crate::span!("test.nested.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = crate::span!("test.nested.inner");
                std::thread::sleep(Duration::from_millis(4));
            }
        }
        set_enabled(false);
        let stats: BTreeMap<_, _> = report().into_iter().collect();
        let outer = stats["test.nested.outer"];
        let inner = stats["test.nested.inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inner's time is outer's child time.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "self excludes the child: self={} total={} inner={}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        assert_eq!(inner.self_ns, inner.total_ns, "leaf span is all self time");
    }

    #[test]
    fn worker_thread_spans_fold_into_the_report_after_join() {
        let _serial = serial();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    {
                        let _g = crate::span!("test.worker.span");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let stats: BTreeMap<_, _> = report().into_iter().collect();
        assert!(stats["test.worker.span"].count >= 2);
    }

    #[test]
    fn report_tree_attributes_parents_and_json_mirrors_it() {
        let _serial = serial();
        set_enabled(true);
        {
            let _outer = crate::span!("test.tree.outer");
            let _inner = crate::span!("test.tree.inner");
        }
        {
            let _root = crate::span!("test.tree.inner");
        }
        set_enabled(false);
        let tree = report_tree();
        assert!(tree
            .iter()
            .any(|n| n.name == "test.tree.inner" && n.parent == Some("test.tree.outer")));
        assert!(tree
            .iter()
            .any(|n| n.name == "test.tree.inner" && n.parent.is_none()));
        assert!(tree
            .iter()
            .any(|n| n.name == "test.tree.outer" && n.parent.is_none()));
        // report() is exactly report_tree() summed across parents.
        let by_name: BTreeMap<_, _> = report().into_iter().collect();
        let summed: u64 = tree
            .iter()
            .filter(|n| n.name == "test.tree.inner")
            .map(|n| n.stat.count)
            .sum();
        assert_eq!(by_name["test.tree.inner"].count, summed);
        // The flamegraph JSON carries the same edges.
        let Json::Arr(rows) = report_json() else {
            panic!("report_json is an array");
        };
        let edge = rows
            .iter()
            .find(|r| {
                r.get_str("name") == Some("test.tree.inner")
                    && r.get_str("parent") == Some("test.tree.outer")
            })
            .expect("child edge present in JSON");
        assert!(edge.get_num("count").unwrap() >= 1.0);
        assert!(edge.get_num("total_ns").is_some());
        assert!(edge.get_num("self_ns").is_some());
    }

    #[test]
    fn repeated_spans_accumulate_counts() {
        let _serial = serial();
        set_enabled(true);
        for _ in 0..5 {
            let _g = crate::span!("test.repeat.span");
        }
        set_enabled(false);
        let stats: BTreeMap<_, _> = report().into_iter().collect();
        assert!(stats["test.repeat.span"].count >= 5);
    }
}
