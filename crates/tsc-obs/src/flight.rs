//! The flight recorder: a fixed-capacity per-tenant ring of compact
//! serve-step frames, plus the self-describing JSONL incident file it
//! dumps when something goes wrong.
//!
//! A [`FlightRecorder`] preallocates its whole ring at construction
//! and records one [`FlightFrame`] per serve step with **zero
//! allocation in steady state** — frames are `Copy` PODs written into
//! the preallocated buffer; when the ring is full the oldest frame is
//! overwritten. Recording is observation-only: nothing here touches an
//! RNG stream or a decision, so a fleet with recorders attached is
//! bit-identical to one without (pinned by a tier-1 digest test in
//! `tsc-serve`).
//!
//! When a trigger fires ([`FlightTrigger`]: a caught panic, a breaker
//! opening, a quarantine entry, a shed-cap hit, or an operator
//! `snapshot()`), the serving layer wraps the ring's contents plus its
//! **replay context** — everything needed to reconstruct the world
//! deterministically (scenario text + fingerprint, seeds, chaos /
//! infra-chaos / load plans, config fingerprints) — into an
//! [`Incident`] and writes it with [`write_incident`] as incident file
//! format v1: one JSONL file whose first line is a self-describing
//! header, second line the replay context, and every following line
//! one frame. [`read_incident`] reads it back (torn tails are
//! tolerated, like every JSONL reader here); the `forensics` bin in
//! `tsc-bench` rebuilds the world from the context, re-executes the
//! captured window, and diffs it frame-by-frame against the recording.
//!
//! `u64` digests, seeds, and fingerprints are serialized as `0x…` hex
//! strings — JSON numbers are `f64` and would silently round anything
//! past 2⁵³.

use std::io;
use std::path::Path;

use crate::events::{read_jsonl, EventSink};
use crate::json::Json;

/// Incident file format version written by [`write_incident`].
pub const INCIDENT_VERSION: u32 = 1;

/// Sentinel for [`FlightFrame::slack_us`]: the step ran with no
/// deadline configured.
pub const NO_DEADLINE: i64 = i64::MIN;

/// One serve step of one tenant, compacted to fixed-size fields so the
/// ring never allocates. Digests stand in for the full vectors (the
/// joint observation, the delivered message plane, the action vector);
/// a forensics replay regenerates the vectors themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightFrame {
    /// Fleet step index.
    pub step: u64,
    /// FNV-1a digest of the tenant's joint observation.
    pub obs_digest: u64,
    /// FNV-1a digest of the delivered partner-message plane (what the
    /// policy actually consumed this step).
    pub msg_digest: u64,
    /// FNV-1a digest of the chosen action vector.
    pub actions_digest: u64,
    /// Who answered ([`ServedBy`] dense index).
    pub served_by: u8,
    /// Admission service level (dense index; 0 = Full).
    pub level: u8,
    /// Supervisor state after the step (dense index).
    pub state: u8,
    /// Whether the policy step panicked (caught and isolated).
    pub panicked: bool,
    /// Offered load (requests) admission saw for this tenant.
    pub offered: u64,
    /// Active infra-chaos faults: bit `i` set when fault `i` of the
    /// installed plan had this tenant in scope at this step.
    pub chaos_mask: u32,
    /// Deadline slack in microseconds (budget − spent; negative =
    /// overrun). [`NO_DEADLINE`] when no deadline was configured.
    /// Wall-clock derived, so **excluded** from [`digest`]
    /// (Self::digest) and from replay diffs.
    pub slack_us: i64,
}

impl FlightFrame {
    /// FNV-1a digest over every deterministic field — everything
    /// except `slack_us`, which is wall-clock derived and therefore
    /// not replayable.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for i in 0..8 {
                h ^= (v >> (i * 8)) & 0xff;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.step);
        mix(self.obs_digest);
        mix(self.msg_digest);
        mix(self.actions_digest);
        mix(u64::from(self.served_by));
        mix(u64::from(self.level));
        mix(u64::from(self.state));
        mix(u64::from(self.panicked));
        mix(self.offered);
        mix(u64::from(self.chaos_mask));
        h
    }

    /// The deterministic fields where this frame differs from `other`
    /// (`slack_us` deliberately not compared). Empty = replay-equal.
    pub fn diff_fields(&self, other: &FlightFrame) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut check = |name, same: bool| {
            if !same {
                out.push(name);
            }
        };
        check("step", self.step == other.step);
        check("obs_digest", self.obs_digest == other.obs_digest);
        check("msg_digest", self.msg_digest == other.msg_digest);
        check(
            "actions_digest",
            self.actions_digest == other.actions_digest,
        );
        check("served_by", self.served_by == other.served_by);
        check("level", self.level == other.level);
        check("state", self.state == other.state);
        check("panicked", self.panicked == other.panicked);
        check("offered", self.offered == other.offered);
        check("chaos_mask", self.chaos_mask == other.chaos_mask);
        out
    }

    /// The frame as one incident-file JSONL record
    /// (`"type": "frame"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::str("frame")),
            ("step", Json::num(self.step as f64)),
            ("obs", Json::str(u64_to_hex(self.obs_digest))),
            ("msg", Json::str(u64_to_hex(self.msg_digest))),
            ("actions", Json::str(u64_to_hex(self.actions_digest))),
            ("served_by", Json::num(f64::from(self.served_by))),
            ("level", Json::num(f64::from(self.level))),
            ("state", Json::num(f64::from(self.state))),
            ("panicked", Json::Bool(self.panicked)),
            ("offered", Json::num(self.offered as f64)),
            ("chaos_mask", Json::num(f64::from(self.chaos_mask))),
            (
                "slack_us",
                if self.slack_us == NO_DEADLINE {
                    Json::Null
                } else {
                    Json::num(self.slack_us as f64)
                },
            ),
        ])
    }

    /// Parses a `"type": "frame"` record. `None` on shape mismatch.
    pub fn from_json(j: &Json) -> Option<FlightFrame> {
        Some(FlightFrame {
            step: j.get_num("step")? as u64,
            obs_digest: u64_from_hex(j.get_str("obs")?)?,
            msg_digest: u64_from_hex(j.get_str("msg")?)?,
            actions_digest: u64_from_hex(j.get_str("actions")?)?,
            served_by: j.get_num("served_by")? as u8,
            level: j.get_num("level")? as u8,
            state: j.get_num("state")? as u8,
            panicked: matches!(j.get("panicked"), Some(Json::Bool(true))),
            offered: j.get_num("offered")? as u64,
            chaos_mask: j.get_num("chaos_mask")? as u32,
            slack_us: match j.get("slack_us") {
                Some(Json::Num(n)) => *n as i64,
                _ => NO_DEADLINE,
            },
        })
    }
}

/// A fixed-capacity ring of [`FlightFrame`]s. The buffer is fully
/// preallocated at construction; [`record`](Self::record) never
/// allocates, and once full each new frame overwrites exactly the
/// oldest one (property-tested in `tests/proptests.rs`).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightFrame>,
    /// Next write position.
    head: usize,
    /// Live frames (≤ capacity).
    len: usize,
    /// Frames ever recorded (monotone).
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` frames (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: vec![FlightFrame::default(); capacity],
            head: 0,
            len: 0,
            recorded: 0,
        }
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Frames currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded (or the ring was cleared).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Frames ever recorded through this recorder.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Frames overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len as u64
    }

    /// Appends one frame, overwriting the oldest when full. Never
    /// allocates.
    pub fn record(&mut self, frame: FlightFrame) {
        self.buf[self.head] = frame;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
        self.recorded += 1;
    }

    /// The held frames, oldest first (allocates — dump path only).
    pub fn frames(&self) -> Vec<FlightFrame> {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(|i| self.buf[(start + i) % cap]).collect()
    }

    /// Empties the ring (capacity and the `recorded` total persist).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// What fired an incident dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightTrigger {
    /// The tenant's policy step panicked (caught and isolated).
    Panic,
    /// The tenant's circuit breaker opened.
    BreakerOpen,
    /// The tenant entered quarantine.
    Quarantine,
    /// Admission shed the tenant while its shed budget was exhausted
    /// (or the first shed of a tenant whose SLA forbids shedding).
    ShedCap,
    /// An operator asked for a dump explicitly.
    Snapshot,
}

impl FlightTrigger {
    /// Stable wire name (the `"trigger"` field of the header record).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightTrigger::Panic => "panic",
            FlightTrigger::BreakerOpen => "breaker_open",
            FlightTrigger::Quarantine => "quarantine",
            FlightTrigger::ShedCap => "shed_cap",
            FlightTrigger::Snapshot => "snapshot",
        }
    }

    /// Parses a wire name back. `None` for unknown names.
    pub fn parse(s: &str) -> Option<FlightTrigger> {
        Some(match s {
            "panic" => FlightTrigger::Panic,
            "breaker_open" => FlightTrigger::BreakerOpen,
            "quarantine" => FlightTrigger::Quarantine,
            "shed_cap" => FlightTrigger::ShedCap,
            "snapshot" => FlightTrigger::Snapshot,
            _ => return None,
        })
    }
}

/// One dumped incident: the ring's frames at trigger time plus the
/// replay context the serving layer attached. The context's shape is
/// owned by the dumper (the fleet writes scenario text, seeds, and
/// plans — see `tsc-serve`); this layer only promises to round-trip
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Tenant index within the fleet.
    pub tenant: usize,
    /// Operator-facing tenant name.
    pub tenant_name: String,
    /// What fired the dump.
    pub trigger: FlightTrigger,
    /// Fleet step at which the trigger fired.
    pub step: u64,
    /// Everything needed to rebuild the world deterministically.
    pub replay: Json,
    /// The ring's frames at trigger time, oldest first.
    pub frames: Vec<FlightFrame>,
}

impl Incident {
    /// Folds every frame's [`FlightFrame::digest`] into one ring
    /// digest (order-sensitive).
    pub fn frames_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in &self.frames {
            let d = f.digest();
            for i in 0..8 {
                h ^= (d >> (i * 8)) & 0xff;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Writes `incident` to `path` as incident file format v1 (see the
/// module docs for the line layout).
///
/// # Errors
///
/// Propagates filesystem failures; a torn write leaves at most one
/// torn tail line, which [`read_incident`] skips.
pub fn write_incident(path: impl AsRef<Path>, incident: &Incident) -> io::Result<()> {
    let mut sink = EventSink::create(path)?;
    sink.emit(&Json::obj([
        ("type", Json::str("incident")),
        ("version", Json::num(f64::from(INCIDENT_VERSION))),
        ("tenant", Json::num(incident.tenant as f64)),
        ("name", Json::str(incident.tenant_name.clone())),
        ("trigger", Json::str(incident.trigger.as_str())),
        ("step", Json::num(incident.step as f64)),
        ("frames", Json::num(incident.frames.len() as f64)),
    ]))?;
    sink.emit(&Json::obj([
        ("type", Json::str("replay_context")),
        ("context", incident.replay.clone()),
    ]))?;
    for frame in &incident.frames {
        sink.emit(&frame.to_json())?;
    }
    Ok(())
}

/// Reads an incident file written by [`write_incident`]. A torn tail
/// line (crash mid-dump) is skipped; missing header or replay context
/// is a format error.
///
/// # Errors
///
/// Filesystem failures, and `InvalidData`-style errors for files that
/// are not incident format v1.
pub fn read_incident(path: impl AsRef<Path>) -> io::Result<Incident> {
    let (records, _warnings) = read_jsonl(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let header = records
        .first()
        .filter(|r| r.get_str("type") == Some("incident"))
        .ok_or_else(|| bad("not an incident file: missing header record"))?;
    let version = header.get_num("version").unwrap_or(0.0) as u32;
    if version != INCIDENT_VERSION {
        return Err(bad(&format!(
            "unsupported incident version {version} (expected {INCIDENT_VERSION})"
        )));
    }
    let context = records
        .get(1)
        .filter(|r| r.get_str("type") == Some("replay_context"))
        .and_then(|r| r.get("context"))
        .ok_or_else(|| bad("incident file missing replay_context record"))?;
    let frames = records[2..]
        .iter()
        .filter(|r| r.get_str("type") == Some("frame"))
        .map(FlightFrame::from_json)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| bad("malformed frame record"))?;
    Ok(Incident {
        tenant: header.get_num("tenant").unwrap_or(0.0) as usize,
        tenant_name: header.get_str("name").unwrap_or("").to_string(),
        trigger: header
            .get_str("trigger")
            .and_then(FlightTrigger::parse)
            .ok_or_else(|| bad("unknown incident trigger"))?,
        step: header.get_num("step").unwrap_or(0.0) as u64,
        replay: context.clone(),
        frames,
    })
}

/// Renders a `u64` as a `0x…` hex string (exact — JSON numbers are
/// `f64` and round past 2⁵³).
pub fn u64_to_hex(v: u64) -> String {
    format!("{v:#018x}")
}

/// Parses [`u64_to_hex`] output (leading `0x` optional).
pub fn u64_from_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(step: u64) -> FlightFrame {
        FlightFrame {
            step,
            obs_digest: 0xdead_beef ^ step,
            msg_digest: 0x1234_5678_9abc_def0u64.wrapping_add(step),
            actions_digest: step.wrapping_mul(0x9e37_79b9),
            served_by: (step % 3) as u8,
            level: (step % 4) as u8,
            state: (step % 4) as u8,
            panicked: step.is_multiple_of(7),
            offered: step + 1,
            chaos_mask: (step as u32) & 0xf,
            slack_us: if step.is_multiple_of(2) {
                NO_DEADLINE
            } else {
                -5
            },
        }
    }

    #[test]
    fn frame_json_round_trips_exactly() {
        for step in [0, 1, 6, 7, u64::from(u32::MAX) + 3] {
            let f = frame(step);
            let back = FlightFrame::from_json(&Json::parse(&f.to_json().compact()).unwrap())
                .expect("round trip");
            assert_eq!(f, back);
        }
        // Full-width digests survive (the reason for hex strings).
        let f = FlightFrame {
            obs_digest: u64::MAX,
            msg_digest: u64::MAX - 1,
            ..FlightFrame::default()
        };
        let back = FlightFrame::from_json(&f.to_json()).unwrap();
        assert_eq!(back.obs_digest, u64::MAX);
        assert_eq!(back.msg_digest, u64::MAX - 1);
    }

    #[test]
    fn frame_digest_ignores_slack_only() {
        let a = frame(3);
        let mut b = a;
        b.slack_us = 999;
        assert_eq!(a.digest(), b.digest(), "slack is wall-clock, not digest");
        assert!(a.diff_fields(&b).is_empty());
        b.msg_digest ^= 1;
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.diff_fields(&b), vec!["msg_digest"]);
    }

    #[test]
    fn ring_keeps_the_newest_frames_in_order() {
        let mut r = FlightRecorder::new(4);
        assert!(r.is_empty());
        for step in 0..10 {
            r.record(frame(step));
        }
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let steps: Vec<u64> = r.frames().iter().map(|f| f.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 10, "lifetime counter survives clear");
    }

    #[test]
    fn incident_file_round_trips() {
        let dir = std::env::temp_dir().join("tsc-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("incident-{}.jsonl", std::process::id()));
        let incident = Incident {
            tenant: 2,
            tenant_name: "uptown".into(),
            trigger: FlightTrigger::Quarantine,
            step: 41,
            replay: Json::obj([
                ("seed", Json::str(u64_to_hex(0xfeed_f00d_dead_beef))),
                ("scenario", Json::str("grid 2x2")),
            ]),
            frames: (30..42).map(frame).collect(),
        };
        write_incident(&path, &incident).unwrap();
        let back = read_incident(&path).unwrap();
        assert_eq!(back, incident);
        assert_eq!(back.frames_digest(), incident.frames_digest());
        assert_eq!(
            u64_from_hex(back.replay.get_str("seed").unwrap()),
            Some(0xfeed_f00d_dead_beef)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_incident_files_are_typed_errors() {
        let dir = std::env::temp_dir().join("tsc-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("not-incident-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"type\":\"fleet\"}\n").unwrap();
        let err = read_incident(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trigger_wire_names_round_trip() {
        for t in [
            FlightTrigger::Panic,
            FlightTrigger::BreakerOpen,
            FlightTrigger::Quarantine,
            FlightTrigger::ShedCap,
            FlightTrigger::Snapshot,
        ] {
            assert_eq!(FlightTrigger::parse(t.as_str()), Some(t));
        }
        assert_eq!(FlightTrigger::parse("nope"), None);
    }
}
