//! Fleet supervision events: the lifecycle records a multi-tenant
//! serving fleet emits through an [`EventSink`](crate::EventSink).
//!
//! The kinds mirror the supervisor lifecycle in `tsc-serve`: a
//! tenant's circuit breaker opening and closing, quarantine entry and
//! exit, and the outcome of checkpoint-reload recovery attempts. They
//! live here (not in `tsc-serve`) so log consumers — `obs_report`,
//! external tooling — can name them without depending on the serving
//! stack.

use crate::json::Json;

/// What happened to a supervised tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEventKind {
    /// The tenant's windowed fault rate tripped its circuit breaker:
    /// the standby controller takes over while backoff runs.
    BreakerOpen,
    /// The tenant completed probation cleanly: the policy serves again
    /// with the breaker closed.
    BreakerClose,
    /// The tenant panicked (or failed unrecoverably) and was
    /// quarantined.
    QuarantineEnter,
    /// A checkpoint reload restored the quarantined tenant to
    /// probation.
    QuarantineExit,
    /// A quarantined tenant came all the way back to Healthy.
    RecoveryOk,
    /// A checkpoint reload attempt failed (one unit of the tenant's
    /// retry budget consumed).
    RecoveryFailed,
    /// A hot-reload checkpoint was validated and staged into the
    /// tenant's back buffer (serving continues on the live policy).
    ReloadStaged,
    /// A staged checkpoint was swapped live between steps.
    ReloadSwapped,
    /// Admission control moved the tenant below full service
    /// (decimated inference, standby, or shed).
    BrownoutEnter,
    /// Admission control restored the tenant to full service.
    BrownoutExit,
    /// Admission control refused the tenant's step outright (its
    /// previous signal plan is held).
    Shed,
    /// The tenant's flight recorder dumped an incident file (the
    /// record carries no path — the fleet's incident listing does).
    IncidentDumped,
}

impl FleetEventKind {
    /// Stable wire name (the `"kind"` field of the JSONL record).
    pub fn as_str(self) -> &'static str {
        match self {
            FleetEventKind::BreakerOpen => "breaker_open",
            FleetEventKind::BreakerClose => "breaker_close",
            FleetEventKind::QuarantineEnter => "quarantine_enter",
            FleetEventKind::QuarantineExit => "quarantine_exit",
            FleetEventKind::RecoveryOk => "recovery_ok",
            FleetEventKind::RecoveryFailed => "recovery_failed",
            FleetEventKind::ReloadStaged => "reload_staged",
            FleetEventKind::ReloadSwapped => "reload_swapped",
            FleetEventKind::BrownoutEnter => "brownout_enter",
            FleetEventKind::BrownoutExit => "brownout_exit",
            FleetEventKind::Shed => "shed",
            FleetEventKind::IncidentDumped => "incident_dumped",
        }
    }
}

/// Builds the JSONL record for one fleet event: tagged
/// `"type": "fleet"`, with the fleet step, tenant index and name, and
/// the event kind.
pub fn fleet_event(step: u64, tenant: usize, name: &str, kind: FleetEventKind) -> Json {
    Json::obj([
        ("type", Json::str("fleet")),
        ("step", Json::num(step as f64)),
        ("tenant", Json::num(tenant as f64)),
        ("name", Json::str(name)),
        ("kind", Json::str(kind.as_str())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_are_stable_and_distinct() {
        let all = [
            FleetEventKind::BreakerOpen,
            FleetEventKind::BreakerClose,
            FleetEventKind::QuarantineEnter,
            FleetEventKind::QuarantineExit,
            FleetEventKind::RecoveryOk,
            FleetEventKind::RecoveryFailed,
            FleetEventKind::ReloadStaged,
            FleetEventKind::ReloadSwapped,
            FleetEventKind::BrownoutEnter,
            FleetEventKind::BrownoutExit,
            FleetEventKind::Shed,
            FleetEventKind::IncidentDumped,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
        assert_eq!(FleetEventKind::BreakerOpen.as_str(), "breaker_open");
    }

    #[test]
    fn record_carries_identity_and_kind() {
        let rec = fleet_event(42, 3, "uptown", FleetEventKind::QuarantineEnter);
        let text = rec.compact();
        assert!(text.contains("\"type\":\"fleet\""), "{text}");
        assert!(text.contains("\"kind\":\"quarantine_enter\""), "{text}");
        assert!(text.contains("\"tenant\":3"), "{text}");
        assert!(text.contains("\"name\":\"uptown\""), "{text}");
    }
}
