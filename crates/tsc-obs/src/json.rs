//! A dependency-free JSON value: build, render (pretty or compact),
//! and parse.
//!
//! The workspace is offline (no `serde_json`), and the subset every
//! consumer needs — objects, arrays, strings, numbers, booleans,
//! `null` — is a page of code. The same value type backs the
//! `BENCH_*.json` benchmark reports, the JSONL run-event sink, and the
//! `obs_report` reader, so writers and readers can never drift apart.

use std::fmt;

/// A JSON value. Build with the constructors, render with
/// [`Json::pretty`] (reports) or [`Json::compact`] (JSONL records),
/// read back with [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor: `Json::obj([("key", value), …])`.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor (accepts anything convertible to `f64`).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a field of an object (`None` for other variants or
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number stored at an object field, if present.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string stored at an object field, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Renders on a single line with no insignificant whitespace — the
    /// JSONL record form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    /// `depth` of `None` renders compact (single line); `Some(d)`
    /// renders pretty at indentation depth `d`.
    fn render(&self, out: &mut String, depth: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = depth {
                        out.push('\n');
                        indent(out, d + 1);
                    }
                    item.render(out, depth.map(|d| d + 1));
                }
                if let Some(d) = depth {
                    out.push('\n');
                    indent(out, d);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = depth {
                        out.push('\n');
                        indent(out, d + 1);
                    }
                    render_string(k, out);
                    out.push_str(if depth.is_some() { ": " } else { ":" });
                    v.render(out, depth.map(|d| d + 1));
                }
                if let Some(d) = depth {
                    out.push('\n');
                    indent(out, d);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (which must contain nothing
    /// else but whitespace around it).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the first offending byte.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// A JSON syntax error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending position.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates (emitted by other writers for
                            // astral characters) are not produced by our
                            // renderer; map them to the replacement
                            // character rather than failing the record.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_with_escapes() {
        let j = Json::obj([
            ("name", Json::str("a \"quoted\"\nline")),
            ("count", Json::num(3u32)),
            ("ratio", Json::num(0.5)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::Null])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = j.pretty();
        assert!(text.contains("\"a \\\"quoted\\\"\\nline\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::num(200u32).pretty(), "200\n");
        assert_eq!(Json::num(2.25).pretty(), "2.25\n");
    }

    #[test]
    fn compact_renders_one_line() {
        let j = Json::obj([
            ("a", Json::num(1u32)),
            ("b", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        assert_eq!(j.compact(), r#"{"a":1,"b":[false,null]}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Json::obj([
            ("name", Json::str("tab\there \"and\" 'quotes'")),
            ("neg", Json::num(-12.5)),
            ("exp", Json::num(3e-4)),
            ("big", Json::num(1.0e18)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::str("v"))])),
            ("unicode", Json::str("köln ↗")),
        ]);
        assert_eq!(Json::parse(&j.compact()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parse_rejects_garbage_with_an_offset() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("").is_err());
        assert!(
            Json::parse("{\"a\": 1").is_err(),
            "torn record must not parse"
        );
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes() {
        let j = Json::parse(r#""a\u0041\n\t\\\"""#).unwrap();
        assert_eq!(j, Json::str("aA\n\t\\\""));
    }

    #[test]
    fn field_accessors() {
        let j = Json::obj([("n", Json::num(2u32)), ("s", Json::str("x"))]);
        assert_eq!(j.get_num("n"), Some(2.0));
        assert_eq!(j.get_str("s"), Some("x"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }
}
