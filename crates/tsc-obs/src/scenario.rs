//! Scenario-construction events: which compiled world is a run using?
//!
//! Every [`TscEnv`](https://docs.rs) construction records a
//! [`ScenarioEvent`] — the scenario's name, its structural FNV
//! fingerprint, and its size — into a small process-global ring. Bench
//! binaries read [`latest_scenario`] to stamp their `BENCH_*.json`
//! reports, and tests use [`drain_scenarios`] to assert that a run is
//! attributable to an exact world. Recording is observation-only: it
//! consumes no RNG state and never fails, so an instrumented run stays
//! bit-identical to an uninstrumented one (the crate-wide contract).

use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// One environment construction on a compiled scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// Scenario name (e.g. "Pattern 1", "Monaco", "city-1024").
    pub name: String,
    /// Structural FNV-1a fingerprint of the compiled scenario.
    pub fingerprint: u64,
    /// Number of controlled intersections.
    pub agents: usize,
    /// Number of network links.
    pub links: usize,
}

impl ScenarioEvent {
    /// The fingerprint as the canonical 16-digit hex string used in
    /// reports.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Renders the event as a JSON object (for JSONL sinks and
    /// `BENCH_*.json` reports).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("event", Json::str("scenario_constructed")),
            ("scenario", Json::str(self.name.clone())),
            ("fingerprint", Json::str(self.fingerprint_hex())),
            ("agents", Json::num(self.agents as f64)),
            ("links", Json::num(self.links as f64)),
        ])
    }
}

/// Keep only the most recent constructions; environments are rebuilt
/// every episode, so an unbounded log would grow with training length.
const KEEP: usize = 64;

fn registry() -> &'static Mutex<Vec<ScenarioEvent>> {
    static REGISTRY: OnceLock<Mutex<Vec<ScenarioEvent>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a scenario construction. Called by the simulator's
/// environment constructor; cheap (one mutex lock, no I/O).
pub fn record_scenario(name: &str, fingerprint: u64, agents: usize, links: usize) {
    let mut reg = registry().lock().expect("scenario registry poisoned");
    if reg.len() == KEEP {
        reg.remove(0);
    }
    reg.push(ScenarioEvent {
        name: name.to_string(),
        fingerprint,
        agents,
        links,
    });
}

/// The most recently recorded construction, if any.
pub fn latest_scenario() -> Option<ScenarioEvent> {
    registry()
        .lock()
        .expect("scenario registry poisoned")
        .last()
        .cloned()
}

/// Removes and returns all recorded constructions, oldest first.
pub fn drain_scenarios() -> Vec<ScenarioEvent> {
    std::mem::take(&mut *registry().lock().expect("scenario registry poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; serialize the tests that mutate
    /// it so the harness's default parallelism cannot interleave them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .expect("test lock poisoned")
    }

    #[test]
    fn record_latest_drain_roundtrip() {
        let _guard = test_lock();
        drain_scenarios();
        record_scenario("a", 1, 4, 10);
        record_scenario("b", 0xdead_beef, 36, 168);
        let latest = latest_scenario().unwrap();
        assert_eq!(latest.name, "b");
        assert_eq!(latest.fingerprint_hex(), "00000000deadbeef");
        let all = drain_scenarios();
        assert_eq!(all.len(), 2);
        assert!(latest_scenario().is_none());
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = test_lock();
        drain_scenarios();
        for i in 0..(KEEP + 10) {
            record_scenario("x", i as u64, 1, 1);
        }
        let all = drain_scenarios();
        assert_eq!(all.len(), KEEP);
        assert_eq!(all.last().unwrap().fingerprint, (KEEP + 9) as u64);
    }

    #[test]
    fn event_renders_to_json() {
        let e = ScenarioEvent {
            name: "city".into(),
            fingerprint: 0xff,
            agents: 200,
            links: 900,
        };
        let text = e.to_json().compact();
        assert!(text.contains("\"scenario_constructed\""));
        assert!(text.contains("00000000000000ff"));
    }
}
