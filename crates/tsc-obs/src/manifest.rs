//! Build provenance for run manifests.
//!
//! Every instrumented run's first JSONL record is a manifest pinning
//! what produced it: configuration fingerprint and seed (supplied by
//! the trainer), plus the build info captured here at compile time —
//! crate version, a git-describe-style source stamp (embedded by
//! `build.rs`; `unknown` when the tree was built outside git), and the
//! compilation profile.

use crate::json::Json;

/// Compile-time build provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace crate version.
    pub version: &'static str,
    /// `git describe --always --dirty --tags` at build time, or
    /// `unknown`.
    pub git: &'static str,
    /// `debug` or `release`.
    pub profile: &'static str,
}

impl BuildInfo {
    /// JSON object form for embedding into a manifest record.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("version", Json::str(self.version)),
            ("git", Json::str(self.git)),
            ("profile", Json::str(self.profile)),
        ])
    }
}

/// The build info of the running binary.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        git: option_env!("TSC_OBS_GIT_DESCRIBE").unwrap_or("unknown"),
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_is_populated() {
        let b = build_info();
        assert!(!b.version.is_empty());
        assert!(!b.git.is_empty());
        assert!(matches!(b.profile, "debug" | "release"));
        let j = b.to_json();
        assert_eq!(j.get_str("version"), Some(b.version));
        assert_eq!(j.get_str("git"), Some(b.git));
    }
}
