//! Property tests over *random* scenario specs: whatever shape and
//! demand mix the generator draws, the compiled world must be
//! well-formed, routable, conservative, and bit-deterministic.

use proptest::{arm, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, Union};
use tsc_scenario::{compile, DemandProgram, ScenarioSpec, TopologySpec};
use tsc_sim::{shortest_route, SimConfig, Simulation};

const FREE_SPEED: f64 = 13.89;

fn topologies() -> Union<TopologySpec> {
    Union::new(vec![
        arm(
            2,
            (2..6usize, 2..6usize).prop_map(|(cols, rows)| TopologySpec::Grid {
                cols,
                rows,
                spacing: 150.0,
            }),
        ),
        arm(
            3,
            (3..7usize, 3..7usize, 0.0..0.3f64, 0.0..1.0f64).prop_map(
                |(cols, rows, edge_removal, two_lane_frac)| TopologySpec::City {
                    cols,
                    rows,
                    spacing: 200.0,
                    edge_removal,
                    two_lane_frac,
                    jitter: 0.15,
                },
            ),
        ),
        arm(
            2,
            (2..24usize).prop_map(|length| TopologySpec::Corridor {
                length,
                spacing: 180.0,
            }),
        ),
        arm(
            1,
            (3..6usize, 3..6usize).prop_map(|(cols, rows)| TopologySpec::Ring {
                cols,
                rows,
                spacing: 160.0,
            }),
        ),
    ])
}

fn programs() -> Union<DemandProgram> {
    Union::new(vec![
        arm(
            2,
            (1..8usize, 50.0..400.0f64).prop_map(|(pairs, rate)| DemandProgram::Uniform {
                pairs,
                rate,
                start: 0.0,
                end: 1800.0,
            }),
        ),
        arm(
            2,
            (1..6usize, 300.0..900.0f64).prop_map(|(pairs, peak_rate)| DemandProgram::RushHour {
                pairs,
                peak_rate,
                base_rate: 50.0,
                onset: 0.0,
                ramp: 600.0,
                stagger: 300.0,
            }),
        ),
        arm(
            1,
            (1..4usize, 200.0..800.0f64).prop_map(|(pairs, peak_rate)| DemandProgram::Day {
                pairs,
                peak_rate,
                horizon: 3600.0,
            }),
        ),
        arm(
            1,
            (1..4usize, 1..4usize).prop_map(|(waves, pairs_per_wave)| DemandProgram::JamWave {
                waves,
                pairs_per_wave,
                peak_rate: 700.0,
                period: 500.0,
                width: 300.0,
            }),
        ),
        arm(
            1,
            (1..3usize, 1..6usize).prop_map(|(sinks, pairs)| DemandProgram::Surge {
                sinks,
                pairs,
                peak_rate: 500.0,
                start: 120.0,
                width: 900.0,
            }),
        ),
    ])
}

fn specs() -> impl Strategy<Value = ScenarioSpec> {
    (topologies(), programs(), programs(), 0..1_000u64).prop_map(
        |(topology, prog_a, prog_b, seed)| ScenarioSpec {
            name: "prop".into(),
            seed,
            topology,
            demand: vec![prog_a, prog_b],
            incidents: vec![],
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Well-formedness, part 1: on the *regular* topologies (grid,
    /// corridor, ring — where the generator controls every lane),
    /// every lane of every approach to a signalized intersection has
    /// at least one movement that is (a) connected to an outgoing
    /// link and (b) permitted by some phase of that intersection's
    /// plan. No vehicle can ever be stranded in a lane the controller
    /// cannot serve. (Irregular city graphs inherit the legacy Monaco
    /// property that a pruned neighbor may leave a dead left-turn
    /// lane; part 2 covers what routing actually uses there.)
    #[test]
    fn every_lane_is_signal_served_on_regular_topologies(spec in specs()) {
        let regular = !matches!(spec.topology, TopologySpec::City { .. });
        if !regular {
            return Ok(());
        }
        let compiled = compile(&spec).expect("regular specs always compile");
        let network = &compiled.scenario.network;
        for plan in &compiled.scenario.signal_plans {
            let node = plan.node();
            for &link in network.incoming(node) {
                for lane in network.link(link).lanes() {
                    let served = lane.movements().iter().any(|&m| {
                        network.turn_target(link, m).is_some()
                            && plan.phases().iter().any(|p| p.permits(link, m))
                    });
                    prop_assert!(
                        served,
                        "lane {:?} on link {} into node {} has no signal-served movement",
                        lane.movements(), link.index(), node.index()
                    );
                }
            }
        }
    }

    /// Well-formedness, part 2 (all topologies, including irregular
    /// cities): every movement every compiled *route* actually uses is
    /// lane-permitted, turn-connected, and green under some phase of
    /// the intersection it crosses — so every flow can traverse its
    /// route end to end. Also: routing reaches every flow's sink.
    #[test]
    fn every_route_movement_is_permitted(spec in specs()) {
        let Ok(compiled) = compile(&spec) else {
            // A sparse city draw can fail to place a program's flows;
            // that is a clean error, not a well-formedness violation.
            return Ok(());
        };
        let network = &compiled.scenario.network;
        for flow in &compiled.scenario.flows {
            let route = shortest_route(network, flow.origin, flow.destination, FREE_SPEED)
                .expect("every compiled flow must reach its sink");
            prop_assert_eq!(network.link(*route.last().unwrap()).to(), flow.destination);
            for pair in route.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let m = network.movement_between(a, b)
                    .expect("consecutive route links must be joined by a movement");
                prop_assert!(
                    network.link(a).lanes().iter().any(|l| l.permits(m)),
                    "route movement {m:?} has no serving lane on link {}", a.index()
                );
                prop_assert_eq!(network.turn_target(a, m), Some(b));
                let node = network.link(a).to();
                if network.node(node).is_signalized() {
                    let plan = compiled.scenario.signal_plans.iter()
                        .find(|p| p.node() == node)
                        .expect("signalized node has a plan");
                    prop_assert!(
                        plan.phases().iter().any(|p| p.permits(a, m)),
                        "route movement {m:?} at node {} is never green", node.index()
                    );
                }
            }
        }
    }

    /// Vehicle conservation for 600 simulated seconds on the event
    /// core: spawned == (on-network + backlog) + finished at every
    /// sampled instant, for arbitrary compiled worlds.
    #[test]
    fn compiled_worlds_conserve_vehicles(spec in specs()) {
        let Ok(compiled) = compile(&spec) else { return Ok(()); };
        let mut sim = Simulation::new(&compiled.scenario, SimConfig::default(), spec.seed)
            .expect("compiled scenario simulates");
        prop_assert!(sim.is_event_core());
        for _ in 0..60 {
            for _ in 0..10 {
                sim.step().expect("step");
            }
            prop_assert_eq!(
                sim.metrics().spawned(),
                sim.active_vehicles() + sim.metrics().finished(),
                "t={}: spawned {} != active {} + finished {}",
                sim.time(), sim.metrics().spawned(),
                sim.active_vehicles(), sim.metrics().finished()
            );
        }
        prop_assert!(sim.metrics().spawned() > 0, "600s of demand must spawn something");
    }

    /// Determinism: compiling the same spec twice — or its text
    /// round-trip — yields the same fingerprint, flow list, and
    /// network size.
    #[test]
    fn compile_and_text_roundtrip_are_deterministic(spec in specs()) {
        let Ok(a) = compile(&spec) else { return Ok(()); };
        let b = compile(&spec).expect("recompile");
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        let parsed = ScenarioSpec::from_text(&spec.to_text()).expect("roundtrip");
        let c = compile(&parsed).expect("roundtrip compiles");
        prop_assert_eq!(a.fingerprint, c.fingerprint);
        prop_assert_eq!(a.scenario.flows.len(), c.scenario.flows.len());
        prop_assert_eq!(
            a.scenario.network.num_links(),
            c.scenario.network.num_links()
        );
    }
}
