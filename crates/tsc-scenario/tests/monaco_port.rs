//! Pins the Monaco port: the compiled `monaco_spec` must reproduce the
//! legacy `tsc_sim::scenario::monaco` builder bit-for-bit — same
//! scenario fingerprint, same observation/reward trace. The digests
//! below were captured from the legacy builder immediately before it
//! was deleted; this test is what lets the deletion be safe.

use tsc_scenario::{compile, monaco_spec};
use tsc_sim::{EnvConfig, Fnv64, Scenario, SimConfig, TscEnv};

/// FNV-1a digest of an episode driven by a cycling fixed policy:
/// hashes every observation field and reward bit for `steps` decision
/// steps. Any behavioural drift in network, plans, or demand changes
/// this value.
fn trace_digest(scenario: Scenario, steps: usize) -> u64 {
    let mut env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 2700,
        },
        11,
    )
    .expect("env");
    let mut h = Fnv64::new();
    let hash_obs = |h: &mut Fnv64, obs: &[tsc_sim::IntersectionObs]| {
        for o in obs {
            h.write_usize(o.node.index());
            h.write_u64(u64::from(o.time));
            h.write_usize(o.current_phase);
            h.write_usize(o.num_phases);
            for l in &o.incoming {
                h.write_usize(l.link.index());
                h.write_f64(l.count);
                h.write_f64(l.halting);
                for m in l.halting_by_movement {
                    h.write_f64(m);
                }
                h.write_f64(l.head_wait);
            }
            for &c in &o.outgoing_counts {
                h.write_f64(c);
            }
        }
    };
    let obs = env.reset(11);
    hash_obs(&mut h, &obs);
    let n = env.num_agents();
    for step in 0..steps {
        let actions: Vec<usize> = (0..n).map(|i| env.clamp_action(i, step)).collect();
        let out = env.step(&actions).expect("step");
        hash_obs(&mut h, &out.obs);
        for r in out.rewards {
            h.write_f64(r);
        }
        if out.done {
            break;
        }
    }
    h.finish()
}

/// Captured from `tsc_sim::scenario::monaco::scenario(&MonacoConfig::default(), 11)`.
const LEGACY_FINGERPRINT_SEED11: u64 = 0xb90a_3410_31b6_9b38;
/// Captured from the same build, 40-step trace via [`trace_digest`].
const LEGACY_TRACE_SEED11: u64 = 0x7518_84ac_ac7d_8c15;
/// Captured for seed 2 (fingerprint only; structure varies with seed).
const LEGACY_FINGERPRINT_SEED2: u64 = 0x18cd_6c1b_f9db_5f04;

#[test]
fn compiled_monaco_matches_pinned_legacy_digests() {
    let compiled = compile(&monaco_spec(11)).expect("monaco compiles");
    assert_eq!(compiled.scenario.name, "Monaco");
    assert_eq!(compiled.num_agents(), 30);
    assert_eq!(compiled.scenario.flows.len(), 10);
    assert_eq!(
        compiled.scenario.fingerprint(),
        LEGACY_FINGERPRINT_SEED11,
        "compiled Monaco diverged from the legacy builder (seed 11)"
    );
    assert_eq!(
        trace_digest(compiled.scenario, 40),
        LEGACY_TRACE_SEED11,
        "obs/reward trace diverged from the legacy builder (seed 11)"
    );
    let other = compile(&monaco_spec(2)).expect("monaco compiles");
    assert_eq!(
        other.scenario.fingerprint(),
        LEGACY_FINGERPRINT_SEED2,
        "compiled Monaco diverged from the legacy builder (seed 2)"
    );
}
