//! The compiler: spec → IR → runnable scenario.
//!
//! [`compile`] lowers a [`ScenarioSpec`] in three stages:
//!
//! 1. **topology** — [`crate::topology::build`] turns the shape spec
//!    into a [`World`] (network + boundary + agent order), drawing any
//!    stochastic structure from a `StdRng` seeded with the spec seed;
//! 2. **demand** — each program lowers to OD flows
//!    ([`crate::demand::compile_program`]), hashed off `(seed, program
//!    index, pair index)` so programs are order-independent;
//! 3. **incidents** — lane closures lower onto the existing chaos-plan
//!    machinery: a full sensor dropout on the closed link plus an
//!    all-red hold at its downstream intersection for the window.
//!
//! The result carries a combined fingerprint (scenario structure ⊕
//! chaos plan ⊕ seed, FNV-1a) — the identity that bench reports and
//! tsc-obs events attribute runs to. Everything is a pure function of
//! `(spec, seed)`: compiling the same spec twice yields bit-identical
//! networks, flows, and fingerprints.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tsc_sim::chaos::{ChaosPlan, LinkSel, NodeSel, Window};
use tsc_sim::{EnvConfig, Fnv64, LinkId, Network, Scenario, SimConfig, SimError, TscEnv};

use crate::spec::{IncidentSpec, ScenarioSpec};
use crate::{demand, topology};

/// A fully lowered scenario: ready to instantiate as a [`TscEnv`] or a
/// raw simulation.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The source spec (round-trips through the text format).
    pub spec: ScenarioSpec,
    /// Network + signal plans + demand.
    pub scenario: Scenario,
    /// Incident faults lowered onto the chaos machinery (empty when the
    /// spec declares none).
    pub chaos: ChaosPlan,
    /// Combined FNV-1a fingerprint over scenario structure, chaos plan,
    /// and seed.
    pub fingerprint: u64,
}

impl CompiledScenario {
    /// The fingerprint as the canonical 16-digit hex string.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Number of controlled intersections.
    pub fn num_agents(&self) -> usize {
        self.scenario.signal_plans.len()
    }

    /// Instantiates the compiled world as a gym-style environment,
    /// applying the lowered incident faults (if any).
    ///
    /// # Errors
    ///
    /// Propagates environment-construction failures.
    pub fn env(
        &self,
        sim_cfg: SimConfig,
        env_cfg: EnvConfig,
        seed: u64,
    ) -> Result<TscEnv, SimError> {
        TscEnv::with_chaos(
            self.scenario.clone(),
            sim_cfg,
            env_cfg,
            seed,
            self.chaos.clone(),
        )
    }
}

/// Compiles a spec into a runnable scenario. Deterministic: same spec
/// (including its seed) ⇒ bit-identical output and fingerprint.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for degenerate topology or
/// demand parameters, out-of-range incident links, or when no demand
/// program can place a routable flow.
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, SimError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let world = topology::build(&spec.topology, &mut rng)?;
    let plans = world.signal_plans()?;
    let mut flows = Vec::new();
    for (i, prog) in spec.demand.iter().enumerate() {
        flows.extend(demand::compile_program(
            prog, i, spec.seed, &world, &mut rng,
        )?);
    }
    let chaos = lower_incidents(&spec.incidents, &world.network)?;
    let scenario = Scenario::new(spec.name.clone(), world.network, plans, flows)?;
    let fingerprint = combined_fingerprint(&scenario, &chaos, spec.seed);
    Ok(CompiledScenario {
        spec: spec.clone(),
        scenario,
        chaos,
        fingerprint,
    })
}

fn combined_fingerprint(scenario: &Scenario, chaos: &ChaosPlan, seed: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("tsc-scenario v1");
    h.write_u64(seed);
    h.write_u64(scenario.fingerprint());
    h.write_u64(chaos.fingerprint());
    h.finish()
}

/// Lowers incident lane closures: the closed link's sensors read empty
/// (full dropout) and its downstream intersection holds all-red for the
/// window — the closest faithful encoding of "this approach is shut"
/// on the existing fault machinery.
fn lower_incidents(incidents: &[IncidentSpec], network: &Network) -> Result<ChaosPlan, SimError> {
    let mut plan = ChaosPlan::new();
    for inc in incidents {
        if inc.link >= network.num_links() {
            return Err(SimError::InvalidConfig(format!(
                "incident link {} out of range ({} links)",
                inc.link,
                network.num_links()
            )));
        }
        if inc.end <= inc.start {
            return Err(SimError::InvalidConfig(
                "incident window must have end > start".into(),
            ));
        }
        let window = Window::new(inc.start, inc.end);
        let link = LinkId(inc.link);
        plan = plan.sensor_dropout(window, LinkSel::One(link), 1.0);
        let node = network.link(link).to();
        if network.node(node).is_signalized() {
            plan = plan.all_red(window, NodeSel::One(node));
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DemandProgram, TopologySpec};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit-city".into(),
            seed: 17,
            topology: TopologySpec::City {
                cols: 4,
                rows: 4,
                spacing: 200.0,
                edge_removal: 0.15,
                two_lane_frac: 0.4,
                jitter: 0.15,
            },
            demand: vec![
                DemandProgram::RushHour {
                    pairs: 6,
                    peak_rate: 500.0,
                    base_rate: 50.0,
                    onset: 0.0,
                    ramp: 600.0,
                    stagger: 300.0,
                },
                DemandProgram::Uniform {
                    pairs: 4,
                    rate: 120.0,
                    start: 0.0,
                    end: 1800.0,
                },
            ],
            incidents: vec![],
        }
    }

    #[test]
    fn compile_is_deterministic_and_fingerprint_stable() {
        let a = compile(&small_spec()).unwrap();
        let b = compile(&small_spec()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.scenario.fingerprint(), b.scenario.fingerprint());
        assert_eq!(a.scenario.flows.len(), b.scenario.flows.len());
        let mut other = small_spec();
        other.seed = 18;
        let c = compile(&other).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint, "seed is part of the identity");
    }

    #[test]
    fn compiled_env_runs_and_reports_fingerprint() {
        let compiled = compile(&small_spec()).unwrap();
        let mut env = compiled
            .env(SimConfig::default(), EnvConfig::default(), 3)
            .unwrap();
        assert_eq!(env.scenario_fingerprint(), compiled.scenario.fingerprint());
        let obs = env.reset(3);
        assert_eq!(obs.len(), compiled.num_agents());
        let actions = vec![0usize; compiled.num_agents()];
        let step = env.step(&actions).unwrap();
        assert_eq!(step.rewards.len(), compiled.num_agents());
    }

    #[test]
    fn incidents_lower_to_chaos_faults() {
        let mut spec = small_spec();
        spec.incidents = vec![IncidentSpec {
            link: 0,
            start: 60,
            end: 300,
        }];
        let compiled = compile(&spec).unwrap();
        assert!(!compiled.chaos.is_empty());
        assert_eq!(compiled.chaos.sensing().len(), 1);
        let plain = compile(&small_spec()).unwrap();
        assert_ne!(
            compiled.fingerprint, plain.fingerprint,
            "incidents change the identity"
        );
        assert_eq!(
            compiled.scenario.fingerprint(),
            plain.scenario.fingerprint(),
            "but not the underlying network/demand"
        );
    }

    #[test]
    fn incident_link_out_of_range_is_rejected() {
        let mut spec = small_spec();
        spec.incidents = vec![IncidentSpec {
            link: 100_000,
            start: 0,
            end: 60,
        }];
        assert!(compile(&spec).is_err());
        let mut bad_window = small_spec();
        bad_window.incidents = vec![IncidentSpec {
            link: 0,
            start: 60,
            end: 60,
        }];
        assert!(compile(&bad_window).is_err());
    }
}
