//! # tsc-scenario — declarative scenario compiler
//!
//! The paper evaluates on a 6×6 grid and a 30-intersection Monaco
//! network; this crate generalizes both into a declarative layer that
//! compiles *arbitrary* networks and demand programs into runnable
//! [`tsc_sim`] scenarios, scaling to thousands of intersections:
//!
//! * [`ScenarioSpec`] — plain builder structs plus a line-oriented text
//!   format ([`ScenarioSpec::to_text`] / [`ScenarioSpec::from_text`])
//!   that round-trips bit-exactly (the vendored serde stand-in has
//!   no-op derives, so the format is hand-rolled);
//! * [`TopologySpec`] — rectangular grids, irregular jittered city
//!   graphs (the generalized Monaco generator), arterial corridors
//!   with side streets, and ring roads;
//! * [`DemandProgram`] — the paper's flow patterns, uniform background
//!   traffic, staggered rush-hour ramps, piecewise day profiles, jam
//!   waves, and event surges;
//! * [`IncidentSpec`] — lane closures lowered onto the chaos-plan
//!   fault machinery (full sensor dropout + downstream all-red).
//!
//! [`compile`] is a pure function of `(spec, seed)`: same spec ⇒
//! bit-identical network, flows, and FNV-1a [`CompiledScenario::fingerprint`].
//! See DESIGN.md §14 for the lowering pipeline and determinism
//! contract.
//!
//! ## Quickstart
//!
//! ```
//! use tsc_scenario::{compile, corridor_spec};
//!
//! // A 1000-intersection arterial corridor with rush-hour demand.
//! let spec = corridor_spec(1000, 42);
//! let compiled = compile(&spec).unwrap();
//! assert_eq!(compiled.num_agents(), 1000);
//! println!("fingerprint {}", compiled.fingerprint_hex());
//! ```

pub mod compile;
pub mod demand;
pub mod spec;
pub mod topology;

pub use compile::{compile, CompiledScenario};
pub use spec::{DemandProgram, IncidentSpec, ScenarioSpec, TopologySpec, SPEC_HEADER};
pub use topology::World;

use tsc_sim::scenario::patterns::FlowPattern;

/// The Monaco scenario as a spec: compiles bit-identically to the
/// retired `tsc_sim::scenario::monaco` builder (pinned by the
/// `monaco_port` integration test).
pub fn monaco_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "Monaco".into(),
        seed,
        topology: TopologySpec::City {
            cols: 6,
            rows: 5,
            spacing: 250.0,
            edge_removal: 0.18,
            two_lane_frac: 0.4,
            jitter: 0.18,
        },
        demand: vec![DemandProgram::Conflicts {
            flows: 10,
            peak_rate: 975.0,
            horizon: 2700.0,
        }],
        incidents: vec![],
    }
}

/// The paper's 6×6 grid with one of the five flow patterns, as a spec.
pub fn grid_spec(pattern: FlowPattern, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("Pattern {}", pattern.number()),
        seed,
        topology: TopologySpec::Grid {
            cols: 6,
            rows: 6,
            spacing: 200.0,
        },
        demand: vec![DemandProgram::Pattern {
            pattern,
            peak_rate: 500.0,
            base_rate: 100.0,
        }],
        incidents: vec![],
    }
}

/// An irregular city graph with roughly `n` intersections (nearest
/// `cols × rows` lattice), carrying staggered rush-hour demand over a
/// uniform background. Used by the `cityscale` scaling sweep.
pub fn city_spec(n: usize, seed: u64) -> ScenarioSpec {
    let cols = (n as f64).sqrt().ceil().max(3.0) as usize;
    let rows = n.div_ceil(cols).max(3);
    let pairs = (cols + rows).max(8);
    ScenarioSpec {
        name: format!("city-{}", cols * rows),
        seed,
        topology: TopologySpec::City {
            cols,
            rows,
            spacing: 200.0,
            edge_removal: 0.12,
            two_lane_frac: 0.4,
            jitter: 0.15,
        },
        demand: vec![
            DemandProgram::RushHour {
                pairs,
                peak_rate: 600.0,
                base_rate: 60.0,
                onset: 0.0,
                ramp: 900.0,
                stagger: 300.0,
            },
            DemandProgram::Uniform {
                pairs,
                rate: 120.0,
                start: 0.0,
                end: 3600.0,
            },
        ],
        incidents: vec![],
    }
}

/// An east–west arterial corridor with `n` four-way intersections and
/// rush-hour demand (plus side-street background traffic).
pub fn corridor_spec(n: usize, seed: u64) -> ScenarioSpec {
    let pairs = (n / 8).clamp(8, 64);
    ScenarioSpec {
        name: format!("corridor-{n}"),
        seed,
        topology: TopologySpec::Corridor {
            length: n,
            spacing: 200.0,
        },
        demand: vec![
            DemandProgram::RushHour {
                pairs,
                peak_rate: 700.0,
                base_rate: 80.0,
                onset: 0.0,
                ramp: 900.0,
                stagger: 300.0,
            },
            DemandProgram::Uniform {
                pairs,
                rate: 100.0,
                start: 0.0,
                end: 3600.0,
            },
        ],
        incidents: vec![],
    }
}

/// A ring road with roughly `n` perimeter intersections, with uniform
/// circulating traffic plus an event surge into a few venues.
pub fn ring_spec(n: usize, seed: u64) -> ScenarioSpec {
    // Perimeter of a cols×rows lattice is 2(cols+rows)−4; use a square.
    let side = (n + 4).div_ceil(4).max(3);
    let pairs = n.clamp(8, 48);
    ScenarioSpec {
        name: format!("ring-{}", 4 * side - 4),
        seed,
        topology: TopologySpec::Ring {
            cols: side,
            rows: side,
            spacing: 180.0,
        },
        demand: vec![
            DemandProgram::Uniform {
                pairs,
                rate: 150.0,
                start: 0.0,
                end: 3600.0,
            },
            DemandProgram::Surge {
                sinks: 3,
                pairs,
                peak_rate: 500.0,
                start: 600.0,
                width: 1200.0,
            },
        ],
        incidents: vec![],
    }
}

/// Resolves a preset by name (`monaco`, `grid`, `city-<n>`,
/// `corridor-<n>`, `ring-<n>`), or `None` for unknown names. This is
/// the vocabulary `--scenario` accepts in the bench binaries, alongside
/// spec file paths.
pub fn preset(name: &str, seed: u64) -> Option<ScenarioSpec> {
    if name == "monaco" {
        return Some(monaco_spec(seed));
    }
    if name == "grid" {
        return Some(grid_spec(FlowPattern::One, seed));
    }
    let (kind, n) = name.split_once('-')?;
    let n: usize = n.parse().ok()?;
    match kind {
        "city" => Some(city_spec(n, seed)),
        "corridor" => Some(corridor_spec(n, seed)),
        "ring" => Some(ring_spec(n, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_compile_and_roundtrip_through_text() {
        for spec in [
            monaco_spec(11),
            grid_spec(FlowPattern::Three, 1),
            city_spec(36, 2),
            corridor_spec(12, 3),
            ring_spec(16, 4),
        ] {
            let compiled = compile(&spec).expect("preset compiles");
            assert!(compiled.num_agents() > 0);
            let text = spec.to_text();
            let back = ScenarioSpec::from_text(&text).expect("roundtrip parses");
            let recompiled = compile(&back).expect("roundtrip compiles");
            assert_eq!(
                compiled.fingerprint, recompiled.fingerprint,
                "text roundtrip preserves identity for {}",
                spec.name
            );
        }
    }

    #[test]
    fn preset_lookup_resolves_names() {
        assert_eq!(preset("monaco", 1).unwrap().name, "Monaco");
        assert!(preset("grid", 1).is_some());
        assert_eq!(preset("city-200", 1).unwrap().name, "city-210");
        assert!(preset("corridor-50", 1).is_some());
        assert!(preset("ring-20", 1).is_some());
        assert!(preset("nope", 1).is_none());
        assert!(preset("city-x", 1).is_none());
    }

    #[test]
    fn city_spec_sizes_track_request() {
        for n in [36, 200, 1000, 3000] {
            let spec = city_spec(n, 0);
            if let TopologySpec::City { cols, rows, .. } = spec.topology {
                let total = cols * rows;
                assert!(total >= n && total < n + 2 * cols + 2 * rows);
            } else {
                panic!("city_spec must produce a City topology");
            }
        }
    }
}
