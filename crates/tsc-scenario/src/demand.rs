//! Demand programs: spec → OD flows.
//!
//! Each [`DemandProgram`] lowers to a list of [`OdFlow`]s on the
//! compiled [`World`]. Determinism contract: programs draw OD pairs by
//! *hashing* `(spec seed, program index, pair index, attempt)` rather
//! than consuming the shared RNG stream, so adding a program to a spec
//! never re-randomizes the programs before it, and the topology stage's
//! draws are unaffected. The one exception is
//! [`DemandProgram::Conflicts`], which threads the compile-wide RNG in
//! the legacy Monaco order (that is what makes the Monaco port
//! bit-identical to the retired builder).
//!
//! Sampled pairs are route-checked (up to [`ATTEMPTS`] redraws, then
//! dropped) because irregular city graphs can leave terminal pairs
//! unroutable; pattern flows get the same post-filter.

use rand::rngs::StdRng;
use rand::Rng;

use tsc_sim::scenario::patterns::{flows_on, PatternConfig};
use tsc_sim::{shortest_route, FlowProfile, NodeId, OdFlow, SimError};

use crate::spec::DemandProgram;
use crate::topology::World;

/// Free-flow speed (m/s) used for routability checks, matching the
/// simulator's default.
const FREE_SPEED: f64 = 13.89;

/// Redraws per OD pair before giving up on it.
const ATTEMPTS: u64 = 32;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless hash of the draw coordinates — the heart of the
/// order-independence guarantee.
fn draw(seed: u64, program: usize, parts: [u64; 3]) -> u64 {
    let mut h = splitmix64(seed ^ 0x7363_656e_6172_696f); // "scenario"
    h = splitmix64(h ^ program as u64);
    for p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

fn pick(nodes: &[NodeId], seed: u64, program: usize, parts: [u64; 3]) -> NodeId {
    nodes[(draw(seed, program, parts) % nodes.len() as u64) as usize]
}

/// Draws a routable OD pair from `origins` × `dests`, or `None` after
/// [`ATTEMPTS`] redraws (possible on sparse city graphs).
fn sample_pair(
    world: &World,
    seed: u64,
    program: usize,
    pair: u64,
    origins: &[NodeId],
    dests: &[NodeId],
) -> Option<(NodeId, NodeId)> {
    for attempt in 0..ATTEMPTS {
        let o = pick(origins, seed, program, [pair, attempt, 0]);
        let d = pick(dests, seed, program, [pair, attempt, 1]);
        if o != d && shortest_route(&world.network, o, d, FREE_SPEED).is_ok() {
            return Some((o, d));
        }
    }
    None
}

fn routable(world: &World, flow: &OdFlow) -> bool {
    shortest_route(&world.network, flow.origin, flow.destination, FREE_SPEED).is_ok()
}

fn invalid(msg: &str) -> SimError {
    SimError::InvalidConfig(msg.into())
}

/// Lowers one demand program to OD flows. `program` is the program's
/// index within the spec (a hash salt); `rng` is the compile-wide
/// stream, consumed only by [`DemandProgram::Conflicts`].
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for degenerate parameters or
/// when a program cannot place any routable flow.
pub fn compile_program(
    prog: &DemandProgram,
    program: usize,
    seed: u64,
    world: &World,
    rng: &mut StdRng,
) -> Result<Vec<OdFlow>, SimError> {
    let terminals = world.boundary.all();
    if terminals.len() < 2 {
        return Err(invalid("demand needs at least two boundary terminals"));
    }
    let flows = match *prog {
        DemandProgram::Pattern {
            pattern,
            peak_rate,
            base_rate,
        } => {
            let cfg = PatternConfig {
                peak_rate,
                base_rate,
                ..PatternConfig::default()
            };
            flows_on(&world.boundary, pattern, &cfg)?
                .into_iter()
                .filter(|f| routable(world, f))
                .collect()
        }
        DemandProgram::Uniform {
            pairs,
            rate,
            start,
            end,
        } => {
            if pairs == 0 || rate <= 0.0 || end <= start || start < 0.0 {
                return Err(invalid(
                    "uniform program needs pairs > 0, rate > 0, end > start",
                ));
            }
            (0..pairs)
                .filter_map(|k| sample_pair(world, seed, program, k as u64, &terminals, &terminals))
                .map(|(o, d)| OdFlow::new(o, d, FlowProfile::constant(rate, start, end)))
                .collect()
        }
        DemandProgram::RushHour {
            pairs,
            peak_rate,
            base_rate,
            onset,
            ramp,
            stagger,
        } => {
            if pairs == 0 || ramp <= 0.0 || stagger < 0.0 || onset < 0.0 {
                return Err(invalid("rush_hour program needs pairs > 0, ramp > 0"));
            }
            if peak_rate <= base_rate || base_rate < 0.0 {
                return Err(invalid(
                    "rush_hour program needs peak_rate > base_rate >= 0",
                ));
            }
            (0..pairs)
                .filter_map(|k| {
                    sample_pair(world, seed, program, k as u64, &terminals, &terminals)
                        .map(|od| (k, od))
                })
                .map(|(k, (o, d))| {
                    // Stagger onsets in three waves so the rush builds up
                    // rather than arriving as a single front.
                    let start = onset + (k % 3) as f64 * stagger;
                    let peak = start + ramp;
                    OdFlow::new(
                        o,
                        d,
                        FlowProfile::ramp(start, peak, peak + ramp, peak_rate, base_rate),
                    )
                })
                .collect()
        }
        DemandProgram::Day {
            pairs,
            peak_rate,
            horizon,
        } => {
            if pairs == 0 || peak_rate <= 0.0 || horizon <= 0.0 {
                return Err(invalid(
                    "day program needs pairs > 0, peak_rate > 0, horizon > 0",
                ));
            }
            // Piecewise day shape: AM peak, midday lull, PM peak,
            // evening taper — scaled onto [0, horizon].
            let p = peak_rate;
            let h = horizon;
            let profile = FlowProfile::new(vec![
                (0.0, 0.1 * p),
                (0.2 * h, p),
                (0.35 * h, 0.4 * p),
                (0.55 * h, 0.5 * p),
                (0.75 * h, 0.95 * p),
                (0.9 * h, 0.3 * p),
                (h, 0.1 * p),
            ]);
            (0..pairs)
                .filter_map(|k| sample_pair(world, seed, program, k as u64, &terminals, &terminals))
                .map(|(o, d)| OdFlow::new(o, d, profile.clone()))
                .collect()
        }
        DemandProgram::JamWave {
            waves,
            pairs_per_wave,
            peak_rate,
            period,
            width,
        } => {
            if waves == 0 || pairs_per_wave == 0 {
                return Err(invalid(
                    "jam_wave program needs waves > 0 and pairs_per_wave > 0",
                ));
            }
            if peak_rate <= 0.0 || period <= 0.0 || width <= 0.0 {
                return Err(invalid(
                    "jam_wave program needs peak_rate, period, width > 0",
                ));
            }
            let mut flows = Vec::new();
            for w in 0..waves {
                let start = w as f64 * period;
                for k in 0..pairs_per_wave {
                    let salt = (w * pairs_per_wave + k) as u64;
                    if let Some((o, d)) =
                        sample_pair(world, seed, program, salt, &terminals, &terminals)
                    {
                        flows.push(OdFlow::new(
                            o,
                            d,
                            FlowProfile::ramp(
                                start,
                                start + width / 2.0,
                                start + width,
                                peak_rate,
                                0.0,
                            ),
                        ));
                    }
                }
            }
            flows
        }
        DemandProgram::Surge {
            sinks,
            pairs,
            peak_rate,
            start,
            width,
        } => {
            if sinks == 0 || pairs == 0 || peak_rate <= 0.0 || width <= 0.0 || start < 0.0 {
                return Err(invalid(
                    "surge program needs sinks, pairs > 0 and peak_rate, width > 0",
                ));
            }
            // A few event venues absorb traffic from everywhere: pick
            // the sinks first, then aim each pair at one of them.
            let venues: Vec<NodeId> = (0..sinks)
                .map(|j| pick(&terminals, seed, program, [u64::MAX, j as u64, 2]))
                .collect();
            (0..pairs)
                .filter_map(|k| {
                    let venue = std::slice::from_ref(&venues[k % venues.len()]);
                    sample_pair(world, seed, program, k as u64, &terminals, venue)
                })
                .map(|(o, d)| {
                    OdFlow::new(
                        o,
                        d,
                        FlowProfile::ramp(
                            start,
                            start + width / 2.0,
                            start + width,
                            peak_rate,
                            0.0,
                        ),
                    )
                })
                .collect()
        }
        DemandProgram::Conflicts {
            flows: num_flows,
            peak_rate,
            horizon,
        } => {
            if num_flows == 0 || peak_rate <= 0.0 || horizon <= 0.0 {
                return Err(invalid(
                    "conflicts program needs flows > 0, peak_rate > 0, horizon > 0",
                ));
            }
            conflicts(world, num_flows, peak_rate, horizon, rng)?
        }
    };
    if flows.is_empty() {
        return Err(invalid("demand program produced no routable flow"));
    }
    Ok(flows)
}

/// The legacy Monaco conflicting-flow sampler, verbatim: terminal pairs
/// drawn from the interleaved (west,east per row, then south,north per
/// column) terminal list using the compile-wide RNG, keeping routable
/// pairs, with onsets staggered across three 300 s waves.
fn conflicts(
    world: &World,
    num_flows: usize,
    peak_rate: f64,
    horizon: f64,
    rng: &mut StdRng,
) -> Result<Vec<OdFlow>, SimError> {
    let b = &world.boundary;
    let mut terminals = Vec::with_capacity(b.all().len());
    for r in 0..b.rows() {
        terminals.push(b.west_terminal(r));
        terminals.push(b.east_terminal(r));
    }
    for c in 0..b.cols() {
        terminals.push(b.south_terminal(c));
        terminals.push(b.north_terminal(c));
    }
    let mut flows = Vec::new();
    let mut attempts = 0;
    while flows.len() < num_flows && attempts < 400 {
        attempts += 1;
        let o = terminals[rng.gen_range(0..terminals.len())];
        let d = terminals[rng.gen_range(0..terminals.len())];
        if o == d {
            continue;
        }
        if shortest_route(&world.network, o, d, FREE_SPEED).is_err() {
            continue;
        }
        let onset = f64::from(rng.gen_range(0..3u32)) * 300.0;
        let peak = onset + 900.0;
        let end = (peak + 900.0).min(horizon.max(peak + 1.0));
        flows.push(OdFlow::new(
            o,
            d,
            FlowProfile::ramp(onset, peak, end, peak_rate, 50.0),
        ));
    }
    if flows.len() < num_flows {
        return Err(invalid("could not sample enough routable OD flows"));
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use rand::SeedableRng;
    use tsc_sim::scenario::patterns::FlowPattern;

    fn world() -> World {
        crate::topology::build(
            &TopologySpec::Grid {
                cols: 4,
                rows: 4,
                spacing: 200.0,
            },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap()
    }

    fn compile(prog: &DemandProgram, seed: u64) -> Vec<OdFlow> {
        let mut rng = StdRng::seed_from_u64(seed);
        compile_program(prog, 0, seed, &world(), &mut rng).unwrap()
    }

    #[test]
    fn hashed_programs_are_seed_deterministic_and_order_independent() {
        let prog = DemandProgram::Uniform {
            pairs: 6,
            rate: 200.0,
            start: 0.0,
            end: 1800.0,
        };
        let a = compile(&prog, 42);
        let b = compile(&prog, 42);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.origin, x.destination), (y.origin, y.destination));
        }
        let c = compile(&prog, 43);
        let same = a
            .iter()
            .zip(&c)
            .all(|(x, y)| (x.origin, x.destination) == (y.origin, y.destination));
        assert!(!same, "different seed should redraw pairs");
        // A different program index yields different draws too.
        let w = world();
        let mut rng = StdRng::seed_from_u64(42);
        let shifted = compile_program(&prog, 1, 42, &w, &mut rng).unwrap();
        let same = a
            .iter()
            .zip(&shifted)
            .all(|(x, y)| (x.origin, x.destination) == (y.origin, y.destination));
        assert!(!same, "program index salts the draws");
    }

    #[test]
    fn rush_hour_staggers_onsets() {
        let flows = compile(
            &DemandProgram::RushHour {
                pairs: 6,
                peak_rate: 600.0,
                base_rate: 50.0,
                onset: 0.0,
                ramp: 600.0,
                stagger: 300.0,
            },
            7,
        );
        assert_eq!(flows.len(), 6);
        let onsets: std::collections::BTreeSet<u64> = flows
            .iter()
            .map(|f| f.profile.points().first().unwrap().0 as u64)
            .collect();
        assert_eq!(onsets, [0u64, 300, 600].into_iter().collect());
    }

    #[test]
    fn day_profile_has_two_peaks() {
        let flows = compile(
            &DemandProgram::Day {
                pairs: 2,
                peak_rate: 800.0,
                horizon: 3600.0,
            },
            5,
        );
        let p = &flows[0].profile;
        let am = p.rate_at(0.2 * 3600.0);
        let lull = p.rate_at(0.45 * 3600.0);
        let pm = p.rate_at(0.75 * 3600.0);
        assert!(am > lull && pm > lull);
        assert_eq!(p.end_time(), 3600.0);
    }

    #[test]
    fn jam_wave_produces_periodic_pulses() {
        let flows = compile(
            &DemandProgram::JamWave {
                waves: 3,
                pairs_per_wave: 2,
                peak_rate: 900.0,
                period: 600.0,
                width: 300.0,
            },
            9,
        );
        assert_eq!(flows.len(), 6);
        let starts: Vec<f64> = flows
            .iter()
            .map(|f| f.profile.points().first().unwrap().0)
            .collect();
        assert!(starts.contains(&0.0) && starts.contains(&600.0) && starts.contains(&1200.0));
    }

    #[test]
    fn surge_concentrates_on_sinks() {
        let flows = compile(
            &DemandProgram::Surge {
                sinks: 2,
                pairs: 8,
                peak_rate: 700.0,
                start: 300.0,
                width: 900.0,
            },
            3,
        );
        assert_eq!(flows.len(), 8);
        let sinks: std::collections::BTreeSet<usize> =
            flows.iter().map(|f| f.destination.0).collect();
        assert!(sinks.len() <= 2, "all pairs aim at the chosen venues");
    }

    #[test]
    fn conflicts_matches_legacy_interleaved_terminal_order() {
        // On a grid boundary the interleaved list must be
        // w0,e0,w1,e1,...,s0,n0,s1,n1,...
        let w = world();
        let b = &w.boundary;
        let mut rng = StdRng::seed_from_u64(2);
        let flows = conflicts(&w, 4, 600.0, 2700.0, &mut rng).unwrap();
        assert_eq!(flows.len(), 4);
        let legacy: Vec<_> = (0..b.rows())
            .flat_map(|r| [b.west_terminal(r), b.east_terminal(r)])
            .chain((0..b.cols()).flat_map(|c| [b.south_terminal(c), b.north_terminal(c)]))
            .collect();
        for f in &flows {
            assert!(legacy.contains(&f.origin));
            assert!(legacy.contains(&f.destination));
        }
    }

    #[test]
    fn pattern_program_lowers_via_flows_on() {
        let flows = compile(
            &DemandProgram::Pattern {
                pattern: FlowPattern::One,
                peak_rate: 500.0,
                base_rate: 100.0,
            },
            1,
        );
        assert!(!flows.is_empty());
    }

    #[test]
    fn degenerate_programs_are_rejected() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        for prog in [
            DemandProgram::Uniform {
                pairs: 0,
                rate: 100.0,
                start: 0.0,
                end: 100.0,
            },
            DemandProgram::Uniform {
                pairs: 2,
                rate: 100.0,
                start: 200.0,
                end: 100.0,
            },
            DemandProgram::RushHour {
                pairs: 2,
                peak_rate: 100.0,
                base_rate: 200.0,
                onset: 0.0,
                ramp: 600.0,
                stagger: 0.0,
            },
            DemandProgram::JamWave {
                waves: 0,
                pairs_per_wave: 1,
                peak_rate: 100.0,
                period: 600.0,
                width: 300.0,
            },
            DemandProgram::Surge {
                sinks: 0,
                pairs: 1,
                peak_rate: 100.0,
                start: 0.0,
                width: 300.0,
            },
        ] {
            assert!(compile_program(&prog, 0, 1, &w, &mut rng).is_err());
        }
    }
}
