//! Declarative scenario specifications and their text format.
//!
//! A [`ScenarioSpec`] is the *source language* of the compiler: a
//! topology, a list of demand programs, and a list of incidents, plus
//! the seed every stochastic choice derives from. Specs are plain Rust
//! values built with struct literals/builders, and round-trip through a
//! line-oriented text format (`tsc-scenario spec v1`) so worlds can be
//! checked into files and passed to bench binaries via `--scenario`.
//!
//! The vendored `serde` stand-in derives are no-ops (the build
//! environment has no registry access), so — like the checkpoint
//! format in the core crate — serialization here is hand-rolled:
//! [`ScenarioSpec::to_text`] / [`ScenarioSpec::from_text`].

use std::collections::BTreeMap;

use tsc_sim::scenario::patterns::FlowPattern;
use tsc_sim::SimError;

/// Header line of the spec text format.
pub const SPEC_HEADER: &str = "tsc-scenario spec v1";

/// A complete declarative scenario description.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (becomes `Scenario::name`).
    pub name: String,
    /// Master seed: every stochastic compile decision derives from it.
    pub seed: u64,
    /// Network topology to generate.
    pub topology: TopologySpec,
    /// Demand programs, compiled in order onto the topology's boundary.
    pub demand: Vec<DemandProgram>,
    /// Incidents, lowered onto the chaos-plan machinery.
    pub incidents: Vec<IncidentSpec>,
}

/// A generated network topology.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TopologySpec {
    /// The paper's rectangular lattice (two-lane arterials, one-lane
    /// avenues), identical to `tsc_sim::scenario::grid::Grid`.
    Grid {
        /// Intersection columns.
        cols: usize,
        /// Intersection rows.
        rows: usize,
        /// Spacing between intersections (m).
        spacing: f64,
    },
    /// A seeded irregular city graph: a jittered lattice with a random
    /// subset of interior edges removed (degree never drops below 2)
    /// and mixed one/two-lane links. With the Monaco defaults this
    /// reproduces the legacy `scenario::monaco` builder bit-for-bit.
    City {
        /// Lattice columns before perturbation.
        cols: usize,
        /// Lattice rows before perturbation.
        rows: usize,
        /// Mean link length (m).
        spacing: f64,
        /// Fraction of interior edges removed.
        edge_removal: f64,
        /// Probability that a kept edge is two-lane.
        two_lane_frac: f64,
        /// Position jitter as a fraction of `spacing`.
        jitter: f64,
    },
    /// An east–west arterial of `length` signalized intersections with
    /// a north and south side-street terminal at every one — the
    /// classic coordinated-corridor benchmark shape.
    Corridor {
        /// Number of signalized intersections along the arterial.
        length: usize,
        /// Spacing between intersections (m).
        spacing: f64,
    },
    /// A rectangular ring road on the perimeter of a `cols × rows`
    /// lattice; every ring node is signalized and has one outward
    /// terminal.
    Ring {
        /// Lattice columns.
        cols: usize,
        /// Lattice rows.
        rows: usize,
        /// Spacing between adjacent ring nodes (m).
        spacing: f64,
    },
}

impl TopologySpec {
    /// The spec-format keyword of this topology kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Grid { .. } => "grid",
            TopologySpec::City { .. } => "city",
            TopologySpec::Corridor { .. } => "corridor",
            TopologySpec::Ring { .. } => "ring",
        }
    }
}

/// A demand program: a family of OD flows with a shaped rate profile.
///
/// All programs except [`Conflicts`](Self::Conflicts) pick their OD
/// terminal pairs by pure splitmix64 hashing of `(seed, program index,
/// pair index, attempt)` — no RNG state is consumed, so programs are
/// order-insensitive to each other. `Conflicts` reproduces the legacy
/// Monaco sampler, which draws from the compile-wide `StdRng` stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DemandProgram {
    /// One of the paper's five Fig. 6 flow patterns on the boundary.
    Pattern {
        /// Which pattern.
        pattern: FlowPattern,
        /// Peak rate per OD pair (veh/h).
        peak_rate: f64,
        /// Base rate at ramp ends (veh/h).
        base_rate: f64,
    },
    /// Constant background traffic between hashed OD pairs.
    Uniform {
        /// Number of OD pairs.
        pairs: usize,
        /// Rate per pair (veh/h).
        rate: f64,
        /// Profile start (s).
        start: f64,
        /// Profile end (s).
        end: f64,
    },
    /// Staggered rush-hour ramps: pair `k` onsets `k % 3` stagger
    /// steps late, so waves of demand overlap like the paper's groups.
    RushHour {
        /// Number of OD pairs.
        pairs: usize,
        /// Peak rate per pair (veh/h).
        peak_rate: f64,
        /// Base rate at ramp ends (veh/h).
        base_rate: f64,
        /// First onset (s).
        onset: f64,
        /// Seconds from onset to peak.
        ramp: f64,
        /// Stagger between onset groups (s).
        stagger: f64,
    },
    /// A day-long double-hump profile (morning and evening peaks) per
    /// hashed OD pair.
    Day {
        /// Number of OD pairs.
        pairs: usize,
        /// Peak rate per pair (veh/h).
        peak_rate: f64,
        /// Day length (s); peaks sit at ~30% and ~75% of it.
        horizon: f64,
    },
    /// Marching jam waves: `waves` successive heavy pulses, each
    /// `width` seconds long, starting `period` seconds apart.
    JamWave {
        /// Number of waves.
        waves: usize,
        /// OD pairs per wave.
        pairs_per_wave: usize,
        /// Peak rate per pair (veh/h).
        peak_rate: f64,
        /// Seconds between wave onsets.
        period: f64,
        /// Wave duration (s).
        width: f64,
    },
    /// An event surge: many origins converge on a few sink terminals
    /// in a single pulse (stadium ingress).
    Surge {
        /// Number of distinct sink terminals.
        sinks: usize,
        /// Number of OD pairs (origins are spread, destinations cycle
        /// through the sinks).
        pairs: usize,
        /// Peak rate per pair (veh/h).
        peak_rate: f64,
        /// Pulse start (s).
        start: f64,
        /// Pulse duration (s).
        width: f64,
    },
    /// The legacy Monaco conflicting-flow sampler: terminal pairs drawn
    /// from the compile-wide RNG with a route check, staggered onsets
    /// in {0, 300, 600} s. Kept bit-compatible with the deleted
    /// bespoke builder (pinned by test).
    Conflicts {
        /// Number of OD flows.
        flows: usize,
        /// Peak rate per flow (veh/h). Paper: 975.
        peak_rate: f64,
        /// Demand end time (s).
        horizon: f64,
    },
}

impl DemandProgram {
    /// The spec-format keyword of this program kind.
    pub fn kind(&self) -> &'static str {
        match self {
            DemandProgram::Pattern { .. } => "pattern",
            DemandProgram::Uniform { .. } => "uniform",
            DemandProgram::RushHour { .. } => "rush_hour",
            DemandProgram::Day { .. } => "day",
            DemandProgram::JamWave { .. } => "jam_wave",
            DemandProgram::Surge { .. } => "surge",
            DemandProgram::Conflicts { .. } => "conflicts",
        }
    }
}

/// An incident: a lane closure on one link for a time window, lowered
/// onto the chaos-plan machinery (dead detector on the link + forced
/// all-red at its downstream intersection while blocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncidentSpec {
    /// Index of the blocked link in the compiled network.
    pub link: usize,
    /// First second the incident is active.
    pub start: u32,
    /// First second it is cleared.
    pub end: u32,
}

/// Formats an `f64` so it round-trips exactly through `parse::<f64>()`.
fn fmt_f64(v: f64) -> String {
    // `{:?}` prints the shortest representation that parses back to
    // the same bits (Rust's float formatting guarantee).
    format!("{v:?}")
}

impl ScenarioSpec {
    /// Renders the spec in the `tsc-scenario spec v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SPEC_HEADER);
        out.push('\n');
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("seed {}\n", self.seed));
        match self.topology {
            TopologySpec::Grid {
                cols,
                rows,
                spacing,
            } => out.push_str(&format!(
                "topology grid cols={cols} rows={rows} spacing={}\n",
                fmt_f64(spacing)
            )),
            TopologySpec::City {
                cols,
                rows,
                spacing,
                edge_removal,
                two_lane_frac,
                jitter,
            } => out.push_str(&format!(
                "topology city cols={cols} rows={rows} spacing={} edge_removal={} \
                 two_lane_frac={} jitter={}\n",
                fmt_f64(spacing),
                fmt_f64(edge_removal),
                fmt_f64(two_lane_frac),
                fmt_f64(jitter)
            )),
            TopologySpec::Corridor { length, spacing } => out.push_str(&format!(
                "topology corridor length={length} spacing={}\n",
                fmt_f64(spacing)
            )),
            TopologySpec::Ring {
                cols,
                rows,
                spacing,
            } => out.push_str(&format!(
                "topology ring cols={cols} rows={rows} spacing={}\n",
                fmt_f64(spacing)
            )),
        }
        for d in &self.demand {
            match *d {
                DemandProgram::Pattern {
                    pattern,
                    peak_rate,
                    base_rate,
                } => out.push_str(&format!(
                    "demand pattern pattern={} peak_rate={} base_rate={}\n",
                    pattern.number(),
                    fmt_f64(peak_rate),
                    fmt_f64(base_rate)
                )),
                DemandProgram::Uniform {
                    pairs,
                    rate,
                    start,
                    end,
                } => out.push_str(&format!(
                    "demand uniform pairs={pairs} rate={} start={} end={}\n",
                    fmt_f64(rate),
                    fmt_f64(start),
                    fmt_f64(end)
                )),
                DemandProgram::RushHour {
                    pairs,
                    peak_rate,
                    base_rate,
                    onset,
                    ramp,
                    stagger,
                } => out.push_str(&format!(
                    "demand rush_hour pairs={pairs} peak_rate={} base_rate={} onset={} \
                     ramp={} stagger={}\n",
                    fmt_f64(peak_rate),
                    fmt_f64(base_rate),
                    fmt_f64(onset),
                    fmt_f64(ramp),
                    fmt_f64(stagger)
                )),
                DemandProgram::Day {
                    pairs,
                    peak_rate,
                    horizon,
                } => out.push_str(&format!(
                    "demand day pairs={pairs} peak_rate={} horizon={}\n",
                    fmt_f64(peak_rate),
                    fmt_f64(horizon)
                )),
                DemandProgram::JamWave {
                    waves,
                    pairs_per_wave,
                    peak_rate,
                    period,
                    width,
                } => out.push_str(&format!(
                    "demand jam_wave waves={waves} pairs_per_wave={pairs_per_wave} \
                     peak_rate={} period={} width={}\n",
                    fmt_f64(peak_rate),
                    fmt_f64(period),
                    fmt_f64(width)
                )),
                DemandProgram::Surge {
                    sinks,
                    pairs,
                    peak_rate,
                    start,
                    width,
                } => out.push_str(&format!(
                    "demand surge sinks={sinks} pairs={pairs} peak_rate={} start={} width={}\n",
                    fmt_f64(peak_rate),
                    fmt_f64(start),
                    fmt_f64(width)
                )),
                DemandProgram::Conflicts {
                    flows,
                    peak_rate,
                    horizon,
                } => out.push_str(&format!(
                    "demand conflicts flows={flows} peak_rate={} horizon={}\n",
                    fmt_f64(peak_rate),
                    fmt_f64(horizon)
                )),
            }
        }
        for i in &self.incidents {
            out.push_str(&format!(
                "incident link={} start={} end={}\n",
                i.link, i.start, i.end
            ));
        }
        out
    }

    /// Parses the `tsc-scenario spec v1` text format.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending line
    /// for any malformed input.
    pub fn from_text(text: &str) -> Result<Self, SimError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == SPEC_HEADER => {}
            _ => {
                return Err(SimError::InvalidConfig(format!(
                    "spec must start with '{SPEC_HEADER}'"
                )))
            }
        }
        let mut name: Option<String> = None;
        let mut seed: u64 = 0;
        let mut topology: Option<TopologySpec> = None;
        let mut demand = Vec::new();
        let mut incidents = Vec::new();
        for (lineno, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| {
                SimError::InvalidConfig(format!("spec line {}: {msg}: '{line}'", lineno + 1))
            };
            let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            match directive {
                "name" => name = Some(rest.trim().to_string()),
                "seed" => {
                    seed = rest.trim().parse().map_err(|_| err("seed must be a u64"))?;
                }
                "topology" => {
                    let (kind, fields) = split_kind(rest);
                    let map = parse_fields(fields).map_err(|m| err(&m))?;
                    topology = Some(parse_topology(kind, &map).map_err(|m| err(&m))?);
                }
                "demand" => {
                    let (kind, fields) = split_kind(rest);
                    let map = parse_fields(fields).map_err(|m| err(&m))?;
                    demand.push(parse_demand(kind, &map).map_err(|m| err(&m))?);
                }
                "incident" => {
                    let map = parse_fields(rest).map_err(|m| err(&m))?;
                    incidents.push(IncidentSpec {
                        link: get_usize(&map, "link").map_err(|m| err(&m))?,
                        start: get_u32(&map, "start").map_err(|m| err(&m))?,
                        end: get_u32(&map, "end").map_err(|m| err(&m))?,
                    });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        let topology =
            topology.ok_or_else(|| SimError::InvalidConfig("spec has no topology line".into()))?;
        Ok(ScenarioSpec {
            name: name.unwrap_or_else(|| "unnamed".to_string()),
            seed,
            topology,
            demand,
            incidents,
        })
    }
}

/// Splits `"kind k=v k=v"` into `("kind", "k=v k=v")`.
fn split_kind(rest: &str) -> (&str, &str) {
    rest.trim()
        .split_once(char::is_whitespace)
        .map_or((rest.trim(), ""), |(k, f)| (k, f))
}

/// Parses whitespace-separated `key=value` fields.
fn parse_fields(fields: &str) -> Result<BTreeMap<&str, &str>, String> {
    let mut map = BTreeMap::new();
    for tok in fields.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
        map.insert(k, v);
    }
    Ok(map)
}

fn get_f64(map: &BTreeMap<&str, &str>, key: &str) -> Result<f64, String> {
    map.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .parse()
        .map_err(|_| format!("field '{key}' must be a number"))
}

fn get_usize(map: &BTreeMap<&str, &str>, key: &str) -> Result<usize, String> {
    map.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .parse()
        .map_err(|_| format!("field '{key}' must be a non-negative integer"))
}

fn get_u32(map: &BTreeMap<&str, &str>, key: &str) -> Result<u32, String> {
    map.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .parse()
        .map_err(|_| format!("field '{key}' must be a u32"))
}

fn parse_topology(kind: &str, map: &BTreeMap<&str, &str>) -> Result<TopologySpec, String> {
    match kind {
        "grid" => Ok(TopologySpec::Grid {
            cols: get_usize(map, "cols")?,
            rows: get_usize(map, "rows")?,
            spacing: get_f64(map, "spacing")?,
        }),
        "city" => Ok(TopologySpec::City {
            cols: get_usize(map, "cols")?,
            rows: get_usize(map, "rows")?,
            spacing: get_f64(map, "spacing")?,
            edge_removal: get_f64(map, "edge_removal")?,
            two_lane_frac: get_f64(map, "two_lane_frac")?,
            jitter: get_f64(map, "jitter")?,
        }),
        "corridor" => Ok(TopologySpec::Corridor {
            length: get_usize(map, "length")?,
            spacing: get_f64(map, "spacing")?,
        }),
        "ring" => Ok(TopologySpec::Ring {
            cols: get_usize(map, "cols")?,
            rows: get_usize(map, "rows")?,
            spacing: get_f64(map, "spacing")?,
        }),
        _ => Err(format!("unknown topology kind '{kind}'")),
    }
}

fn parse_demand(kind: &str, map: &BTreeMap<&str, &str>) -> Result<DemandProgram, String> {
    match kind {
        "pattern" => {
            let n = get_usize(map, "pattern")?;
            let pattern = FlowPattern::from_number(n)
                .ok_or_else(|| format!("pattern number must be 1..=5, got {n}"))?;
            Ok(DemandProgram::Pattern {
                pattern,
                peak_rate: get_f64(map, "peak_rate")?,
                base_rate: get_f64(map, "base_rate")?,
            })
        }
        "uniform" => Ok(DemandProgram::Uniform {
            pairs: get_usize(map, "pairs")?,
            rate: get_f64(map, "rate")?,
            start: get_f64(map, "start")?,
            end: get_f64(map, "end")?,
        }),
        "rush_hour" => Ok(DemandProgram::RushHour {
            pairs: get_usize(map, "pairs")?,
            peak_rate: get_f64(map, "peak_rate")?,
            base_rate: get_f64(map, "base_rate")?,
            onset: get_f64(map, "onset")?,
            ramp: get_f64(map, "ramp")?,
            stagger: get_f64(map, "stagger")?,
        }),
        "day" => Ok(DemandProgram::Day {
            pairs: get_usize(map, "pairs")?,
            peak_rate: get_f64(map, "peak_rate")?,
            horizon: get_f64(map, "horizon")?,
        }),
        "jam_wave" => Ok(DemandProgram::JamWave {
            waves: get_usize(map, "waves")?,
            pairs_per_wave: get_usize(map, "pairs_per_wave")?,
            peak_rate: get_f64(map, "peak_rate")?,
            period: get_f64(map, "period")?,
            width: get_f64(map, "width")?,
        }),
        "surge" => Ok(DemandProgram::Surge {
            sinks: get_usize(map, "sinks")?,
            pairs: get_usize(map, "pairs")?,
            peak_rate: get_f64(map, "peak_rate")?,
            start: get_f64(map, "start")?,
            width: get_f64(map, "width")?,
        }),
        "conflicts" => Ok(DemandProgram::Conflicts {
            flows: get_usize(map, "flows")?,
            peak_rate: get_f64(map, "peak_rate")?,
            horizon: get_f64(map, "horizon")?,
        }),
        _ => Err(format!("unknown demand kind '{kind}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "test-world".into(),
            seed: 42,
            topology: TopologySpec::City {
                cols: 6,
                rows: 5,
                spacing: 250.0,
                edge_removal: 0.18,
                two_lane_frac: 0.4,
                jitter: 0.18,
            },
            demand: vec![
                DemandProgram::Pattern {
                    pattern: FlowPattern::One,
                    peak_rate: 500.0,
                    base_rate: 100.0,
                },
                DemandProgram::RushHour {
                    pairs: 12,
                    peak_rate: 700.0,
                    base_rate: 50.0,
                    onset: 0.0,
                    ramp: 900.0,
                    stagger: 300.0,
                },
                DemandProgram::Conflicts {
                    flows: 10,
                    peak_rate: 975.0,
                    horizon: 2700.0,
                },
            ],
            incidents: vec![IncidentSpec {
                link: 12,
                start: 600,
                end: 1200,
            }],
        }
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let spec = sample();
        let text = spec.to_text();
        let back = ScenarioSpec::from_text(&text).unwrap();
        assert_eq!(spec, back);
        // And a second render is stable.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn all_program_kinds_roundtrip() {
        let mut spec = sample();
        spec.demand = vec![
            DemandProgram::Uniform {
                pairs: 8,
                rate: 150.0,
                start: 0.0,
                end: 3600.0,
            },
            DemandProgram::Day {
                pairs: 6,
                peak_rate: 600.0,
                horizon: 7200.0,
            },
            DemandProgram::JamWave {
                waves: 3,
                pairs_per_wave: 4,
                peak_rate: 900.0,
                period: 600.0,
                width: 400.0,
            },
            DemandProgram::Surge {
                sinks: 2,
                pairs: 10,
                peak_rate: 800.0,
                start: 300.0,
                width: 600.0,
            },
        ];
        let back = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{SPEC_HEADER}\n\n# a comment\nname x\nseed 7\ntopology grid cols=3 rows=3 \
             spacing=200.0\n"
        );
        let spec = ScenarioSpec::from_text(&text).unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn errors_name_the_line() {
        let text = format!("{SPEC_HEADER}\ntopology grid cols=3 rows=oops spacing=200\n");
        let err = ScenarioSpec::from_text(&text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(ScenarioSpec::from_text("not a spec").is_err());
        let unknown = format!("{SPEC_HEADER}\nfrobnicate 3\n");
        assert!(ScenarioSpec::from_text(&unknown).is_err());
    }

    #[test]
    fn float_bits_survive_the_roundtrip() {
        let mut spec = sample();
        if let TopologySpec::City { spacing, .. } = &mut spec.topology {
            *spacing = 250.000_000_001;
        }
        let back = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(spec, back, "exact f64 bits round-trip via {{:?}}");
    }
}
