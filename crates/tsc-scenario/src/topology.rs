//! Topology generators: spec → network IR.
//!
//! Each generator lowers a [`TopologySpec`] to a [`World`] — the
//! compiler's intermediate representation: the built [`Network`], the
//! [`Boundary`] terminal lists the demand programs address, and the
//! signalized nodes in agent order. Only the [`TopologySpec::City`]
//! generator consumes RNG state (position jitter, edge removal, lane
//! mix); the regular shapes are pure functions of their parameters.
//! RNG consumption order is part of the determinism contract: with the
//! Monaco parameters the City generator replays the legacy
//! `tsc_sim::scenario::monaco` builder draw-for-draw (pinned by test).

use rand::rngs::StdRng;
use rand::Rng;

use tsc_sim::scenario::grid::{arterial_lanes, avenue_lanes, Grid, GridConfig};
use tsc_sim::scenario::Boundary;
use tsc_sim::{Direction, Lane, Network, NetworkBuilder, NodeId, SignalPlan, SimError};

use crate::spec::TopologySpec;

/// The compiler's network-level IR: a built network plus the lookup
/// structure the demand stage needs.
#[derive(Debug, Clone)]
pub struct World {
    /// The built road network.
    pub network: Network,
    /// Boundary terminals by side (the surface demand programs use).
    pub boundary: Boundary,
    /// Signalized intersections in agent order.
    pub signalized: Vec<NodeId>,
}

impl World {
    /// Four-phase signal plans for every signalized node, in agent
    /// order (three-way nodes get fewer phases; see
    /// [`SignalPlan::four_phase`]).
    ///
    /// # Errors
    ///
    /// Propagates plan-construction failures (a node with no incoming
    /// links).
    pub fn signal_plans(&self) -> Result<Vec<SignalPlan>, SimError> {
        self.signalized
            .iter()
            .map(|&n| SignalPlan::four_phase(&self.network, n))
            .collect()
    }
}

/// Builds the network for `spec`, drawing any stochastic choices from
/// `rng` (the compile-wide stream seeded with the spec seed).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for degenerate parameters.
pub fn build(spec: &TopologySpec, rng: &mut StdRng) -> Result<World, SimError> {
    match *spec {
        TopologySpec::Grid {
            cols,
            rows,
            spacing,
        } => build_grid(cols, rows, spacing),
        TopologySpec::City {
            cols,
            rows,
            spacing,
            edge_removal,
            two_lane_frac,
            jitter,
        } => build_city(
            cols,
            rows,
            spacing,
            edge_removal,
            two_lane_frac,
            jitter,
            rng,
        ),
        TopologySpec::Corridor { length, spacing } => build_corridor(length, spacing),
        TopologySpec::Ring {
            cols,
            rows,
            spacing,
        } => build_ring(cols, rows, spacing),
    }
}

fn build_grid(cols: usize, rows: usize, spacing: f64) -> Result<World, SimError> {
    let grid = Grid::build(GridConfig {
        cols,
        rows,
        spacing,
    })?;
    let boundary = grid.boundary();
    let signalized = grid.network().signalized_nodes();
    Ok(World {
        network: grid.network().clone(),
        boundary,
        signalized,
    })
}

/// The irregular city generator — the generalized form of the legacy
/// Monaco builder. Nodes sit on a jittered lattice; a random subset of
/// interior edges is removed (never dropping a node below degree 2);
/// kept edges are one- or two-lane; boundary terminals feed every
/// border row and column.
#[allow(clippy::too_many_arguments)]
fn build_city(
    cols: usize,
    rows: usize,
    spacing: f64,
    edge_removal: f64,
    two_lane_frac: f64,
    jitter: f64,
    rng: &mut StdRng,
) -> Result<World, SimError> {
    if cols < 3 || rows < 3 {
        return Err(SimError::InvalidConfig(
            "city topology needs at least a 3x3 lattice".into(),
        ));
    }
    if spacing <= 0.0 {
        return Err(SimError::InvalidConfig("city spacing must be > 0".into()));
    }
    if !(0.0..0.5).contains(&edge_removal) {
        return Err(SimError::InvalidConfig(
            "edge_removal must be in [0, 0.5)".into(),
        ));
    }
    if !(0.0..=1.0).contains(&two_lane_frac) {
        return Err(SimError::InvalidConfig(
            "two_lane_frac must be in [0, 1]".into(),
        ));
    }
    if !(0.0..0.5).contains(&jitter) || jitter == 0.0 {
        return Err(SimError::InvalidConfig("jitter must be in (0, 0.5)".into()));
    }
    let mut b = NetworkBuilder::new();
    let s = spacing;
    // Jittered lattice positions give varied link lengths.
    let mut nodes = vec![vec![NodeId(0); rows]; cols];
    for (col, column) in nodes.iter_mut().enumerate() {
        for (row, slot) in column.iter_mut().enumerate() {
            let jx = rng.gen_range(-jitter..jitter) * s;
            let jy = rng.gen_range(-jitter..jitter) * s;
            *slot = b.add_node(col as f64 * s + jx, row as f64 * s + jy, true);
        }
    }
    // Candidate interior edges; drop a deterministic random subset, but
    // never disconnect a node below degree 2 (so routes stay plentiful).
    let mut degree = vec![0usize; cols * rows];
    let idx = |c: usize, r: usize| c * rows + r;
    let mut edges: Vec<(usize, usize, usize, usize, Direction)> = Vec::new();
    for c in 0..cols {
        for r in 0..rows {
            if c + 1 < cols {
                edges.push((c, r, c + 1, r, Direction::East));
            }
            if r + 1 < rows {
                edges.push((c, r, c, r + 1, Direction::North));
            }
        }
    }
    for &(c0, r0, c1, r1, _) in &edges {
        degree[idx(c0, r0)] += 1;
        degree[idx(c1, r1)] += 1;
    }
    let mut kept = Vec::new();
    for e in edges {
        let (c0, r0, c1, r1, _) = e;
        let removable = degree[idx(c0, r0)] > 2 && degree[idx(c1, r1)] > 2;
        if removable && rng.gen::<f64>() < edge_removal {
            degree[idx(c0, r0)] -= 1;
            degree[idx(c1, r1)] -= 1;
        } else {
            kept.push(e);
        }
    }
    // Materialize kept edges with heterogeneous lane allocations.
    for (c0, r0, c1, r1, dir) in kept {
        let a = nodes[c0][r0];
        let c = nodes[c1][r1];
        let two_lane = rng.gen::<f64>() < two_lane_frac;
        let lanes = || -> Vec<Lane> {
            if two_lane {
                arterial_lanes()
            } else {
                avenue_lanes()
            }
        };
        b.add_link(a, c, dir, lanes())?;
        b.add_link(c, a, dir.opposite(), lanes())?;
    }
    // Boundary terminals on the west/east rows and south/north columns.
    let mut boundary = Boundary::default();
    let (first_col, last_col) = (&nodes[0], &nodes[cols - 1]);
    for (r, (&wi, &ei)) in first_col.iter().zip(last_col).enumerate() {
        let w = b.add_node(-s, r as f64 * s, false);
        let e = b.add_node(cols as f64 * s, r as f64 * s, false);
        b.add_link(w, wi, Direction::East, vec![Lane::all_movements()])?;
        b.add_link(wi, w, Direction::West, vec![Lane::all_movements()])?;
        b.add_link(e, ei, Direction::West, vec![Lane::all_movements()])?;
        b.add_link(ei, e, Direction::East, vec![Lane::all_movements()])?;
        boundary.west.push(w);
        boundary.east.push(e);
    }
    for (c, column) in nodes.iter().enumerate() {
        let (&si, &ni) = (&column[0], &column[rows - 1]);
        let so = b.add_node(c as f64 * s, -s, false);
        let no = b.add_node(c as f64 * s, rows as f64 * s, false);
        b.add_link(so, si, Direction::North, vec![Lane::all_movements()])?;
        b.add_link(si, so, Direction::South, vec![Lane::all_movements()])?;
        b.add_link(no, ni, Direction::South, vec![Lane::all_movements()])?;
        b.add_link(ni, no, Direction::North, vec![Lane::all_movements()])?;
        boundary.south.push(so);
        boundary.north.push(no);
    }
    let network = b.build()?;
    let signalized = network.signalized_nodes();
    Ok(World {
        network,
        boundary,
        signalized,
    })
}

/// An east–west arterial with side streets: every intersection is
/// four-way (so all plans have four phases and parameter sharing
/// works), the arterial is two-lane, side streets are one-lane.
fn build_corridor(length: usize, spacing: f64) -> Result<World, SimError> {
    if length < 2 {
        return Err(SimError::InvalidConfig(
            "corridor needs at least 2 intersections".into(),
        ));
    }
    if spacing <= 0.0 {
        return Err(SimError::InvalidConfig(
            "corridor spacing must be > 0".into(),
        ));
    }
    let mut b = NetworkBuilder::new();
    let s = spacing;
    let inter: Vec<NodeId> = (0..length)
        .map(|i| b.add_node(i as f64 * s, 0.0, true))
        .collect();
    for pair in inter.windows(2) {
        b.add_link(pair[0], pair[1], Direction::East, arterial_lanes())?;
        b.add_link(pair[1], pair[0], Direction::West, arterial_lanes())?;
    }
    let mut boundary = Boundary::default();
    let w = b.add_node(-s, 0.0, false);
    let e = b.add_node(length as f64 * s, 0.0, false);
    b.add_link(w, inter[0], Direction::East, arterial_lanes())?;
    b.add_link(inter[0], w, Direction::West, arterial_lanes())?;
    b.add_link(e, inter[length - 1], Direction::West, arterial_lanes())?;
    b.add_link(inter[length - 1], e, Direction::East, arterial_lanes())?;
    boundary.west.push(w);
    boundary.east.push(e);
    for (i, &n) in inter.iter().enumerate() {
        let so = b.add_node(i as f64 * s, -s, false);
        let no = b.add_node(i as f64 * s, s, false);
        b.add_link(so, n, Direction::North, avenue_lanes())?;
        b.add_link(n, so, Direction::South, avenue_lanes())?;
        b.add_link(no, n, Direction::South, avenue_lanes())?;
        b.add_link(n, no, Direction::North, avenue_lanes())?;
        boundary.south.push(so);
        boundary.north.push(no);
    }
    let network = b.build()?;
    Ok(World {
        network,
        boundary,
        signalized: inter,
    })
}

/// A rectangular ring road on the perimeter of a `cols × rows`
/// lattice: two-way ring links between adjacent perimeter nodes, one
/// outward terminal per node.
fn build_ring(cols: usize, rows: usize, spacing: f64) -> Result<World, SimError> {
    if cols < 3 || rows < 3 {
        return Err(SimError::InvalidConfig(
            "ring needs at least a 3x3 lattice".into(),
        ));
    }
    if spacing <= 0.0 {
        return Err(SimError::InvalidConfig("ring spacing must be > 0".into()));
    }
    // Perimeter walk, counterclockwise from the southwest corner.
    let mut coords: Vec<(usize, usize)> = Vec::new();
    for c in 0..cols {
        coords.push((c, 0));
    }
    for r in 1..rows {
        coords.push((cols - 1, r));
    }
    for c in (0..cols - 1).rev() {
        coords.push((c, rows - 1));
    }
    for r in (1..rows - 1).rev() {
        coords.push((0, r));
    }
    let mut b = NetworkBuilder::new();
    let s = spacing;
    let nodes: Vec<NodeId> = coords
        .iter()
        .map(|&(c, r)| b.add_node(c as f64 * s, r as f64 * s, true))
        .collect();
    let dir_between = |a: (usize, usize), z: (usize, usize)| -> Direction {
        if z.0 > a.0 {
            Direction::East
        } else if z.0 < a.0 {
            Direction::West
        } else if z.1 > a.1 {
            Direction::North
        } else {
            Direction::South
        }
    };
    let n = nodes.len();
    for i in 0..n {
        let j = (i + 1) % n;
        let d = dir_between(coords[i], coords[j]);
        b.add_link(nodes[i], nodes[j], d, avenue_lanes())?;
        b.add_link(nodes[j], nodes[i], d.opposite(), avenue_lanes())?;
    }
    // One outward terminal per node: bottom/top rows get south/north
    // terminals (corners included), the remaining side nodes get
    // west/east terminals.
    let mut boundary = Boundary::default();
    let mut with_side: Vec<(usize, NodeId, Direction)> = Vec::new();
    for (i, &(c, r)) in coords.iter().enumerate() {
        let (outward, tx, ty) = if r == 0 {
            (Direction::South, c as f64 * s, -s)
        } else if r == rows - 1 {
            (Direction::North, c as f64 * s, rows as f64 * s)
        } else if c == 0 {
            (Direction::West, -s, r as f64 * s)
        } else {
            (Direction::East, cols as f64 * s, r as f64 * s)
        };
        let t = b.add_node(tx, ty, false);
        b.add_link(t, nodes[i], outward.opposite(), avenue_lanes())?;
        b.add_link(nodes[i], t, outward, avenue_lanes())?;
        with_side.push((i, t, outward));
    }
    // Boundary lists in the conventional order: west/east south→north,
    // south/north west→east.
    let mut sided: Vec<(Direction, usize, usize, NodeId)> = with_side
        .iter()
        .map(|&(i, t, d)| (d, coords[i].0, coords[i].1, t))
        .collect();
    sided.sort_by_key(|&(_, c, r, _)| (c, r));
    for &(d, _, _, t) in &sided {
        match d {
            Direction::West => boundary.west.push(t),
            Direction::East => boundary.east.push(t),
            Direction::South => boundary.south.push(t),
            Direction::North => boundary.north.push(t),
        }
    }
    let network = b.build()?;
    Ok(World {
        network,
        boundary,
        signalized: nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn grid_topology_matches_tsc_sim_grid() {
        let w = build(
            &TopologySpec::Grid {
                cols: 6,
                rows: 6,
                spacing: 200.0,
            },
            &mut rng(),
        )
        .unwrap();
        assert_eq!(w.network.num_nodes(), 60);
        assert_eq!(w.signalized.len(), 36);
        assert_eq!(w.boundary.rows(), 6);
        assert_eq!(w.boundary.cols(), 6);
    }

    #[test]
    fn corridor_has_four_way_intersections_only() {
        let w = build(
            &TopologySpec::Corridor {
                length: 10,
                spacing: 200.0,
            },
            &mut rng(),
        )
        .unwrap();
        assert_eq!(w.signalized.len(), 10);
        for &n in &w.signalized {
            assert_eq!(w.network.incoming(n).len(), 4);
            assert_eq!(w.network.outgoing(n).len(), 4);
        }
        for plan in w.signal_plans().unwrap() {
            assert_eq!(plan.num_phases(), 4, "uniform plans → sharing works");
        }
        assert_eq!(w.boundary.rows(), 1);
        assert_eq!(w.boundary.cols(), 10);
    }

    #[test]
    fn ring_perimeter_count_and_terminals() {
        let w = build(
            &TopologySpec::Ring {
                cols: 5,
                rows: 4,
                spacing: 150.0,
            },
            &mut rng(),
        )
        .unwrap();
        let perimeter = 2 * (5 + 4) - 4;
        assert_eq!(w.signalized.len(), perimeter);
        let terminals = w.boundary.all();
        assert_eq!(terminals.len(), perimeter, "one terminal per ring node");
        // Every ring node has exactly one incoming link per direction
        // present (the obs encoder maps directions to fixed slots).
        for &n in &w.signalized {
            let dirs: Vec<_> = w
                .network
                .incoming(n)
                .iter()
                .map(|&l| w.network.link(l).direction())
                .collect();
            let mut dedup = dirs.clone();
            dedup.sort_by_key(|d| d.index());
            dedup.dedup();
            assert_eq!(dirs.len(), dedup.len(), "no direction-slot collision");
        }
    }

    #[test]
    fn city_is_irregular_and_validated() {
        let w = build(
            &TopologySpec::City {
                cols: 6,
                rows: 5,
                spacing: 250.0,
                edge_removal: 0.18,
                two_lane_frac: 0.4,
                jitter: 0.18,
            },
            &mut rng(),
        )
        .unwrap();
        assert_eq!(w.signalized.len(), 30);
        let degrees: std::collections::HashSet<usize> = w
            .signalized
            .iter()
            .map(|&n| w.network.incoming(n).len())
            .collect();
        assert!(degrees.len() >= 2, "irregular degree");
        assert!(build(
            &TopologySpec::City {
                cols: 2,
                rows: 5,
                spacing: 250.0,
                edge_removal: 0.18,
                two_lane_frac: 0.4,
                jitter: 0.18,
            },
            &mut rng(),
        )
        .is_err());
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        assert!(build(
            &TopologySpec::Corridor {
                length: 1,
                spacing: 200.0
            },
            &mut rng()
        )
        .is_err());
        assert!(build(
            &TopologySpec::Ring {
                cols: 2,
                rows: 3,
                spacing: 200.0
            },
            &mut rng()
        )
        .is_err());
        assert!(build(
            &TopologySpec::Grid {
                cols: 1,
                rows: 2,
                spacing: 200.0
            },
            &mut rng()
        )
        .is_err());
    }
}
