//! Divergence sentinel: finite-value and explosion checks for PPO/A2C
//! updates.
//!
//! RL training on oversaturated traffic is numerically hostile: a
//! single NaN gradient silently poisons every parameter it touches, and
//! from that update on the model trains on garbage without crashing.
//! These checks run *after* each update so a trainer can detect the
//! poisoning at the round that caused it, roll back to the last good
//! state, and retry — instead of discovering a NaN policy hours later.
//!
//! The checks are deliberately cheap (a linear scan of losses, the
//! pre-clip gradient norm, and the parameter vector) so they can run
//! every round without measurable overhead.

use std::error::Error;
use std::fmt;

/// Why an update was judged divergent.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Divergence {
    /// A loss, entropy, or gradient-norm statistic was NaN or infinite.
    NonFinite {
        /// Which statistic tripped (e.g. `"policy loss"`).
        what: &'static str,
        /// The offending value.
        value: f32,
    },
    /// A loss magnitude exceeded the configured explosion limit.
    Explosion {
        /// Which statistic tripped.
        what: &'static str,
        /// The offending value.
        value: f32,
        /// The configured limit.
        limit: f32,
    },
    /// A parameter became NaN or infinite after the update.
    NonFiniteParam {
        /// Flat index of the first offending scalar.
        index: usize,
        /// The offending value.
        value: f32,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::NonFinite { what, value } => {
                write!(f, "{what} is non-finite ({value})")
            }
            Divergence::Explosion { what, value, limit } => {
                write!(f, "{what} magnitude {value} exceeds limit {limit}")
            }
            Divergence::NonFiniteParam { index, value } => {
                write!(f, "parameter {index} is non-finite ({value}) after update")
            }
        }
    }
}

impl Error for Divergence {}

/// Loss and gradient statistics of one optimization round, as consumed
/// by [`check_update`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Maximum pre-clip global gradient norm over the round's
    /// minibatches.
    pub grad_norm: f32,
}

/// Checks one round's update statistics: every statistic must be
/// finite, and loss magnitudes must stay below `loss_limit` (entropy is
/// bounded by `ln(num_actions)` so it only gets the finiteness check;
/// the gradient norm is clipped after measurement so it likewise only
/// needs to be finite).
///
/// # Errors
///
/// Returns the first [`Divergence`] found, in field order.
pub fn check_update(stats: &UpdateStats, loss_limit: f32) -> Result<(), Divergence> {
    for (what, value, bounded) in [
        ("policy loss", stats.policy_loss, true),
        ("value loss", stats.value_loss, true),
        ("entropy", stats.entropy, false),
        ("gradient norm", stats.grad_norm, false),
    ] {
        if !value.is_finite() {
            return Err(Divergence::NonFinite { what, value });
        }
        if bounded && value.abs() > loss_limit {
            return Err(Divergence::Explosion {
                what,
                value,
                limit: loss_limit,
            });
        }
    }
    Ok(())
}

/// Scans a flat parameter stream for NaN/infinite scalars (the
/// post-update half of the sentinel: a poisoned optimizer step can
/// produce finite losses *this* round yet leave non-finite weights for
/// the next).
///
/// # Errors
///
/// Returns [`Divergence::NonFiniteParam`] for the first offending
/// scalar.
pub fn check_finite_params<I: IntoIterator<Item = f32>>(params: I) -> Result<(), Divergence> {
    for (index, value) in params.into_iter().enumerate() {
        if !value.is_finite() {
            return Err(Divergence::NonFiniteParam { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> UpdateStats {
        UpdateStats {
            policy_loss: -0.02,
            value_loss: 0.5,
            entropy: 1.2,
            grad_norm: 3.0,
        }
    }

    #[test]
    fn healthy_update_passes() {
        assert_eq!(check_update(&healthy(), 100.0), Ok(()));
    }

    #[test]
    fn nan_loss_is_caught() {
        let mut s = healthy();
        s.policy_loss = f32::NAN;
        assert!(matches!(
            check_update(&s, 100.0),
            Err(Divergence::NonFinite {
                what: "policy loss",
                ..
            })
        ));
    }

    #[test]
    fn infinite_grad_norm_is_caught() {
        let mut s = healthy();
        s.grad_norm = f32::INFINITY;
        assert!(matches!(
            check_update(&s, 100.0),
            Err(Divergence::NonFinite {
                what: "gradient norm",
                ..
            })
        ));
    }

    #[test]
    fn loss_explosion_is_caught_but_large_entropy_is_not() {
        let mut s = healthy();
        s.value_loss = 1e6;
        assert!(matches!(
            check_update(&s, 1e4),
            Err(Divergence::Explosion {
                what: "value loss",
                ..
            })
        ));
        let mut s = healthy();
        s.entropy = 1e6; // entropy is never "exploded", only non-finite
        assert_eq!(check_update(&s, 1e4), Ok(()));
    }

    #[test]
    fn param_scan_reports_first_bad_index() {
        assert_eq!(check_finite_params([0.0, 1.5, -2.0]), Ok(()));
        assert!(matches!(
            check_finite_params([0.0, f32::NAN, f32::INFINITY]),
            Err(Divergence::NonFiniteParam { index: 1, .. })
        ));
    }

    #[test]
    fn display_is_informative() {
        let d = Divergence::Explosion {
            what: "value loss",
            value: 2e4,
            limit: 1e4,
        };
        assert!(d.to_string().contains("exceeds limit"));
    }
}
