//! Advantage Actor-Critic losses (Eqs. 1–3) — the backbone of the MA2C
//! baseline (Chu et al., 2019).

use tsc_nn::{Graph, Tensor, Var};

/// Hyper-parameters of an A2C update.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct A2cConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ (MA2C uses n-step returns; λ=1 reproduces that).
    pub lambda: f32,
    /// Learning rate.
    pub lr: f32,
    /// Entropy coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Spatial discount applied to neighbor observations and rewards
    /// (MA2C's α).
    pub spatial_discount: f32,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: 0.99,
            lambda: 1.0,
            lr: 5e-4,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 0.5,
            spatial_discount: 0.75,
        }
    }
}

/// Vanilla policy-gradient loss `-mean(log π(a|s) · Â)` (Eq. 1),
/// negated for minimization.
///
/// # Panics
///
/// Panics if `advantages.len()` differs from the node's row count.
pub fn policy_loss(g: &mut Graph, log_probs: Var, advantages: &[f32]) -> Var {
    let n = g.value(log_probs).rows();
    assert_eq!(advantages.len(), n);
    let adv = g.input(Tensor::from_vec(n, 1, advantages.to_vec()));
    let weighted = g.mul(log_probs, adv);
    let mean = g.mean(weighted);
    g.scale(mean, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_nn::Params;

    #[test]
    fn gradient_pushes_towards_advantageous_action() {
        let mut params = Params::new();
        let w = params.add("logits", Tensor::from_rows(&[&[0.0, 0.0]]));
        let mut g = Graph::new();
        let logits = g.param(&params, w);
        let logp = g.log_softmax(logits);
        let picked = g.gather_cols(logp, vec![1]);
        let loss = policy_loss(&mut g, picked, &[2.0]);
        g.backward(loss, &mut params);
        assert!(params.grad(w).get(0, 1) < 0.0, "descend raises logit 1");
        assert!(params.grad(w).get(0, 0) > 0.0);
    }

    #[test]
    fn negative_advantage_reverses_direction() {
        let mut params = Params::new();
        let w = params.add("logits", Tensor::from_rows(&[&[0.0, 0.0]]));
        let mut g = Graph::new();
        let logits = g.param(&params, w);
        let logp = g.log_softmax(logits);
        let picked = g.gather_cols(logp, vec![1]);
        let loss = policy_loss(&mut g, picked, &[-2.0]);
        g.backward(loss, &mut params);
        assert!(params.grad(w).get(0, 1) > 0.0, "descend lowers logit 1");
    }
}
