//! Categorical action distributions and exploration policies.

use rand::Rng;

/// A categorical distribution over discrete actions, given as
/// probabilities (already normalized, e.g. a softmax row).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical<'a> {
    probs: &'a [f32],
}

impl<'a> Categorical<'a> {
    /// Wraps a probability vector.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the probabilities sum to ~1.
    pub fn new(probs: &'a [f32]) -> Self {
        debug_assert!(
            (probs.iter().sum::<f32>() - 1.0).abs() < 1e-3,
            "probs must sum to 1"
        );
        Categorical { probs }
    }

    /// Samples an action index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f32 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.probs.len() - 1
    }

    /// Index of the most probable action.
    pub fn argmax(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Natural log probability of `action` (floored at 1e-8 for
    /// numerical safety).
    pub fn log_prob(&self, action: usize) -> f32 {
        self.probs[action].max(1e-8).ln()
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f32 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f32>()
    }
}

/// ε-greedy wrapper (Algorithm 1 line 13): with probability ε pick a
/// uniformly random action, otherwise follow the distribution's mode.
pub fn epsilon_greedy<R: Rng>(probs: &[f32], epsilon: f32, rng: &mut R) -> usize {
    if rng.gen::<f32>() < epsilon {
        rng.gen_range(0..probs.len())
    } else {
        Categorical::new(probs).argmax()
    }
}

/// A linearly decaying exploration schedule.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearSchedule {
    /// Value at step 0.
    pub start: f32,
    /// Final value.
    pub end: f32,
    /// Steps over which the value decays from `start` to `end`.
    pub decay_steps: u64,
}

impl LinearSchedule {
    /// The schedule value at `step`.
    pub fn value(&self, step: u64) -> f32 {
        if self.decay_steps == 0 || step >= self.decay_steps {
            return self.end;
        }
        let f = step as f32 / self.decay_steps as f32;
        self.start + f * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_matches_probabilities() {
        let probs = [0.1f32, 0.7, 0.2];
        let d = Categorical::new(&probs);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let freq = counts[i] as f32 / 10_000.0;
            assert!((freq - p).abs() < 0.03, "arm {i}: {freq} vs {p}");
        }
    }

    #[test]
    fn argmax_and_log_prob() {
        let probs = [0.1f32, 0.7, 0.2];
        let d = Categorical::new(&probs);
        assert_eq!(d.argmax(), 1);
        assert!((d.log_prob(1) - 0.7f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = [0.25f32; 4];
        let skewed = [0.97f32, 0.01, 0.01, 0.01];
        assert!(Categorical::new(&uniform).entropy() > Categorical::new(&skewed).entropy());
        assert!((Categorical::new(&uniform).entropy() - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn epsilon_one_is_uniform_random() {
        let probs = [0.0f32, 1.0, 0.0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_other = false;
        for _ in 0..100 {
            if epsilon_greedy(&probs, 1.0, &mut rng) != 1 {
                saw_other = true;
            }
        }
        assert!(saw_other);
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let probs = [0.0f32, 1.0, 0.0];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(epsilon_greedy(&probs, 0.0, &mut rng), 1);
        }
    }

    #[test]
    fn linear_schedule_endpoints() {
        let s = LinearSchedule {
            start: 1.0,
            end: 0.05,
            decay_steps: 100,
        };
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(100), 0.05);
        assert_eq!(s.value(1000), 0.05);
        assert!((s.value(50) - 0.525).abs() < 1e-6);
    }
}
