//! Experience buffers for on-policy (rollout) and off-policy (replay)
//! learning.
//!
//! The rollout buffer mirrors Algorithm 1 line 20: per agent and step it
//! stores `(s, u, r, v, h, m̂)` — observation, action, reward, value
//! estimate, recurrent hidden state, and the regularized message — plus
//! the behavior policy's log-probability needed by the PPO ratio.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::gae::{gae, normalize_advantages};

/// One stored decision of one agent.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Actor network input (local observation, *without* the message —
    /// messages are stored separately so communication ablations can
    /// reuse the same buffer).
    pub obs: Vec<f32>,
    /// Critic network input (own + neighbor observations).
    pub critic_obs: Vec<f32>,
    /// Chosen action (phase index).
    pub action: usize,
    /// Reward received after the action (Eq. 6).
    pub reward: f32,
    /// Critic value estimate at decision time.
    pub value: f32,
    /// Behavior log π(a|s) at decision time.
    pub log_prob: f32,
    /// Actor LSTM state (h, c) *before* this step.
    pub actor_h: (Vec<f32>, Vec<f32>),
    /// Critic LSTM state (h, c) *before* this step.
    pub critic_h: (Vec<f32>, Vec<f32>),
    /// Incoming regularized message(s) m̂ consumed this step.
    pub message_in: Vec<f32>,
    /// Algorithm-specific auxiliary targets (e.g. the congestion target
    /// of PairUpLight's message head). Empty when unused.
    pub aux: Vec<f32>,
}

/// Post-GAE training target for one transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// GAE advantage (normalized across the batch).
    pub advantage: f32,
    /// Reward-to-go return for the value loss.
    pub ret: f32,
}

/// The on-policy experience one environment replica produces in one
/// collection round, before any cross-env merging.
///
/// Collection workers each fill their own `Trajectory` against an
/// immutable policy snapshot; [`RolloutBuffer::from_trajectories`] then
/// merges them in env-index order, so downstream GAE / advantage
/// normalization / minibatch shuffling see a canonical layout that is
/// independent of thread scheduling.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// Per-agent transition sequences, in agent order.
    pub agents: Vec<Vec<Transition>>,
    /// Per-agent bootstrap values v(s_T), in agent order.
    pub last_values: Vec<f32>,
}

impl Trajectory {
    /// An empty trajectory for `num_agents` agents.
    pub fn new(num_agents: usize) -> Self {
        Trajectory {
            agents: vec![Vec::new(); num_agents],
            last_values: vec![0.0; num_agents],
        }
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Appends a transition for agent `a`.
    pub fn push(&mut self, a: usize, t: Transition) {
        self.agents[a].push(t);
    }

    /// Total transitions across agents.
    pub fn total(&self) -> usize {
        self.agents.iter().map(Vec::len).sum()
    }
}

/// On-policy rollout storage for `num_lanes` parallel trajectories.
///
/// A *lane* is one (environment replica, agent) pair. Single-env
/// training uses one lane per agent; multi-env training lays lanes out
/// env-major (`lane = env_idx * num_agents + agent`, see
/// [`Self::from_trajectories`]), which keeps GAE, batch-wide advantage
/// normalization, and minibatch shuffling unchanged.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    agents: Vec<Vec<Transition>>,
    targets: Vec<Vec<Target>>,
}

impl RolloutBuffer {
    /// Creates a buffer for `num_agents` agents.
    pub fn new(num_agents: usize) -> Self {
        RolloutBuffer {
            agents: vec![Vec::new(); num_agents],
            targets: vec![Vec::new(); num_agents],
        }
    }

    /// Merges per-env trajectories into one multi-env buffer plus the
    /// concatenated bootstrap values for
    /// [`compute_targets`](Self::compute_targets).
    ///
    /// Lanes are laid out env-major: the trajectory at `trajs[e]`
    /// occupies lanes `e * num_agents .. (e + 1) * num_agents`, so a
    /// lane maps back to its agent as `lane % num_agents`. Because the
    /// caller passes `trajs` in env-index order (not thread completion
    /// order), the merged buffer — and therefore advantage
    /// normalization and minibatch shuffling — is bit-identical
    /// between serial and parallel collection.
    ///
    /// # Panics
    ///
    /// Panics if `trajs` is empty or the trajectories disagree on
    /// agent count.
    pub fn from_trajectories(trajs: Vec<Trajectory>) -> (Self, Vec<f32>) {
        assert!(!trajs.is_empty(), "need at least one trajectory");
        let num_agents = trajs[0].num_agents();
        let mut agents = Vec::with_capacity(trajs.len() * num_agents);
        let mut last_values = Vec::with_capacity(trajs.len() * num_agents);
        for traj in trajs {
            assert_eq!(
                traj.num_agents(),
                num_agents,
                "trajectories must agree on agent count"
            );
            assert_eq!(traj.last_values.len(), num_agents);
            agents.extend(traj.agents);
            last_values.extend(traj.last_values);
        }
        let targets = vec![Vec::new(); agents.len()];
        (RolloutBuffer { agents, targets }, last_values)
    }

    /// Number of lanes (agents × merged envs).
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Steps stored for agent `a`.
    pub fn len(&self, a: usize) -> usize {
        self.agents[a].len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.agents.iter().all(Vec::is_empty)
    }

    /// Total transitions across agents.
    pub fn total(&self) -> usize {
        self.agents.iter().map(Vec::len).sum()
    }

    /// Appends a transition for agent `a`.
    pub fn push(&mut self, a: usize, t: Transition) {
        self.agents[a].push(t);
    }

    /// Transitions of agent `a`.
    pub fn transitions(&self, a: usize) -> &[Transition] {
        &self.agents[a]
    }

    /// Training target for `(agent, step)` (after
    /// [`compute_targets`](Self::compute_targets)).
    pub fn target(&self, a: usize, t: usize) -> Target {
        self.targets[a][t]
    }

    /// Runs GAE per agent (Algorithm 1 lines 27–28) with bootstrap
    /// values `last_values[a]`, then normalizes advantages across the
    /// whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `last_values` length differs from the agent count.
    pub fn compute_targets(&mut self, last_values: &[f32], gamma: f32, lambda: f32) {
        let _span = tsc_obs::span!("gae.compute_targets");
        assert_eq!(last_values.len(), self.agents.len());
        let mut all_adv = Vec::with_capacity(self.total());
        let mut per_agent = Vec::with_capacity(self.agents.len());
        for (a, steps) in self.agents.iter().enumerate() {
            let rewards: Vec<f32> = steps.iter().map(|t| t.reward).collect();
            let values: Vec<f32> = steps.iter().map(|t| t.value).collect();
            let (adv, ret) = gae(&rewards, &values, last_values[a], gamma, lambda);
            all_adv.extend_from_slice(&adv);
            per_agent.push((adv, ret));
        }
        normalize_advantages(&mut all_adv);
        let mut k = 0;
        self.targets.clear();
        for (adv, ret) in per_agent {
            let n = adv.len();
            let normalized = &all_adv[k..k + n];
            k += n;
            self.targets.push(
                normalized
                    .iter()
                    .zip(&ret)
                    .map(|(&advantage, &ret)| Target { advantage, ret })
                    .collect(),
            );
        }
    }

    /// All `(agent, step)` indices shuffled into minibatches of
    /// `minibatch` (last batch may be smaller).
    pub fn minibatches<R: Rng>(&self, minibatch: usize, rng: &mut R) -> Vec<Vec<(usize, usize)>> {
        let mut idx: Vec<(usize, usize)> = self
            .agents
            .iter()
            .enumerate()
            .flat_map(|(a, steps)| (0..steps.len()).map(move |t| (a, t)))
            .collect();
        idx.shuffle(rng);
        idx.chunks(minibatch.max(1)).map(<[_]>::to_vec).collect()
    }

    /// Clears all stored experience.
    pub fn clear(&mut self) {
        for a in &mut self.agents {
            a.clear();
        }
        self.targets.clear();
    }
}

/// One off-policy transition for DQN.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTransition {
    /// State at decision time.
    pub obs: Vec<f32>,
    /// Chosen action.
    pub action: usize,
    /// Observed reward.
    pub reward: f32,
    /// Successor state.
    pub next_obs: Vec<f32>,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<ReplayTransition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            capacity,
            data: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Adds a transition, evicting the oldest once full.
    pub fn push(&mut self, t: ReplayTransition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Uniformly samples `batch` transitions (with replacement when the
    /// buffer is smaller than `batch`).
    pub fn sample<'a, R: Rng>(&'a self, batch: usize, rng: &mut R) -> Vec<&'a ReplayTransition> {
        (0..batch)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dummy(reward: f32, value: f32) -> Transition {
        Transition {
            obs: vec![0.0],
            critic_obs: vec![0.0],
            action: 0,
            reward,
            value,
            log_prob: -1.0,
            actor_h: (vec![], vec![]),
            critic_h: (vec![], vec![]),
            message_in: vec![],
            aux: vec![],
        }
    }

    #[test]
    fn targets_match_direct_gae() {
        let mut buf = RolloutBuffer::new(1);
        for (r, v) in [(1.0, 0.5), (0.0, 0.2), (2.0, 0.1)] {
            buf.push(0, dummy(r, v));
        }
        buf.compute_targets(&[0.3], 0.9, 0.95);
        let (raw_adv, ret) = gae(&[1.0, 0.0, 2.0], &[0.5, 0.2, 0.1], 0.3, 0.9, 0.95);
        let mut norm = raw_adv;
        normalize_advantages(&mut norm);
        for t in 0..3 {
            assert!((buf.target(0, t).advantage - norm[t]).abs() < 1e-6);
            assert!((buf.target(0, t).ret - ret[t]).abs() < 1e-6);
        }
    }

    #[test]
    fn normalization_spans_agents() {
        let mut buf = RolloutBuffer::new(2);
        buf.push(0, dummy(10.0, 0.0));
        buf.push(1, dummy(-10.0, 0.0));
        buf.compute_targets(&[0.0, 0.0], 0.99, 0.95);
        let a = buf.target(0, 0).advantage;
        let b = buf.target(1, 0).advantage;
        assert!((a + b).abs() < 1e-5, "normalized to zero mean");
        assert!(a > 0.0 && b < 0.0);
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let mut buf = RolloutBuffer::new(3);
        for a in 0..3 {
            for _ in 0..5 {
                buf.push(a, dummy(0.0, 0.0));
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batches = buf.minibatches(4, &mut rng);
        let mut seen: Vec<(usize, usize)> = batches.into_iter().flatten().collect();
        seen.sort();
        let mut expect: Vec<(usize, usize)> =
            (0..3).flat_map(|a| (0..5).map(move |t| (a, t))).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn from_trajectories_merges_env_major() {
        // Two envs × two agents; rewards tag (env, agent) so lane
        // placement is observable.
        let mut t0 = Trajectory::new(2);
        t0.push(0, dummy(0.0, 0.1));
        t0.push(1, dummy(1.0, 0.1));
        t0.last_values = vec![10.0, 11.0];
        let mut t1 = Trajectory::new(2);
        t1.push(0, dummy(2.0, 0.1));
        t1.push(1, dummy(3.0, 0.1));
        t1.last_values = vec![12.0, 13.0];

        let (buf, last) = RolloutBuffer::from_trajectories(vec![t0, t1]);
        assert_eq!(buf.num_agents(), 4, "lanes = envs * agents");
        assert_eq!(last, vec![10.0, 11.0, 12.0, 13.0]);
        for lane in 0..4 {
            assert_eq!(buf.transitions(lane)[0].reward, lane as f32);
            // Env-major layout: agent recoverable as lane % num_agents.
            let agent = lane % 2;
            assert_eq!(lane / 2 * 2 + agent, lane);
        }
    }

    #[test]
    fn single_trajectory_merge_matches_plain_buffer() {
        // K = 1 must reduce exactly to the single-env layout, which is
        // what keeps `train_episode` behavior unchanged.
        let mut traj = Trajectory::new(2);
        traj.push(0, dummy(1.0, 0.5));
        traj.push(0, dummy(0.0, 0.2));
        traj.push(1, dummy(2.0, 0.1));
        traj.last_values = vec![0.3, 0.4];

        let mut direct = RolloutBuffer::new(2);
        direct.push(0, dummy(1.0, 0.5));
        direct.push(0, dummy(0.0, 0.2));
        direct.push(1, dummy(2.0, 0.1));

        let (mut merged, last) = RolloutBuffer::from_trajectories(vec![traj]);
        assert_eq!(last, vec![0.3, 0.4]);
        merged.compute_targets(&last, 0.9, 0.95);
        direct.compute_targets(&[0.3, 0.4], 0.9, 0.95);
        for a in 0..2 {
            assert_eq!(merged.transitions(a), direct.transitions(a));
            for t in 0..merged.len(a) {
                assert_eq!(merged.target(a, t), direct.target(a, t));
            }
        }
    }

    #[test]
    fn replay_buffer_evicts_fifo() {
        let mut buf = ReplayBuffer::new(2);
        for i in 0..3 {
            buf.push(ReplayTransition {
                obs: vec![i as f32],
                action: 0,
                reward: 0.0,
                next_obs: vec![],
                done: false,
            });
        }
        assert_eq!(buf.len(), 2);
        let stored: Vec<f32> = buf.data.iter().map(|t| t.obs[0]).collect();
        assert!(stored.contains(&2.0), "newest kept");
        assert!(!stored.contains(&0.0), "oldest evicted");
    }

    #[test]
    fn replay_sampling_returns_requested_batch() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..5 {
            buf.push(ReplayTransition {
                obs: vec![i as f32],
                action: i,
                reward: 0.0,
                next_obs: vec![],
                done: false,
            });
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(buf.sample(8, &mut rng).len(), 8);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut buf = RolloutBuffer::new(1);
        buf.push(0, dummy(1.0, 0.0));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.total(), 0);
    }
}
