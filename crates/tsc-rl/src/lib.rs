//! # tsc-rl — reinforcement-learning algorithms
//!
//! The RL substrate of the PairUpLight reproduction:
//!
//! * [`mod@gae`] — Generalized Advantage Estimation and advantage
//!   normalization (Algorithm 1 lines 27–28);
//! * [`ppo`] — the clipped surrogate objective, value loss and entropy
//!   bonus of the paper's backbone (Eqs. 1–4, 7);
//! * [`a2c`] — vanilla actor-critic losses for the MA2C baseline;
//! * [`dqn`] — TD targets, Q-regression loss and replay for the CoLight
//!   baseline;
//! * [`buffer`] — on-policy rollout storage mirroring Algorithm 1
//!   line 20 and an off-policy replay buffer;
//! * [`distribution`] — categorical sampling, ε-greedy, schedules;
//! * [`sentinel`] — post-update divergence checks (non-finite losses,
//!   gradients, and parameters; loss explosion) backing the trainer's
//!   rollback-and-retry fault tolerance.
//!
//! Loss builders assemble onto a [`tsc_nn::Graph`], so any network
//! architecture plugs in its own forward pass. The integration test in
//! `tests/` trains PPO and DQN learners to optimality on toy MDPs.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod a2c;
pub mod buffer;
pub mod distribution;
pub mod dqn;
pub mod gae;
pub mod ppo;
pub mod sentinel;

pub use a2c::A2cConfig;
pub use buffer::{ReplayBuffer, ReplayTransition, RolloutBuffer, Target, Trajectory, Transition};
pub use distribution::{epsilon_greedy, Categorical, LinearSchedule};
pub use dqn::DqnConfig;
pub use gae::{gae, normalize_advantages};
pub use ppo::PpoConfig;
pub use sentinel::{check_finite_params, check_update, Divergence, UpdateStats};
