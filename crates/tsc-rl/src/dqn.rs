//! Deep Q-learning machinery — the backbone RL model of the CoLight
//! baseline (Wei et al., 2019).

use tsc_nn::{Graph, Tensor, Var};

use crate::buffer::ReplayTransition;

/// Hyper-parameters of a DQN learner.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// Learning rate.
    pub lr: f32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Environment steps between target-network syncs.
    pub target_sync: usize,
    /// Warm-up transitions before learning starts.
    pub warmup: usize,
    /// ε-greedy start.
    pub eps_start: f32,
    /// ε-greedy end.
    pub eps_end: f32,
    /// ε decay steps.
    pub eps_decay: u64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            gamma: 0.99,
            lr: 1e-3,
            replay_capacity: 50_000,
            batch_size: 32,
            target_sync: 500,
            warmup: 500,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay: 20_000,
            max_grad_norm: 10.0,
        }
    }
}

/// Computes TD targets `r + γ · max_a' Q_target(s', a')` (zeroing the
/// bootstrap on terminal transitions) from a batch of transitions and
/// the target network's Q values for the successor states.
///
/// # Panics
///
/// Panics if `next_q.rows()` differs from the batch size.
pub fn td_targets(batch: &[&ReplayTransition], next_q: &Tensor, gamma: f32) -> Vec<f32> {
    assert_eq!(next_q.rows(), batch.len());
    batch
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if t.done {
                t.reward
            } else {
                let max_q = next_q
                    .row(i)
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max);
                t.reward + gamma * max_q
            }
        })
        .collect()
}

/// Builds the DQN regression loss `mean((Q(s, a) - y)²)` where `q` is
/// the online network's `batch × actions` output.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn q_loss(g: &mut Graph, q: Var, actions: &[usize], targets: &[f32]) -> Var {
    let n = g.value(q).rows();
    assert_eq!(actions.len(), n);
    assert_eq!(targets.len(), n);
    let picked = g.gather_cols(q, actions.to_vec());
    let y = g.input(Tensor::from_vec(n, 1, targets.to_vec()));
    let d = g.sub(picked, y);
    let sq = g.square(d);
    g.mean(sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(reward: f32, done: bool) -> ReplayTransition {
        ReplayTransition {
            obs: vec![0.0],
            action: 0,
            reward,
            next_obs: vec![0.0],
            done,
        }
    }

    #[test]
    fn targets_bootstrap_with_max_q() {
        let a = tr(1.0, false);
        let b = tr(2.0, true);
        let batch = vec![&a, &b];
        let next_q = Tensor::from_rows(&[&[0.5, 3.0], &[9.0, 9.0]]);
        let y = td_targets(&batch, &next_q, 0.9);
        assert!((y[0] - (1.0 + 0.9 * 3.0)).abs() < 1e-6);
        assert_eq!(y[1], 2.0, "terminal transition has no bootstrap");
    }

    #[test]
    fn q_loss_vanishes_at_targets() {
        let mut g = Graph::new();
        let q = g.input(Tensor::from_rows(&[&[1.0, 5.0], &[2.0, 0.0]]));
        let loss = q_loss(&mut g, q, &[1, 0], &[5.0, 2.0]);
        assert_eq!(g.value(loss).get(0, 0), 0.0);
    }

    #[test]
    fn q_loss_gradient_moves_selected_action_only() {
        let mut params = tsc_nn::Params::new();
        let w = params.add("q", Tensor::from_rows(&[&[0.0, 0.0]]));
        let mut g = Graph::new();
        let q = g.param(&params, w);
        let loss = q_loss(&mut g, q, &[0], &[1.0]);
        g.backward(loss, &mut params);
        assert!(params.grad(w).get(0, 0) != 0.0);
        assert_eq!(params.grad(w).get(0, 1), 0.0, "unselected action untouched");
    }
}
