//! Generalized Advantage Estimation (Schulman et al., 2015) — the
//! advantage estimator of the paper's backbone (Eq. 7, Algorithm 1
//! line 27) — plus reward-to-go returns (line 28).

/// Computes GAE(γ, λ) advantages and reward-to-go returns for one
/// trajectory.
///
/// `values[t]` is the critic estimate for the state at step `t`;
/// `last_value` bootstraps the value after the final transition (0 for
/// terminal states, `V(s_{B+1})` otherwise — Algorithm 1 line 24).
/// Returns `(advantages, returns)` with `returns[t] = adv[t] + values[t]`.
///
/// # Panics
///
/// Panics if `rewards` and `values` differ in length.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    last_value: f32,
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(rewards.len(), values.len(), "one value per reward");
    let n = rewards.len();
    let mut adv = vec![0.0f32; n];
    let mut acc = 0.0f32;
    for t in (0..n).rev() {
        let next_v = if t + 1 < n { values[t + 1] } else { last_value };
        let delta = rewards[t] + gamma * next_v - values[t];
        acc = delta + gamma * lambda * acc;
        adv[t] = acc;
    }
    let returns = adv.iter().zip(values).map(|(a, v)| a + v).collect();
    (adv, returns)
}

/// Normalizes advantages to zero mean and unit variance (the standard
/// PPO stabilization). No-op on fewer than two samples.
pub fn normalize_advantages(adv: &mut [f32]) {
    if adv.len() < 2 {
        return;
    }
    let n = adv.len() as f32;
    let mean = adv.iter().sum::<f32>() / n;
    let var = adv.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    for a in adv.iter_mut() {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_with_lambda_one_is_discounted_return_minus_value() {
        let rewards = [1.0f32, 1.0, 1.0];
        let values = [0.5f32, 0.5, 0.5];
        let gamma = 0.9;
        let (adv, returns) = gae(&rewards, &values, 0.0, gamma, 1.0);
        // Monte-Carlo return at t=0: 1 + 0.9 + 0.81 = 2.71.
        assert!((returns[0] - 2.71).abs() < 1e-5);
        assert!((adv[0] - (2.71 - 0.5)).abs() < 1e-5);
    }

    #[test]
    fn gae_with_lambda_zero_is_one_step_td() {
        let rewards = [1.0f32, 2.0];
        let values = [0.5f32, 1.0];
        let gamma = 0.9;
        let (adv, _) = gae(&rewards, &values, 3.0, gamma, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 1.0 - 0.5)).abs() < 1e-6);
        assert!((adv[1] - (2.0 + 0.9 * 3.0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_value_propagates() {
        let (adv_no_boot, _) = gae(&[0.0], &[0.0], 0.0, 0.99, 0.95);
        let (adv_boot, _) = gae(&[0.0], &[0.0], 10.0, 0.99, 0.95);
        assert_eq!(adv_no_boot[0], 0.0);
        assert!((adv_boot[0] - 9.9).abs() < 1e-5);
    }

    #[test]
    fn normalization_gives_zero_mean_unit_std() {
        let mut adv = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        normalize_advantages(&mut adv);
        let mean: f32 = adv.iter().sum::<f32>() / 5.0;
        let var: f32 = adv.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / 5.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn single_sample_normalization_is_noop() {
        let mut adv = vec![7.0f32];
        normalize_advantages(&mut adv);
        assert_eq!(adv, vec![7.0]);
    }

    #[test]
    fn empty_trajectory_is_fine() {
        let (adv, ret) = gae(&[], &[], 0.0, 0.99, 0.95);
        assert!(adv.is_empty() && ret.is_empty());
    }
}
