//! Proximal Policy Optimization loss construction (Eq. 4 / Eq. 7).
//!
//! These helpers build the PPO objective onto a caller-supplied
//! [`Graph`], so models with arbitrary network structure (e.g.
//! PairUpLight's message-emitting actor) plug their own forward pass in
//! and get the paper's exact objective: clipped surrogate + value loss +
//! entropy bonus, optimized for `K` epochs over minibatches of size `M`
//! (Algorithm 1 line 29).

use tsc_nn::{Graph, Tensor, Var};

/// Hyper-parameters of the PPO update.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Clip range ε of the surrogate objective.
    pub clip: f32,
    /// Learning rate α.
    pub lr: f32,
    /// Entropy bonus coefficient β (Eq. 7).
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Update epochs K per batch.
    pub epochs: usize,
    /// Minibatch size M.
    pub minibatch: usize,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            lr: 3e-4,
            entropy_coef: 0.01,
            value_coef: 0.5,
            epochs: 4,
            minibatch: 64,
            max_grad_norm: 0.5,
        }
    }
}

/// Builds the clipped-surrogate policy loss (Eq. 4), **negated** for
/// minimization:
///
/// `L = -mean(min(r·Â, clip(r, 1-ε, 1+ε)·Â))`
///
/// `log_probs_new` is an `n × 1` graph node of log π_θ(aᵗ|sᵗ);
/// `old_log_probs` and `advantages` are the stored rollout statistics.
///
/// # Panics
///
/// Panics if the slice lengths do not match the node's row count.
pub fn clipped_policy_loss(
    g: &mut Graph,
    log_probs_new: Var,
    old_log_probs: &[f32],
    advantages: &[f32],
    clip: f32,
) -> Var {
    let n = g.value(log_probs_new).rows();
    assert_eq!(old_log_probs.len(), n);
    assert_eq!(advantages.len(), n);
    let old = g.input(Tensor::from_vec(n, 1, old_log_probs.to_vec()));
    let adv = g.input(Tensor::from_vec(n, 1, advantages.to_vec()));
    let diff = g.sub(log_probs_new, old);
    let ratio = g.exp(diff);
    let surr1 = g.mul(ratio, adv);
    let clipped = g.clamp(ratio, 1.0 - clip, 1.0 + clip);
    let surr2 = g.mul(clipped, adv);
    let m = g.minimum(surr1, surr2);
    let mean = g.mean(m);
    g.scale(mean, -1.0)
}

/// Builds the squared-error value loss `mean((V(s) - R̂)²)` (Eq. 2).
///
/// # Panics
///
/// Panics if `returns.len()` differs from the node's row count.
pub fn value_loss(g: &mut Graph, values: Var, returns: &[f32]) -> Var {
    let n = g.value(values).rows();
    assert_eq!(returns.len(), n);
    let target = g.input(Tensor::from_vec(n, 1, returns.to_vec()));
    let d = g.sub(values, target);
    let sq = g.square(d);
    g.mean(sq)
}

/// Builds the entropy bonus `mean(H(π(·|s)))` from policy logits
/// (Eq. 3), to be *subtracted* (scaled by β) from the total loss.
pub fn entropy_bonus(g: &mut Graph, logits: Var) -> Var {
    let probs = g.softmax(logits);
    let logp = g.log_softmax(logits);
    let plogp = g.mul(probs, logp);
    let s = g.mean(plogp);
    // mean over all elements; scale by number of actions to make it the
    // per-row entropy mean.
    let actions = g.value(logits).cols() as f32;

    g.scale(s, -actions)
}

/// Assembles the total PPO loss
/// `policy + c_v · value − β · entropy` onto the graph.
pub fn total_loss(
    g: &mut Graph,
    policy_loss: Var,
    value_loss: Var,
    entropy: Var,
    cfg: &PpoConfig,
) -> Var {
    let v = g.scale(value_loss, cfg.value_coef);
    let e = g.scale(entropy, -cfg.entropy_coef);
    let pv = g.add(policy_loss, v);
    g.add(pv, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_nn::Params;

    #[test]
    fn policy_loss_gradient_increases_good_action_probability() {
        // One state, 2 actions, advantage +1 for action 0: after a
        // gradient step on the PPO loss, logit 0 must rise.
        let mut params = Params::new();
        let w = params.add("logits", Tensor::from_rows(&[&[0.0, 0.0]]));
        let mut g = Graph::new();
        let logits = g.param(&params, w);
        let logp = g.log_softmax(logits);
        let picked = g.gather_cols(logp, vec![0]);
        let loss = clipped_policy_loss(&mut g, picked, &[(0.5f32).ln()], &[1.0], 0.2);
        g.backward(loss, &mut params);
        let grad = params.grad(w);
        assert!(grad.get(0, 0) < 0.0, "descending raises logit 0");
        assert!(grad.get(0, 1) > 0.0);
    }

    #[test]
    fn ratio_outside_clip_gives_zero_policy_gradient() {
        // Old log-prob chosen so the ratio is far above 1+ε with a
        // positive advantage: min() selects the clipped branch whose
        // gradient is zero.
        let mut params = Params::new();
        let w = params.add("logits", Tensor::from_rows(&[&[2.0, 0.0]]));
        let mut g = Graph::new();
        let logits = g.param(&params, w);
        let logp = g.log_softmax(logits);
        let picked = g.gather_cols(logp, vec![0]);
        // new logp ≈ ln(0.88); set old very low => ratio >> 1.2.
        let loss = clipped_policy_loss(&mut g, picked, &[(0.01f32).ln()], &[1.0], 0.2);
        g.backward(loss, &mut params);
        assert!(params.grad(w).norm() < 1e-6, "clipped region is flat");
    }

    #[test]
    fn value_loss_is_zero_at_target() {
        let mut params = Params::new();
        let w = params.add("v", Tensor::from_rows(&[&[1.0], &[2.0]]));
        let mut g = Graph::new();
        let v = g.param(&params, w);
        let loss = value_loss(&mut g, v, &[1.0, 2.0]);
        assert_eq!(g.value(loss).get(0, 0), 0.0);
    }

    #[test]
    fn entropy_bonus_matches_analytic_entropy() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]));
        let e = entropy_bonus(&mut g, logits);
        assert!((g.value(e).get(0, 0) - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn total_loss_combines_terms() {
        let cfg = PpoConfig {
            value_coef: 0.5,
            entropy_coef: 0.01,
            ..PpoConfig::default()
        };
        let mut g = Graph::new();
        let p = g.input(Tensor::full(1, 1, 2.0));
        let v = g.input(Tensor::full(1, 1, 4.0));
        let e = g.input(Tensor::full(1, 1, 1.0));
        let total = total_loss(&mut g, p, v, e, &cfg);
        assert!((g.value(total).get(0, 0) - (2.0 + 2.0 - 0.01)).abs() < 1e-6);
    }
}
