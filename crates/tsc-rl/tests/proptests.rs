//! Property-based tests for the RL algorithm components.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsc_rl::buffer::{ReplayBuffer, ReplayTransition};
use tsc_rl::distribution::Categorical;
use tsc_rl::gae::{gae, normalize_advantages};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With λ = 1 GAE reduces to the Monte-Carlo return minus the
    /// value baseline, for arbitrary reward/value sequences.
    #[test]
    fn gae_lambda_one_is_monte_carlo(
        rewards in proptest::collection::vec(-5.0f32..5.0, 1..20),
        gamma in 0.5f32..0.999,
    ) {
        let values: Vec<f32> = rewards.iter().map(|r| r * 0.3).collect();
        let (adv, ret) = gae(&rewards, &values, 0.0, gamma, 1.0);
        // Direct Monte-Carlo computation.
        let n = rewards.len();
        let mut mc = vec![0.0f32; n];
        let mut acc = 0.0;
        for t in (0..n).rev() {
            acc = rewards[t] + gamma * acc;
            mc[t] = acc;
        }
        for t in 0..n {
            prop_assert!((ret[t] - mc[t]).abs() < 1e-3, "t={t}: {} vs {}", ret[t], mc[t]);
            prop_assert!((adv[t] - (mc[t] - values[t])).abs() < 1e-3);
        }
    }

    /// With λ = 0 every advantage is the one-step TD error.
    #[test]
    fn gae_lambda_zero_is_td(
        rewards in proptest::collection::vec(-5.0f32..5.0, 1..20),
        gamma in 0.5f32..0.999,
        last_value in -5.0f32..5.0,
    ) {
        let values: Vec<f32> = rewards.iter().map(|r| r * -0.2).collect();
        let (adv, _) = gae(&rewards, &values, last_value, gamma, 0.0);
        let n = rewards.len();
        for t in 0..n {
            let next = if t + 1 < n { values[t + 1] } else { last_value };
            let td = rewards[t] + gamma * next - values[t];
            prop_assert!((adv[t] - td).abs() < 1e-4);
        }
    }

    /// Normalized advantages always have ~zero mean and unit (or zero)
    /// variance.
    #[test]
    fn normalization_is_standard(
        mut adv in proptest::collection::vec(-100.0f32..100.0, 2..50),
    ) {
        normalize_advantages(&mut adv);
        let n = adv.len() as f32;
        let mean: f32 = adv.iter().sum::<f32>() / n;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        let var: f32 = adv.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / n;
        // All-equal inputs normalize to zeros (std floor), otherwise
        // unit variance.
        prop_assert!(var < 1.01, "var {var}");
    }

    /// Categorical sampling only ever returns in-support indices and
    /// log_prob is finite.
    #[test]
    fn categorical_sampling_is_in_support(
        weights in proptest::collection::vec(0.0f32..1.0, 2..8),
        seed in 0u64..100,
    ) {
        let total: f32 = weights.iter().sum();
        prop_assume!(total > 1e-3);
        let probs: Vec<f32> = weights.iter().map(|w| w / total).collect();
        let d = Categorical::new(&probs);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = d.sample(&mut rng);
            prop_assert!(a < probs.len());
            prop_assert!(d.log_prob(a).is_finite());
        }
    }

    /// The replay buffer never exceeds capacity and always keeps the
    /// most recent item.
    #[test]
    fn replay_buffer_bounds_and_recency(
        capacity in 1usize..20,
        pushes in 1usize..60,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(ReplayTransition {
                obs: vec![i as f32],
                action: 0,
                reward: 0.0,
                next_obs: vec![],
                done: false,
            });
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let mut rng = StdRng::seed_from_u64(0);
        let sampled = buf.sample(200, &mut rng);
        // Every sampled element must be one of the last `capacity`
        // pushes.
        let oldest_kept = pushes.saturating_sub(capacity) as f32;
        for t in sampled {
            prop_assert!(t.obs[0] >= oldest_kept);
        }
    }
}
