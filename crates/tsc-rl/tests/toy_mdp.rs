//! End-to-end learning tests on toy MDPs: the full PPO and DQN loops
//! (networks from tsc-nn, losses/buffers from tsc-rl) must solve
//! problems with known optima.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsc_nn::{Adam, Graph, Init, Linear, Params, Tensor};
use tsc_rl::buffer::{ReplayBuffer, ReplayTransition};
use tsc_rl::distribution::Categorical;
use tsc_rl::dqn::{q_loss, td_targets};
use tsc_rl::gae::{gae, normalize_advantages};
use tsc_rl::ppo::{clipped_policy_loss, entropy_bonus, total_loss, value_loss, PpoConfig};

/// A two-state chain: state 0, action 1 leads to state 1 (reward 0);
/// in state 1, action 0 gives reward +1 and terminates; every other
/// action terminates with reward 0. Optimal return = 1.
fn chain_step(state: usize, action: usize) -> (Option<usize>, f32) {
    match (state, action) {
        (0, 1) => (Some(1), 0.0),
        (1, 0) => (None, 1.0),
        _ => (None, 0.0),
    }
}

fn one_hot(state: usize) -> Tensor {
    let mut t = Tensor::zeros(1, 2);
    t.set(0, state, 1.0);
    t
}

#[test]
fn ppo_learns_two_step_chain() {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = PpoConfig {
        lr: 0.01,
        entropy_coef: 0.001,
        epochs: 4,
        minibatch: 32,
        gamma: 0.9,
        lambda: 0.95,
        ..PpoConfig::default()
    };
    let mut params = Params::new();
    let policy = Linear::new(
        &mut params,
        "pi",
        2,
        2,
        Init::Orthogonal { gain: 0.1 },
        &mut rng,
    );
    let critic = Linear::new(
        &mut params,
        "v",
        2,
        1,
        Init::Orthogonal { gain: 1.0 },
        &mut rng,
    );
    let mut opt = Adam::new(&params, cfg.lr);

    for _iter in 0..60 {
        // Collect a batch of episodes.
        let mut obs_v: Vec<Tensor> = Vec::new();
        let mut acts = Vec::new();
        let mut logps = Vec::new();
        let mut rewards = Vec::new();
        let mut values = Vec::new();
        let mut episode_ends = Vec::new();
        for _ep in 0..16 {
            let mut state = Some(0usize);
            while let Some(s) = state {
                let mut g = Graph::new();
                let x = g.input(one_hot(s));
                let logits = policy.forward(&mut g, &params, x);
                let probs_t = tsc_nn::softmax_rows(g.value(logits));
                let v = critic.forward(&mut g, &params, x);
                let value = g.value(v).get(0, 0);
                let dist = Categorical::new(probs_t.row(0));
                let a = dist.sample(&mut rng);
                let (next, r) = chain_step(s, a);
                obs_v.push(one_hot(s));
                acts.push(a);
                logps.push(dist.log_prob(a));
                rewards.push(r);
                values.push(value);
                state = next;
            }
            episode_ends.push(obs_v.len());
        }
        // Per-episode GAE (episodes terminate, so bootstrap = 0).
        let mut adv = Vec::new();
        let mut rets = Vec::new();
        let mut start = 0;
        for &end in &episode_ends {
            let (a, r) = gae(
                &rewards[start..end],
                &values[start..end],
                0.0,
                cfg.gamma,
                cfg.lambda,
            );
            adv.extend(a);
            rets.extend(r);
            start = end;
        }
        normalize_advantages(&mut adv);
        // PPO epochs over the whole batch.
        for _epoch in 0..cfg.epochs {
            let mut g = Graph::new();
            let rows: Vec<&[f32]> = obs_v.iter().map(|t| t.row(0)).collect();
            let x = g.input(Tensor::from_rows(&rows));
            let logits = policy.forward(&mut g, &params, x);
            let logp_all = g.log_softmax(logits);
            let picked = g.gather_cols(logp_all, acts.clone());
            let pl = clipped_policy_loss(&mut g, picked, &logps, &adv, cfg.clip);
            let v = critic.forward(&mut g, &params, x);
            let vl = value_loss(&mut g, v, &rets);
            let ent = entropy_bonus(&mut g, logits);
            let loss = total_loss(&mut g, pl, vl, ent, &cfg);
            g.backward(loss, &mut params);
            params.clip_grad_norm(cfg.max_grad_norm);
            opt.step(&mut params);
        }
    }
    // Greedy policy must pick action 1 in state 0 and action 0 in state 1.
    let greedy = |state: usize, params: &Params| -> usize {
        let mut g = Graph::new();
        let x = g.input(one_hot(state));
        let logits = policy.forward(&mut g, params, x);
        let probs = tsc_nn::softmax_rows(g.value(logits));
        Categorical::new(probs.row(0)).argmax()
    };
    assert_eq!(greedy(0, &params), 1, "state 0 must move to state 1");
    assert_eq!(greedy(1, &params), 0, "state 1 must collect the reward");
    // Critic should value state 1 close to 1 (one step from reward).
    let mut g = Graph::new();
    let x = g.input(one_hot(1));
    let v = critic.forward(&mut g, &params, x);
    assert!(
        (g.value(v).get(0, 0) - 1.0).abs() < 0.35,
        "V(1) = {}",
        g.value(v).get(0, 0)
    );
}

#[test]
fn dqn_learns_contextual_bandit() {
    // Two contexts, three arms; best arm differs by context.
    let reward = |ctx: usize, arm: usize| -> f32 {
        match (ctx, arm) {
            (0, 2) => 1.0,
            (1, 0) => 1.0,
            _ => 0.1,
        }
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut params = Params::new();
    let q_net = Linear::new(
        &mut params,
        "q",
        2,
        3,
        Init::Orthogonal { gain: 1.0 },
        &mut rng,
    );
    let mut opt = Adam::new(&params, 0.01);
    let mut replay = ReplayBuffer::new(2000);
    let gamma = 0.0; // bandit: no bootstrap

    for step in 0..1500 {
        let ctx = rng.gen_range(0..2usize);
        let eps = (1.0 - step as f32 / 700.0).max(0.05);
        let a = if rng.gen::<f32>() < eps {
            rng.gen_range(0..3)
        } else {
            let mut g = Graph::new();
            let x = g.input(one_hot(ctx));
            let q = q_net.forward(&mut g, &params, x);
            let row = g.value(q).row(0).to_vec();
            row.iter()
                .enumerate()
                .max_by(|p, q| p.1.partial_cmp(q.1).unwrap())
                .unwrap()
                .0
        };
        replay.push(ReplayTransition {
            obs: one_hot(ctx).row(0).to_vec(),
            action: a,
            reward: reward(ctx, a),
            next_obs: vec![0.0, 0.0],
            done: true,
        });
        if replay.len() >= 64 {
            let batch = replay.sample(32, &mut rng);
            let next_q = Tensor::zeros(batch.len(), 3);
            let targets = td_targets(&batch, &next_q, gamma);
            let actions: Vec<usize> = batch.iter().map(|t| t.action).collect();
            let rows: Vec<&[f32]> = batch.iter().map(|t| t.obs.as_slice()).collect();
            let mut g = Graph::new();
            let x = g.input(Tensor::from_rows(&rows));
            let q = q_net.forward(&mut g, &params, x);
            let loss = q_loss(&mut g, q, &actions, &targets);
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
    }
    for (ctx, best) in [(0usize, 2usize), (1, 0)] {
        let mut g = Graph::new();
        let x = g.input(one_hot(ctx));
        let q = q_net.forward(&mut g, &params, x);
        let row = g.value(q).row(0);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|p, q| p.1.partial_cmp(q.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, best, "context {ctx}: q = {row:?}");
        assert!((row[best] - 1.0).abs() < 0.2, "q-value near true reward");
    }
}
