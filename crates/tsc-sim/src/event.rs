//! The discrete-event simulation core.
//!
//! This module implements `Simulation::step` for the default engine
//! (DESIGN.md §12). The model is unchanged from the legacy per-second
//! stepper — the parity harness in `tests/parity.rs` holds the two
//! engines bit-identical at the 1 s observation boundary — but the
//! event core only touches state that can actually change this tick:
//!
//! * **Freeflow vehicles are inert.** A link with running vehicles
//!   carries a single wake-up in the [`EventQueue`] for the earliest
//!   tick any of them could reach the back of a queue; between wake-ups
//!   their positions are materialized lazily (`pos_tick`) with the same
//!   iterated per-tick subtraction the legacy stepper performs, so the
//!   floats come out bit-identical.
//! * **Blocked lanes are inert.** A lane whose head faces a red signal
//!   parks in `stalled_signal` until that signal changes; a lane whose
//!   head faces a full downstream link parks in `stalled_down` until a
//!   vehicle leaves that link. These are state-based wake-ups delivered
//!   directly by the transition that causes them — they never sit in
//!   the time queue.
//! * **Waiting time is closed-form.** Every head wait is a slope-one
//!   ramp from its join tick, so the per-tick mean-of-max-waits sample
//!   is derived from per-signal minimum join ticks (`sig_min`) instead
//!   of per-vehicle counters; per-vehicle totals are settled when a
//!   vehicle leaves its queue (`join_tick`).
//!
//! Lane discharge bookkeeping runs over flat lane indices (link-major,
//! matching the legacy scan order) with a word-level bitset of active
//! lanes. A lane activated *behind* the scan cursor mid-tick is masked
//! out until the next tick — exactly when the legacy stepper, which had
//! already passed it, would first see it.

use crate::error::SimError;
use crate::events::EventQueue;
use crate::ids::{LinkId, NodeId};
use crate::network::{Movement, Network};
use crate::sim::{forced_all_red_in, head_step_in, Simulation};
use crate::vehicle::{Vehicle, VehiclePosition};

/// Sentinel for "no signal controls this link's downstream node".
const NO_SIGNAL: u32 = u32::MAX;

/// Sentinel for "the current link exits the network".
const NO_LINK: u32 = u32::MAX;

/// Schedules the first advance wake-up for a link that just received a
/// running vehicle at its upstream end. Every same-tick entrant sits at
/// `length` with one pending subtraction, so a single bound decides
/// whether the link needs a pass *this* tick: the farthest any queue
/// back can reach even if every current runner joined one lane. Beyond
/// that, the entrant free-flows and the link sleeps until it could
/// first touch that bound.
fn schedule_entry_wake(
    ev: &mut EventState,
    link: &crate::sim::LinkState,
    li: usize,
    now: u32,
    speed: f64,
    gap: f64,
) {
    let qmax = link
        .lanes
        .iter()
        .map(|l| l.vehicles.len())
        .max()
        .unwrap_or(0);
    let bound = (qmax + link.running.len()) as f64 * gap;
    let pos_after = ev.link_len[li] - speed;
    if pos_after <= bound {
        ev.advance_due.set(li);
        return;
    }
    // Same formula and one-tick ULP slack as the advance pass.
    let j = ((pos_after - bound) / speed).ceil();
    let off = if j.is_finite() && j >= 2.0 {
        j.min(1e9) as u32 - 1
    } else {
        1
    };
    let wake = now + off;
    if wake < ev.next_advance[li] {
        if off == 1 {
            ev.due_next.set(li);
        } else {
            ev.queue.schedule(wake, li as u64);
        }
        ev.next_advance[li] = wake;
    }
}

/// Fills the per-vehicle link-entry caches for vehicle `vi`, which
/// just entered link `li`: its movement through the downstream node,
/// the link it continues onto, and which of `li`'s lanes accept that
/// movement. All three are fixed until the vehicle leaves the link, so
/// computing them once here replaces a route walk per advance pass.
fn cache_entry(
    ev: &mut EventState,
    network: &Network,
    vehicle: &Vehicle,
    vi: usize,
    li: usize,
) -> Result<(), SimError> {
    match head_step_in(network, vehicle)? {
        None => {
            ev.queued_move[vi] = Movement::Through.index() as u8;
            ev.lane_mask[vi] = u16::MAX;
            ev.next_link[vi] = NO_LINK;
        }
        Some((m, next)) => {
            ev.queued_move[vi] = m.index() as u8;
            let mut mask = 0u16;
            for (l, lane) in network.link(LinkId(li)).lanes().iter().enumerate() {
                if lane.permits(m) {
                    mask |= 1 << l;
                }
            }
            ev.lane_mask[vi] = mask;
            ev.next_link[vi] = next.index() as u32;
        }
    }
    Ok(())
}

/// Scheduling state of one lane (flat index) in the discharge stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneMode {
    /// Empty queue; nothing to discharge.
    Idle,
    /// Queue present and nothing known to block it: scanned every tick
    /// (accumulating budget, or waiting out an all-red chaos window).
    Active,
    /// Head's movement has no green; parked until its signal changes.
    StalledSignal,
    /// Head's target link is full; parked until that link drains.
    StalledDown(u32),
    /// Head only waits on discharge budget; parked in the recharge
    /// wheel until the exact tick the budget reaches 1.0 (or forever,
    /// if the configured rate can never get there — matching a legacy
    /// lane that scans fruitlessly every tick).
    Recharging,
}

/// A plain word-backed bitset over flat lane / link indices.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }
}

/// All engine-private state of the discrete-event core. Lives behind
/// `Simulation::ev`; `None` there selects the legacy tick stepper.
#[derive(Debug, Clone)]
pub(crate) struct EventState {
    /// Time-based wake-ups: `key` is the link index whose running
    /// vehicles should be advanced at `time`.
    queue: EventQueue,
    /// Earliest queued wake-up per link (`u32::MAX` = none), deduping
    /// redundant schedules.
    next_advance: Vec<u32>,
    /// Links whose running vehicles must be advanced this tick.
    advance_due: BitSet,
    /// Links due next tick — the overwhelmingly common wake distance
    /// (a join grew a queue, or a runner is one tick from its back),
    /// kept out of the heap entirely and merged into `advance_due` at
    /// the top of the next advance stage.
    due_next: BitSet,
    /// Timing wheel for lanes whose head only waits on discharge
    /// budget: slot `t % len` holds the flat lanes whose budget
    /// reaches 1.0 at tick `t`. Budget accrual is exact arithmetic on
    /// a fixed per-tick add, so the wake tick is computed exactly and
    /// the lane skips every scan in between.
    recharge: Vec<Vec<u32>>,
    /// Flat-lane layout: first flat index of each link's lanes.
    lane_offset: Vec<u32>,
    /// Owning link of each flat lane.
    lane_link: Vec<u32>,
    /// Discharge scheduling state per flat lane.
    lane_mode: Vec<LaneMode>,
    /// Flat lanes in `LaneMode::Active`, scanned by the discharge stage.
    active: BitSet,
    /// Lanes parked per signal, woken when that signal changes phase.
    stalled_signal: Vec<Vec<u32>>,
    /// Lanes parked per downstream link, woken when it loses a vehicle.
    stalled_down: Vec<Vec<u32>>,
    /// Signal index controlling each link's downstream node
    /// ([`NO_SIGNAL`] when uncontrolled).
    link_signal: Vec<u32>,
    /// Downstream node of each link.
    link_to: Vec<NodeId>,
    /// Length of each link (m).
    link_len: Vec<f64>,
    /// Entry links of the scenario's routes, ascending — the
    /// deterministic insertion order for the backlog stage.
    origin_links: Vec<LinkId>,
    /// Per vehicle: the tick whose advance-stage position the stored
    /// `VehiclePosition::Running` distance reflects (insertion and
    /// discharge write `tick - 1` so the same-tick advance pass applies
    /// exactly one subtraction, as the legacy stepper does).
    pub(crate) pos_tick: Vec<i64>,
    /// Per vehicle: tick it joined its current lane queue (waits are
    /// settled from this when it leaves the queue).
    pub(crate) join_tick: Vec<u32>,
    /// Per vehicle: cached `Movement::index()` it queues for (exits
    /// count as through, mirroring the detector's attribution).
    pub(crate) queued_move: Vec<u8>,
    /// Per vehicle: lane-permit bitmask on its current link (bit `l`
    /// set = lane `l` accepts its cached movement; all ones for
    /// exiting vehicles, which any lane serves). Movement and next
    /// link are fixed while a vehicle is on a link, so both are
    /// computed once at link entry instead of on every advance pass.
    lane_mask: Vec<u16>,
    /// Per vehicle: index of the link after its current one
    /// ([`NO_LINK`] when the current link exits the network).
    next_link: Vec<u32>,
    /// Per signal: minimum `join_tick` over the heads of its approach
    /// lanes (`u64::MAX` = no heads).
    sig_min: Vec<u64>,
    /// Signals with queue heads (`sig_min` < MAX).
    wait_m: u64,
    /// Sum of `sig_min` over those signals.
    wait_j: u64,
    /// Signals whose heads changed this tick (dedup flag + list).
    sig_dirty: Vec<bool>,
    dirty: Vec<u32>,
    /// Flat lanes approaching each signal, for `sig_min` recomputation.
    sig_lanes: Vec<Vec<u32>>,
}

impl EventState {
    /// Builds the engine state for a freshly constructed simulation
    /// (time 0, no vehicles).
    pub(crate) fn new(sim: &Simulation) -> Self {
        let network = &sim.scenario.network;
        let links = network.links();
        let mut lane_offset = Vec::with_capacity(links.len());
        let mut lane_link = Vec::new();
        let mut link_to = Vec::with_capacity(links.len());
        let mut link_len = Vec::with_capacity(links.len());
        let mut link_signal = Vec::with_capacity(links.len());
        for l in links {
            lane_offset.push(lane_link.len() as u32);
            lane_link.extend(std::iter::repeat_n(l.id().index() as u32, l.num_lanes()));
            link_to.push(l.to());
            link_len.push(l.length());
            link_signal.push(
                sim.signal_index
                    .get(&l.to())
                    .map_or(NO_SIGNAL, |&i| i as u32),
            );
        }
        let num_lanes = lane_link.len();
        let mut sig_lanes = vec![Vec::new(); sim.signals.len()];
        for (si, s) in sim.signals.iter().enumerate() {
            for &l in network.incoming(s.node()) {
                let li = l.index();
                for k in 0..links[li].num_lanes() {
                    sig_lanes[si].push(lane_offset[li] + k as u32);
                }
            }
        }
        let mut origin_links: Vec<LinkId> = sim
            .routes
            .iter()
            .filter_map(|r| r.first().copied())
            .collect();
        origin_links.sort_unstable_by_key(|l| l.index());
        origin_links.dedup();
        // Ticks for a drained lane's budget to climb from 0.0 back to
        // 1.0 under the capped per-tick add — the wheel's horizon.
        let rate = 1.0 / sim.config.saturation_headway;
        let mut k_max = 0usize;
        let mut b = 0.0f64;
        while b < 1.0 && k_max < 1 << 20 {
            let nb = (b + rate).min(1.0);
            if nb == b {
                break; // budget can never reach 1.0; lanes park forever
            }
            b = nb;
            k_max += 1;
        }
        EventState {
            queue: EventQueue::new(),
            next_advance: vec![u32::MAX; links.len()],
            advance_due: BitSet::new(links.len()),
            due_next: BitSet::new(links.len()),
            recharge: vec![Vec::new(); k_max + 1],
            lane_offset,
            lane_link,
            lane_mode: vec![LaneMode::Idle; num_lanes],
            active: BitSet::new(num_lanes),
            stalled_signal: vec![Vec::new(); sim.signals.len()],
            stalled_down: vec![Vec::new(); links.len()],
            link_signal,
            link_to,
            link_len,
            origin_links,
            pos_tick: Vec::new(),
            join_tick: Vec::new(),
            queued_move: Vec::new(),
            lane_mask: Vec::new(),
            next_link: Vec::new(),
            sig_min: vec![u64::MAX; sim.signals.len()],
            wait_m: 0,
            wait_j: 0,
            sig_dirty: vec![false; sim.signals.len()],
            dirty: Vec::new(),
            sig_lanes,
        }
    }

    /// Grows the per-vehicle companion arrays for a new spawn.
    pub(crate) fn on_spawn(&mut self) {
        self.pos_tick.push(0);
        self.join_tick.push(0);
        self.queued_move.push(Movement::Through.index() as u8);
        self.lane_mask.push(0);
        self.next_link.push(NO_LINK);
    }

    /// Wakes the lanes parked on signal `si` that the predicate admits
    /// (called when that signal changes what it permits: yellow
    /// resolving to green in `tick()`, or an immediate zero-yellow
    /// phase switch), leaving the rest parked with their list entries
    /// retained. Stale entries are dropped either way.
    fn unstall_signal_if(&mut self, si: usize, mut permitted: impl FnMut(&Self, usize) -> bool) {
        if self.stalled_signal[si].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.stalled_signal[si]);
        list.retain(|&fu| {
            let f = fu as usize;
            if self.lane_mode[f] != LaneMode::StalledSignal {
                return false;
            }
            if permitted(self, f) {
                self.lane_mode[f] = LaneMode::Active;
                self.active.set(f);
                false
            } else {
                true
            }
        });
        self.stalled_signal[si] = list;
    }

    /// Wakes every lane parked on downstream link `li` (called when a
    /// vehicle leaves that link).
    fn unstall_down(&mut self, li: usize) {
        if self.stalled_down[li].is_empty() {
            return;
        }
        let list = std::mem::take(&mut self.stalled_down[li]);
        for f in &list {
            let fu = *f as usize;
            if self.lane_mode[fu] == LaneMode::StalledDown(li as u32) {
                self.lane_mode[fu] = LaneMode::Active;
                self.active.set(fu);
            }
        }
    }

    /// Flags signal `sig` for a `sig_min` recomputation at the sample
    /// stage (no-op for [`NO_SIGNAL`]).
    fn mark_dirty(&mut self, sig: u32) {
        if sig != NO_SIGNAL && !self.sig_dirty[sig as usize] {
            self.sig_dirty[sig as usize] = true;
            self.dirty.push(sig);
        }
    }
}

impl Simulation {
    /// One simulated second under the event core. Stage structure and
    /// all externally observable effects match `step_legacy` exactly.
    pub(crate) fn step_event(&mut self) -> Result<(), SimError> {
        let _span = tsc_obs::span!("sim.tick");
        let t = f64::from(self.time);
        // 0. Chaos bookkeeping: freeze/unfreeze stuck-sensor readings.
        self.update_stuck_readings();
        // 1. Demand. Runs every tick: the demand generator owns the RNG
        //    stream, and consuming it identically is part of the parity
        //    contract with the legacy stepper.
        let spawns = {
            let _s = tsc_obs::span!("sim.ev.demand");
            self.demand.step(t, 1.0, &mut self.rng)
        };
        for flow_idx in spawns {
            self.spawn_vehicle(flow_idx);
        }
        // 2. Insertion from the backlog (skipped when provably empty).
        if self.backlog_len > 0 {
            let _s = tsc_obs::span!("sim.ev.backlog");
            self.insert_backlog_event()?;
        }
        // 3. Discharge: only lanes not parked on a signal / full link.
        {
            let _s = tsc_obs::span!("sim.ev.discharge");
            self.discharge_event()?;
        }
        // 4. Advance: only links with a due wake-up.
        {
            let _s = tsc_obs::span!("sim.ev.advance");
            self.advance_event()?;
        }
        // 5+6. Signal ticks (waits are implicit in join ticks; there is
        //      no per-vehicle accrual stage to run).
        self.tick_signals_event();
        // 7. Waiting-time sample, closed-form.
        let sample = self.wait_sample_event();
        self.metrics.record_wait_sample(sample);
        self.time += 1;
        Ok(())
    }

    /// Stage 2: moves backlog vehicles onto entry links with space.
    ///
    /// The legacy stepper iterates the backlog `HashMap` in hash order,
    /// which is benign only because per-link insertions are independent;
    /// the event core iterates entry links in ascending id order, making
    /// the determinism structural instead of incidental.
    fn insert_backlog_event(&mut self) -> Result<(), SimError> {
        let now = self.time;
        let ev = self.ev.as_mut().expect("event core state");
        let origins = std::mem::take(&mut ev.origin_links);
        for &link in &origins {
            let li = link.index();
            if self.links[li].count >= self.links[li].capacity {
                continue;
            }
            let Some(queue) = self.backlog.get_mut(&link) else {
                continue;
            };
            if queue.is_empty() {
                continue;
            }
            let length = ev.link_len[li];
            let mut inserted_any = false;
            while self.links[li].count < self.links[li].capacity {
                let Some(id) = queue.pop_front() else { break };
                let vi = id.index();
                self.vehicles[vi].mark_inserted(now, length);
                ev.pos_tick[vi] = i64::from(now) - 1;
                cache_entry(ev, &self.scenario.network, &self.vehicles[vi], vi, li)?;
                self.links[li].running.push(id);
                self.links[li].count += 1;
                self.backlog_len -= 1;
                self.active += 1;
                self.metrics.record_insert();
                inserted_any = true;
            }
            if inserted_any {
                schedule_entry_wake(
                    ev,
                    &self.links[li],
                    li,
                    now,
                    self.config.free_speed,
                    self.config.vehicle_gap,
                );
            }
        }
        ev.origin_links = origins;
        Ok(())
    }

    /// Stage 3: discharges queue heads through intersections, scanning
    /// only active lanes in flat (legacy) order.
    fn discharge_event(&mut self) -> Result<(), SimError> {
        let now = self.time;
        let rate = 1.0 / self.config.saturation_headway;
        let speed = self.config.free_speed;
        let gap = self.config.vehicle_gap;
        let ev = self.ev.as_mut().expect("event core state");
        // Wake lanes whose budget reaches 1.0 exactly this tick.
        let slot = now as usize % ev.recharge.len();
        if !ev.recharge[slot].is_empty() {
            let mut list = std::mem::take(&mut ev.recharge[slot]);
            for &f in &list {
                let f = f as usize;
                if ev.lane_mode[f] == LaneMode::Recharging {
                    ev.lane_mode[f] = LaneMode::Active;
                    ev.active.set(f);
                }
            }
            list.clear();
            ev.recharge[slot] = list;
        }
        let nwords = ev.active.words.len();
        for w in 0..nwords {
            // Cursor mask: lanes activated at positions at or before the
            // cursor mid-tick already had their legacy scan slot pass;
            // they keep their bit and are scanned next tick.
            let mut mask = !0u64;
            loop {
                let bits = ev.active.words[w] & mask;
                if bits == 0 {
                    break;
                }
                let b = bits.trailing_zeros();
                mask = if b >= 63 { 0 } else { !0u64 << (b + 1) };
                let f = (w << 6) | b as usize;
                let link_idx = ev.lane_link[f] as usize;
                let lane_idx = f - ev.lane_offset[link_idx] as usize;
                let link_id = LinkId(link_idx);
                let sig = ev.link_signal[link_idx];
                // Materialize the per-tick capped budget adds the legacy
                // stepper performed while this lane sat unscanned.
                {
                    let lane = &mut self.links[link_idx].lanes[lane_idx];
                    let pending = (now + 1).saturating_sub(lane.budget_tick);
                    for _ in 0..pending {
                        if lane.budget >= 1.0 {
                            break; // capped: further adds are a fixed point
                        }
                        lane.budget = (lane.budget + rate).min(1.0);
                    }
                    lane.budget_tick = now + 1;
                }
                let mut recharge_in = 0u32;
                let mode = loop {
                    let lane = &self.links[link_idx].lanes[lane_idx];
                    let Some(&head) = lane.vehicles.front() else {
                        break LaneMode::Idle;
                    };
                    if lane.budget < 1.0 {
                        // Count the exact capped per-tick adds until the
                        // budget reaches 1.0 again (the wake catch-up
                        // replays the same adds, so the tick is exact).
                        let mut b = lane.budget;
                        while b < 1.0 {
                            let nb = (b + rate).min(1.0);
                            if nb == b {
                                recharge_in = u32::MAX; // never recovers
                                break;
                            }
                            b = nb;
                            recharge_in += 1;
                        }
                        break LaneMode::Recharging;
                    }
                    let hv = head.index();
                    let nl = ev.next_link[hv];
                    if nl == NO_LINK {
                        // Exit at a boundary terminal: always free.
                        let lane = &mut self.links[link_idx].lanes[lane_idx];
                        lane.vehicles.pop_front();
                        lane.budget -= 1.0;
                        self.links[link_idx].count -= 1;
                        self.active -= 1;
                        let settled = now.saturating_sub(ev.join_tick[hv]);
                        let v = &mut self.vehicles[hv];
                        if settled > 0 {
                            v.accrue_wait(f64::from(settled));
                        }
                        v.mark_finished(now);
                        let tt = v.travel_time(now);
                        self.metrics.record_finish(tt);
                        ev.mark_dirty(sig);
                        ev.unstall_down(link_idx);
                    } else {
                        // Cached at link entry; exits never reach here,
                        // so this is the true movement.
                        let movement = Movement::ALL[ev.queued_move[hv] as usize];
                        if sig != NO_SIGNAL {
                            if !self.signals[sig as usize].permits(link_id, movement) {
                                break LaneMode::StalledSignal;
                            }
                            if forced_all_red_in(&self.chaos, now, ev.link_to[link_idx]) {
                                // The signal itself is willing; the
                                // chaos window closes by wall clock,
                                // so stay hot and re-check each tick.
                                break LaneMode::Active;
                            }
                        }
                        let ni = nl as usize;
                        if self.links[ni].count >= self.links[ni].capacity {
                            break LaneMode::StalledDown(nl);
                        }
                        let lane = &mut self.links[link_idx].lanes[lane_idx];
                        lane.vehicles.pop_front();
                        lane.budget -= 1.0;
                        self.links[link_idx].count -= 1;
                        let settled = now.saturating_sub(ev.join_tick[hv]);
                        let length = ev.link_len[ni];
                        let v = &mut self.vehicles[hv];
                        if settled > 0 {
                            v.accrue_wait(f64::from(settled));
                        }
                        v.advance_route();
                        v.set_running(length);
                        ev.pos_tick[hv] = i64::from(now) - 1;
                        cache_entry(ev, &self.scenario.network, &self.vehicles[hv], hv, ni)?;
                        self.links[ni].running.push(head);
                        self.links[ni].count += 1;
                        schedule_entry_wake(ev, &self.links[ni], ni, now, speed, gap);
                        ev.mark_dirty(sig);
                        ev.unstall_down(link_idx);
                    }
                };
                ev.lane_mode[f] = mode;
                match mode {
                    LaneMode::Active => {}
                    LaneMode::Idle => ev.active.clear(f),
                    LaneMode::StalledSignal => {
                        ev.active.clear(f);
                        ev.stalled_signal[sig as usize].push(f as u32);
                    }
                    LaneMode::StalledDown(d) => {
                        ev.active.clear(f);
                        ev.stalled_down[d as usize].push(f as u32);
                    }
                    LaneMode::Recharging => {
                        ev.active.clear(f);
                        if recharge_in != u32::MAX {
                            let len = ev.recharge.len();
                            let s = (now as usize + recharge_in as usize) % len;
                            ev.recharge[s].push(f as u32);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Stage 4: advances running vehicles on links with a due wake-up,
    /// joining queues at the back exactly as the legacy per-tick pass
    /// would.
    fn advance_event(&mut self) -> Result<(), SimError> {
        let now = self.time;
        let speed = self.config.free_speed;
        let gap = self.config.vehicle_gap;
        let ev = self.ev.as_mut().expect("event core state");
        while let Some(e) = ev.queue.pop_due(now) {
            ev.advance_due.set(e.key as usize);
        }
        let nwords = ev.advance_due.words.len();
        // Next-tick wakes bypass the heap entirely: merge the bitset
        // scheduled last tick into this tick's due set.
        for w in 0..nwords {
            let bits = ev.due_next.words[w];
            if bits != 0 {
                ev.advance_due.words[w] |= bits;
                ev.due_next.words[w] = 0;
            }
        }
        for w in 0..nwords {
            let mut bits = ev.advance_due.words[w];
            if bits == 0 {
                continue;
            }
            ev.advance_due.words[w] = 0;
            while bits != 0 {
                let li = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // This pass supersedes whatever wake was registered
                // (entry wakes can land a tick early via `due_next`, and
                // unstalls fire ahead of heap wakes); reset so the pass
                // below re-registers from current state. A superseded
                // heap event firing later is a harmless extra pass.
                ev.next_advance[li] = u32::MAX;
                if self.links[li].running.is_empty() {
                    continue;
                }
                let num_lanes = self.links[li].lanes.len();
                let mut running = std::mem::take(&mut self.links[li].running);
                let mut joined = false;
                let mut min_off = u32::MAX;
                // `running` is in entry order, and all vehicles on a
                // link share one length and speed, so effective
                // distances are nondecreasing along the vec. A vehicle
                // can only join the lane where its movement finds the
                // shortest queue, and every queue back sits at
                // `qlen * gap` at most `max_qb` from the stop line — so
                // once a vehicle is farther out than `max_qb`, no later
                // vehicle can join either and the pass stops, leaving
                // the tail lazily un-materialized.
                let mut max_qb = (0..num_lanes)
                    .map(|l| self.links[li].lanes[l].vehicles.len())
                    .max()
                    .unwrap_or(0) as f64
                    * gap;
                let mut cut = running.len();
                for (idx, &id) in running.iter().enumerate() {
                    let vi = id.index();
                    let VehiclePosition::Running { distance } = self.vehicles[vi].position() else {
                        debug_assert!(false, "queued vehicle left in running vec");
                        continue;
                    };
                    // Catch up the ticks this link sat unadvanced, with
                    // the legacy stepper's own per-tick subtraction so
                    // the float trajectory is bit-identical.
                    let behind = i64::from(now) - ev.pos_tick[vi];
                    let mut new_pos = distance;
                    for _ in 0..behind.max(0) {
                        new_pos -= speed;
                    }
                    if new_pos > max_qb {
                        // Beyond every queue: this vehicle and the whole
                        // tail keep free-flowing untouched. Earliest
                        // possible join: when it reaches the farthest
                        // queue back (an over-estimate of its own
                        // threshold, hence an under-estimate of the
                        // join time), minus one tick of ULP slack.
                        let j = ((new_pos - max_qb) / speed).ceil();
                        let off = if j.is_finite() && j >= 2.0 {
                            j.min(1e9) as u32 - 1
                        } else {
                            1
                        };
                        min_off = min_off.min(off);
                        cut = idx;
                        break;
                    }
                    // Movement and permitted lanes were cached when the
                    // vehicle entered this link.
                    let mask = ev.lane_mask[vi];
                    let candidate = (0..num_lanes)
                        .filter(|&l| mask & (1 << l) != 0)
                        .min_by_key(|&l| self.links[li].lanes[l].vehicles.len());
                    let lane_idx = candidate.unwrap_or(0);
                    let qlen = self.links[li].lanes[lane_idx].vehicles.len();
                    let queue_back = qlen as f64 * gap;
                    if new_pos <= queue_back {
                        self.links[li].lanes[lane_idx].vehicles.push_back(id);
                        self.vehicles[vi].set_queued(lane_idx);
                        ev.join_tick[vi] = now;
                        joined = true;
                        max_qb = max_qb.max((qlen + 1) as f64 * gap);
                        if qlen == 0 {
                            // New head on a previously empty (idle) lane.
                            let f = ev.lane_offset[li] as usize + lane_idx;
                            ev.lane_mode[f] = LaneMode::Active;
                            ev.active.set(f);
                            let sig = ev.link_signal[li];
                            ev.mark_dirty(sig);
                        }
                    } else {
                        self.vehicles[vi].set_running(new_pos);
                        ev.pos_tick[vi] = i64::from(now);
                        // Earliest possible join: ceil(lead / speed)
                        // ticks out, minus one tick of slack because the
                        // closed form and the iterated positions can
                        // disagree by a ULP at the threshold.
                        let j = ((new_pos - queue_back) / speed).ceil();
                        let off = if j.is_finite() && j >= 2.0 {
                            j.min(1e9) as u32 - 1
                        } else {
                            1
                        };
                        min_off = min_off.min(off);
                    }
                }
                // Compact in place: joiners (now queued) leave the
                // prefix, the untouched tail shifts up behind the kept
                // runners, preserving entry order throughout.
                if joined {
                    let len = running.len();
                    let mut w = 0;
                    for r in 0..cut {
                        let id = running[r];
                        if matches!(
                            self.vehicles[id.index()].position(),
                            VehiclePosition::Running { .. }
                        ) {
                            running[w] = id;
                            w += 1;
                        }
                    }
                    running.copy_within(cut..len, w);
                    running.truncate(w + len - cut);
                }
                self.links[li].running = running;
                if !self.links[li].running.is_empty() {
                    // Any join this pass lengthens queues and invalidates
                    // the lead-based bounds, so re-pass next tick.
                    let wake = if joined { now + 1 } else { now + min_off };
                    if wake < ev.next_advance[li] {
                        if wake == now + 1 {
                            ev.due_next.set(li);
                        } else {
                            ev.queue.schedule(wake, li as u64);
                        }
                        ev.next_advance[li] = wake;
                    }
                }
            }
        }
        Ok(())
    }

    /// Stage 6: ticks the signal machines, waking lanes parked on any
    /// signal whose yellow resolved to green.
    fn tick_signals_event(&mut self) {
        for i in 0..self.signals.len() {
            let was_yellow = self.signals[i].in_yellow();
            self.signals[i].tick();
            if was_yellow && !self.signals[i].in_yellow() {
                self.unstall_signal_permitted(i);
            }
        }
    }

    /// Wakes the lanes parked on signal `si` whose head movement the
    /// now-active phase actually permits; the rest stay parked until a
    /// later phase change. Sound because a parked lane's head cannot
    /// change (heads leave only through a discharge pop, and parked
    /// lanes are never scanned), so its cached movement — and hence the
    /// permit verdict the scan would reach — is fixed while parked.
    pub(crate) fn unstall_signal_permitted(&mut self, si: usize) {
        let links = &self.links;
        let signals = &self.signals;
        let Some(ev) = &mut self.ev else {
            return;
        };
        ev.unstall_signal_if(si, |ev, f| {
            let li = ev.lane_link[f] as usize;
            let lane_idx = f - ev.lane_offset[li] as usize;
            match links[li].lanes[lane_idx].vehicles.front() {
                Some(&head) => {
                    let movement = Movement::ALL[ev.queued_move[head.index()] as usize];
                    signals[si].permits(LinkId(li), movement)
                }
                // A headless lane has no business being parked on a
                // signal; wake it so the scan can reclassify it.
                None => true,
            }
        });
    }

    /// Stage 7: the mean-of-max-waits sample, in closed form.
    ///
    /// Every head wait is the integer `time + 1 - join_tick`, so the
    /// per-signal max is determined by the minimum join tick over its
    /// approach-lane heads and the mean is
    /// `(m * (t + 1) - sum_of_mins) / num_signals` with `m` the number
    /// of signals that have any head. All intermediate sums are exact
    /// integers far below 2^53, so the result is bit-identical to the
    /// legacy stepper's f64 accumulation.
    fn wait_sample_event(&mut self) -> f64 {
        if self.signals.is_empty() {
            return 0.0;
        }
        let ev = self.ev.as_mut().expect("event core state");
        let dirty = std::mem::take(&mut ev.dirty);
        for &siu in &dirty {
            let si = siu as usize;
            let mut new_min = u64::MAX;
            for &f in &ev.sig_lanes[si] {
                let f = f as usize;
                let li = ev.lane_link[f] as usize;
                let lane = f - ev.lane_offset[li] as usize;
                if let Some(&head) = self.links[li].lanes[lane].vehicles.front() {
                    new_min = new_min.min(u64::from(ev.join_tick[head.index()]));
                }
            }
            let old = ev.sig_min[si];
            if old != u64::MAX {
                ev.wait_m -= 1;
                ev.wait_j -= old;
            }
            if new_min != u64::MAX {
                ev.wait_m += 1;
                ev.wait_j += new_min;
            }
            ev.sig_min[si] = new_min;
            ev.sig_dirty[si] = false;
        }
        let mut dirty = dirty;
        dirty.clear();
        ev.dirty = dirty;
        let num = ev.wait_m * (u64::from(self.time) + 1) - ev.wait_j;
        num as f64 / self.signals.len() as f64
    }
}
