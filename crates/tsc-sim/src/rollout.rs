//! Replica management for data-parallel rollout collection.
//!
//! A [`RolloutSet`] owns `K` independent [`TscEnv`] replicas cloned
//! from one prototype. Each replica is reset with its own
//! deterministically derived seed (see [`derive_rollout_seed`]) before
//! a collection round, so the set of episodes produced by a round is a
//! pure function of `(base_seed, round)` — independent of how many
//! worker threads drive the replicas or in which order they finish.

use crate::env::TscEnv;

/// A fixed-size set of independent environment replicas for
/// data-parallel rollout collection.
///
/// Replicas start as exact clones of the prototype; the trainer resets
/// each with a distinct derived seed per round, so they immediately
/// diverge into independent episodes.
#[derive(Debug, Clone)]
pub struct RolloutSet {
    envs: Vec<TscEnv>,
}

impl RolloutSet {
    /// Builds `num_envs` replicas of `prototype`.
    ///
    /// # Panics
    ///
    /// Panics if `num_envs` is zero.
    pub fn new(prototype: &TscEnv, num_envs: usize) -> Self {
        assert!(num_envs > 0, "a rollout set needs at least one env");
        RolloutSet {
            envs: (0..num_envs).map(|_| prototype.clone()).collect(),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Read access to the replicas, in env-index order.
    pub fn envs(&self) -> &[TscEnv] {
        &self.envs
    }

    /// Mutable access to the replicas, in env-index order. Workers
    /// split this slice to drive replicas concurrently.
    pub fn envs_mut(&mut self) -> &mut [TscEnv] {
        &mut self.envs
    }
}

/// Derives the episode seed for replica `env_idx` in collection round
/// `round` from the experiment's `base_seed`.
///
/// SplitMix64-style finalizer over the packed inputs: statistically
/// independent streams for every `(base_seed, round, env_idx)` triple,
/// yet fully reproducible — the parallel and serial rollout paths feed
/// identical seeds to identical replicas, which is one half of the
/// bit-for-bit determinism argument (the other half is canonical
/// env-index merge order; see DESIGN.md).
#[must_use]
pub fn derive_rollout_seed(base_seed: u64, round: u64, env_idx: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(env_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use crate::scenario::grid::{Grid, GridConfig};
    use crate::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use crate::sim::SimConfig;

    fn tiny_env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        let scenario = grid.scenario("tiny", f).unwrap();
        TscEnv::new(scenario, SimConfig::default(), EnvConfig::default(), 7).unwrap()
    }

    #[test]
    fn replicas_are_independent_copies() {
        let proto = tiny_env();
        let mut set = RolloutSet::new(&proto, 3);
        assert_eq!(set.len(), 3);
        // Stepping one replica must not disturb the others.
        let actions = vec![0usize; proto.num_agents()];
        let envs = set.envs_mut();
        envs[0].reset(11);
        envs[0].step(&actions).unwrap();
        assert_eq!(envs[1].sim().time(), proto.sim().time());
        assert_ne!(envs[0].sim().time(), envs[1].sim().time());
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a = derive_rollout_seed(0, 0, 0);
        let b = derive_rollout_seed(0, 0, 1);
        let c = derive_rollout_seed(0, 1, 0);
        let d = derive_rollout_seed(1, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
        // Stable across calls (pure function).
        assert_eq!(a, derive_rollout_seed(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one env")]
    fn zero_envs_rejected() {
        let proto = tiny_env();
        let _ = RolloutSet::new(&proto, 0);
    }
}
