//! # tsc-sim — a traffic simulator for signal-control research
//!
//! This crate is the simulation substrate of the PairUpLight
//! reproduction (see the workspace DESIGN.md): a deterministic,
//! discrete-time (1 s) queue-based traffic simulator playing the role
//! SUMO plays in the paper. It models:
//!
//! * directed road networks with per-lane turning movements, including
//!   shared lanes with head-of-line blocking ([`network`]);
//! * signal phases with yellow clearance ([`signal`]);
//! * per-vehicle trips with free-flow running, FIFO lane queues,
//!   saturation-flow discharge, spillback and insertion backlogs
//!   ([`sim`], [`vehicle`]);
//! * bounded-range road-side detection producing the paper's pressure /
//!   waiting-time observations ([`detector`]);
//! * time-varying OD demand ([`demand`]) and the paper's evaluation
//!   scenarios ([`scenario`]);
//! * a multi-agent control environment at the paper's decision cadence
//!   ([`mod@env`]).
//!
//! ## Quickstart
//!
//! ```
//! use tsc_sim::scenario::grid::{Grid, GridConfig};
//! use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
//! use tsc_sim::{EnvConfig, SimConfig, TscEnv};
//!
//! # fn main() -> Result<(), tsc_sim::SimError> {
//! let grid = Grid::build(GridConfig::default())?;
//! let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())?;
//! let mut env = TscEnv::new(scenario, SimConfig::default(), EnvConfig::default(), 42)?;
//! let obs = env.reset(42);
//! let step = env.step(&vec![0; obs.len()])?;
//! assert_eq!(step.rewards.len(), 36);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod demand;
pub mod detector;
pub mod env;
pub mod error;
mod event;
pub mod events;
pub mod ids;
pub mod metrics;
pub mod network;
pub mod recorder;
pub mod rollout;
pub mod routing;
pub mod scenario;
pub mod signal;
pub mod sim;
pub mod stats;
pub mod vehicle;

pub use chaos::{
    ActuationFault, ActuationKind, AgentSel, ChaosPlan, CommsFault, CommsKind, LinkSel, NodeSel,
    SensingFault, SensingKind, Window,
};
pub use demand::{ArrivalModel, FlowProfile, OdFlow};
pub use detector::{DetectorConfig, IntersectionObs, LinkObs};
pub use env::{Controller, EnvConfig, EnvStep, EpisodeStats, TscEnv};
pub use error::SimError;
pub use ids::{Direction, LinkId, NodeId, VehicleId};
pub use metrics::Metrics;
pub use network::{Lane, Link, Movement, Network, NetworkBuilder, Node};
pub use recorder::{Recorder, Sample};
pub use rollout::{derive_rollout_seed, RolloutSet};
pub use routing::shortest_route;
pub use scenario::{Boundary, Fnv64, Scenario};
pub use signal::{Phase, SignalPlan, SignalState};
pub use sim::{SimConfig, Simulation};
pub use stats::{TravelTimeSummary, TripStats};
pub use vehicle::{Vehicle, VehiclePosition};
