//! Trip-level statistics: travel-time distributions and per-OD
//! breakdowns, beyond the scalar averages the paper reports.
//!
//! Research comparisons often hinge on the *tail* of the travel-time
//! distribution (a controller can win on the mean while starving a few
//! approaches); [`TripStats`] exposes percentiles and per-origin
//! summaries extracted from a finished [`Simulation`].

use std::collections::BTreeMap;

use crate::ids::NodeId;
use crate::sim::Simulation;

/// Summary of a sample of travel times.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TravelTimeSummary {
    /// Number of trips in the sample.
    pub count: usize,
    /// Mean travel time (s).
    pub mean: f64,
    /// Minimum (s).
    pub min: f64,
    /// Median (s).
    pub p50: f64,
    /// 90th percentile (s).
    pub p90: f64,
    /// 99th percentile (s).
    pub p99: f64,
    /// Maximum (s).
    pub max: f64,
}

impl TravelTimeSummary {
    /// Summarizes a sample (empty samples produce all-zero summaries).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return TravelTimeSummary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx.min(count - 1)]
        };
        TravelTimeSummary {
            count,
            mean: samples.iter().sum::<f64>() / count as f64,
            min: samples[0],
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: samples[count - 1],
        }
    }
}

/// Full trip statistics extracted from a simulation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TripStats {
    /// All trips (finished use their actual travel time; unfinished use
    /// time-so-far at extraction).
    pub all: TravelTimeSummary,
    /// Finished trips only.
    pub finished: TravelTimeSummary,
    /// Per-origin-terminal summaries (finished trips), keyed by origin
    /// node.
    pub per_origin: BTreeMap<NodeId, TravelTimeSummary>,
}

impl TripStats {
    /// Extracts statistics from the simulation's current state.
    pub fn collect(sim: &Simulation) -> Self {
        let now = sim.time();
        let mut all = Vec::new();
        let mut done = Vec::new();
        let mut per_origin: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        for v in sim.vehicles() {
            let tt = v.travel_time(now);
            all.push(tt);
            if v.is_finished() {
                done.push(tt);
                let origin = sim.scenario().network.link(v.route()[0]).from();
                per_origin.entry(origin).or_default().push(tt);
            }
        }
        TripStats {
            all: TravelTimeSummary::from_samples(all),
            finished: TravelTimeSummary::from_samples(done),
            per_origin: per_origin
                .into_iter()
                .map(|(k, v)| (k, TravelTimeSummary::from_samples(v)))
                .collect(),
        }
    }

    /// The origin whose finished trips have the worst mean travel time,
    /// if any trips finished — the "starved approach" detector.
    pub fn worst_origin(&self) -> Option<(NodeId, &TravelTimeSummary)> {
        self.per_origin
            .iter()
            .max_by(|a, b| {
                a.1.mean
                    .partial_cmp(&b.1.mean)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{ArrivalModel, FlowProfile, OdFlow};
    use crate::ids::Direction;
    use crate::network::{Lane, NetworkBuilder};
    use crate::scenario::Scenario;
    use crate::signal::SignalPlan;
    use crate::sim::SimConfig;

    #[test]
    fn summary_percentiles_are_ordered() {
        let s = TravelTimeSummary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = TravelTimeSummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn collect_from_live_simulation() {
        // One intersection, one flow; run to completion and inspect.
        let mut b = NetworkBuilder::new();
        let c = b.add_node(0.0, 0.0, true);
        let e = b.add_node(200.0, 0.0, false);
        let w = b.add_node(-200.0, 0.0, false);
        let n = b.add_node(0.0, 200.0, false);
        let s_t = b.add_node(0.0, -200.0, false);
        for (t, d) in [
            (n, Direction::South),
            (e, Direction::West),
            (s_t, Direction::North),
            (w, Direction::East),
        ] {
            b.add_link(t, c, d, vec![Lane::all_movements()]).unwrap();
            b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
                .unwrap();
        }
        let network = b.build().unwrap();
        let plan = SignalPlan::four_phase(&network, c).unwrap();
        let flows = vec![OdFlow::new(w, e, FlowProfile::constant(360.0, 0.0, 300.0))];
        let scenario = Scenario::new("stats", network, vec![plan], flows).unwrap();
        let cfg = SimConfig {
            arrival_model: ArrivalModel::Deterministic,
            ..SimConfig::default()
        };
        let mut sim = crate::sim::Simulation::new(&scenario, cfg, 0).unwrap();
        sim.request_phase(c, 2).unwrap();
        for _ in 0..500 {
            sim.step().unwrap();
        }
        let stats = TripStats::collect(&sim);
        assert!(stats.finished.count > 20);
        assert!(stats.finished.mean > 0.0);
        assert_eq!(stats.per_origin.len(), 1);
        let (origin, worst) = stats.worst_origin().unwrap();
        assert_eq!(origin, w);
        assert_eq!(worst.count, stats.finished.count);
        assert!(stats.all.count >= stats.finished.count);
    }
}
