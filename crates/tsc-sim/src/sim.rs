//! The traffic simulation engine.
//!
//! This is the repository's substitute for SUMO (see DESIGN.md): a
//! seeded, deterministic queue model observed at 1 s resolution.
//! Vehicles run at free-flow speed to the back of a per-lane FIFO
//! queue, pick the shortest permitted lane for their upcoming turn, and
//! discharge at the lane saturation flow while their movement has
//! green. Shared lanes exhibit head-of-line blocking; full downstream
//! links block discharge (spillback); full entry links defer insertion
//! (an insertion backlog, as in SUMO).
//!
//! Two steppers implement the model (DESIGN.md §12):
//!
//! * the **event core** (default; [`crate::event`]) — a discrete-event
//!   engine that skips provably-inert work: freeflow vehicles are
//!   inert until their link's next possible queue-join tick, blocked
//!   lanes until the signal or downstream link changes. Per-vehicle
//!   halted-time counters are materialized lazily when a vehicle
//!   leaves its queue (see [`Simulation::vehicles`]).
//! * the **legacy tick stepper** (behind the default-on
//!   `legacy-oracle` feature) — the original stepper that polls every
//!   entity every second. It is retained verbatim as the test oracle:
//!   the differential parity harness (`tests/parity.rs`) asserts that
//!   both engines produce bit-identical observation, reward, and
//!   metric streams at the 1 s observation boundary.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chaos::{
    chaos_gaussian, chaos_uniform, fault_salt, ActuationKind, ChaosPlan, SensingKind,
};
use crate::demand::{ArrivalModel, DemandGenerator};
use crate::detector::{DetectorConfig, IntersectionObs, LinkObs};
use crate::error::SimError;
use crate::ids::{LinkId, NodeId, VehicleId};
use crate::metrics::Metrics;
use crate::network::Movement;
use crate::routing::shortest_route;
use crate::scenario::Scenario;
use crate::signal::SignalState;
use crate::vehicle::{Vehicle, VehiclePosition};

/// Physical and sensing parameters of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Free-flow speed (m/s). Default 13.89 (50 km/h).
    pub free_speed: f64,
    /// Space one queued vehicle occupies (m). Default 7.5.
    pub vehicle_gap: f64,
    /// Saturation headway per lane (s/vehicle). Default 2.0, i.e. a
    /// saturation flow of 1800 veh/h/lane (§III-A).
    pub saturation_headway: f64,
    /// Yellow clearance inserted on every phase change (s). Default 2.
    pub yellow_time: u32,
    /// Detector coverage.
    pub detector: DetectorConfig,
    /// Arrival sampling model.
    pub arrival_model: ArrivalModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            free_speed: 13.89,
            vehicle_gap: 7.5,
            saturation_headway: 2.0,
            yellow_time: 2,
            detector: DetectorConfig::default(),
            arrival_model: ArrivalModel::Stochastic,
        }
    }
}

impl SimConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a parameter is
    /// non-positive where it must be positive.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.free_speed <= 0.0 {
            return Err(SimError::InvalidConfig("free_speed must be > 0".into()));
        }
        if self.vehicle_gap <= 0.0 {
            return Err(SimError::InvalidConfig("vehicle_gap must be > 0".into()));
        }
        if self.saturation_headway <= 0.0 {
            return Err(SimError::InvalidConfig(
                "saturation_headway must be > 0".into(),
            ));
        }
        if self.detector.range <= 0.0 {
            return Err(SimError::InvalidConfig("detector range must be > 0".into()));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct LaneQueue {
    pub(crate) vehicles: VecDeque<VehicleId>,
    /// Fractional discharge budget; accumulates `dt / headway` per tick,
    /// capped at 1 so a long red cannot produce a burst.
    pub(crate) budget: f64,
    /// First tick whose budget share has *not* yet been folded into
    /// `budget`. The event core materializes the per-tick capped adds
    /// lazily (only when a lane is actually processed); the legacy
    /// stepper adds every tick and leaves this field at 0.
    pub(crate) budget_tick: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    pub(crate) running: Vec<VehicleId>,
    pub(crate) lanes: Vec<LaneQueue>,
    /// Total vehicles currently on the link (running + queued).
    pub(crate) count: usize,
    pub(crate) capacity: usize,
}

impl LinkState {
    fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.vehicles.len()).sum()
    }
}

/// The simulation engine. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) scenario: Scenario,
    pub(crate) config: SimConfig,
    pub(crate) time: u32,
    pub(crate) vehicles: Vec<Vehicle>,
    pub(crate) links: Vec<LinkState>,
    pub(crate) signals: Vec<SignalState>,
    pub(crate) signal_index: HashMap<NodeId, usize>,
    pub(crate) demand: DemandGenerator,
    /// Vehicles spawned but not yet physically inserted, per origin link.
    pub(crate) backlog: HashMap<LinkId, VecDeque<VehicleId>>,
    pub(crate) backlog_len: usize,
    pub(crate) routes: Vec<Vec<LinkId>>,
    pub(crate) metrics: Metrics,
    pub(crate) rng: StdRng,
    pub(crate) active: usize,
    /// Seed for the deterministic detector-degradation hash.
    pub(crate) degradation_seed: u64,
    /// Scheduled chaos faults (empty by default; an empty plan leaves
    /// every step and observation bit-identical to a plan-free run).
    pub(crate) chaos: ChaosPlan,
    /// Seed for the chaos fault hash streams.
    pub(crate) chaos_seed: u64,
    /// Readings frozen by active stuck-at-last sensing windows, keyed
    /// by `(fault index, link)`; captured at each window's first second
    /// and discarded when the window closes.
    pub(crate) stuck_readings: HashMap<(usize, LinkId), LinkObs>,
    /// Discrete-event engine state. `Some` selects the event core (the
    /// default); `None` selects the legacy per-second tick stepper
    /// (`legacy-oracle` feature), kept as the parity-test oracle.
    pub(crate) ev: Option<Box<crate::event::EventState>>,
}

impl Simulation {
    /// Builds a simulation for `scenario`.
    ///
    /// Routes for every OD flow are computed here, so an unreachable OD
    /// pair fails fast.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoRoute`] for unreachable OD pairs and
    /// [`SimError::InvalidConfig`] for invalid parameters.
    pub fn new(scenario: &Scenario, config: SimConfig, seed: u64) -> Result<Self, SimError> {
        Self::build(scenario, config, seed, true)
    }

    /// Builds a simulation driven by the legacy per-second tick stepper
    /// instead of the event core. The two engines implement the same
    /// model and are asserted bit-identical at the observation boundary
    /// by the parity harness (`tests/parity.rs`); the legacy engine
    /// exists as that harness's oracle and is compiled only with the
    /// default-on `legacy-oracle` feature.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    #[cfg(feature = "legacy-oracle")]
    pub fn new_legacy(scenario: &Scenario, config: SimConfig, seed: u64) -> Result<Self, SimError> {
        Self::build(scenario, config, seed, false)
    }

    fn build(
        scenario: &Scenario,
        config: SimConfig,
        seed: u64,
        event: bool,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let mut routes = Vec::with_capacity(scenario.flows.len());
        for flow in &scenario.flows {
            routes.push(shortest_route(
                &scenario.network,
                flow.origin,
                flow.destination,
                config.free_speed,
            )?);
        }
        let links = scenario
            .network
            .links()
            .iter()
            .map(|l| {
                let per_lane = (l.length() / config.vehicle_gap).floor().max(1.0) as usize;
                LinkState {
                    running: Vec::new(),
                    lanes: vec![LaneQueue::default(); l.num_lanes()],
                    count: 0,
                    capacity: per_lane * l.num_lanes(),
                }
            })
            .collect();
        let mut signal_index = HashMap::new();
        let signals: Vec<SignalState> = scenario
            .signal_plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                signal_index.insert(plan.node(), i);
                SignalState::new(plan.clone(), config.yellow_time)
            })
            .collect();
        let mut sim = Simulation {
            demand: DemandGenerator::new(scenario.flows.clone(), config.arrival_model),
            scenario: scenario.clone(),
            config,
            time: 0,
            vehicles: Vec::new(),
            links,
            signals,
            signal_index,
            backlog: HashMap::new(),
            backlog_len: 0,
            routes,
            metrics: Metrics::new(),
            rng: StdRng::seed_from_u64(seed),
            active: 0,
            degradation_seed: seed ^ 0xDE7E_C70A,
            chaos: ChaosPlan::default(),
            chaos_seed: seed ^ 0xC4A0_55ED,
            stuck_readings: HashMap::new(),
            ev: None,
        };
        if event {
            sim.ev = Some(Box::new(crate::event::EventState::new(&sim)));
        }
        Ok(sim)
    }

    /// Builds a simulation with a chaos plan installed from the start
    /// (equivalent to [`new`](Self::new) followed by
    /// [`set_chaos`](Self::set_chaos)).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_chaos(
        scenario: &Scenario,
        config: SimConfig,
        seed: u64,
        chaos: ChaosPlan,
    ) -> Result<Self, SimError> {
        let mut sim = Self::new(scenario, config, seed)?;
        sim.set_chaos(chaos);
        Ok(sim)
    }

    /// [`with_chaos`](Self::with_chaos) on the legacy tick stepper (see
    /// [`new_legacy`](Self::new_legacy)).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    #[cfg(feature = "legacy-oracle")]
    pub fn with_chaos_legacy(
        scenario: &Scenario,
        config: SimConfig,
        seed: u64,
        chaos: ChaosPlan,
    ) -> Result<Self, SimError> {
        let mut sim = Self::new_legacy(scenario, config, seed)?;
        sim.set_chaos(chaos);
        Ok(sim)
    }

    /// Whether this simulation is driven by the discrete-event core
    /// (`true`, the default) or the legacy tick stepper.
    pub fn is_event_core(&self) -> bool {
        self.ev.is_some()
    }

    /// Installs (or replaces) the chaos plan. Pending stuck-sensor
    /// captures are discarded; an empty plan restores fault-free
    /// behavior exactly.
    pub fn set_chaos(&mut self, chaos: ChaosPlan) {
        self.chaos = chaos;
        self.stuck_readings.clear();
    }

    /// The installed chaos plan (empty by default).
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Current simulation time (s).
    pub fn time(&self) -> u32 {
        self.time
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The physical configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Collected trip metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Signalized intersections, in plan order (the agent order used by
    /// every controller).
    pub fn signalized(&self) -> Vec<NodeId> {
        self.signals.iter().map(|s| s.node()).collect()
    }

    /// Signal state of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSignalized`] if the node has no plan.
    pub fn signal(&self, node: NodeId) -> Result<&SignalState, SimError> {
        self.signal_index
            .get(&node)
            .map(|&i| &self.signals[i])
            .ok_or(SimError::NotSignalized(node))
    }

    /// Requests a phase at `node` (yellow clearance handled internally).
    ///
    /// An active actuation fault (stuck-phase window, or a command-loss
    /// draw that fires) silently drops the command — the signal holds
    /// its current phase — but the request is still validated, so
    /// invalid actions surface identically with and without chaos.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSignalized`] or [`SimError::InvalidPhase`].
    pub fn request_phase(&mut self, node: NodeId, phase: usize) -> Result<(), SimError> {
        let &i = self
            .signal_index
            .get(&node)
            .ok_or(SimError::NotSignalized(node))?;
        if self.command_dropped(node) {
            return self.signals[i].validate_phase(phase);
        }
        // With zero yellow time a green-to-green phase change takes
        // effect immediately (outside `tick()`), so lanes the event core
        // parked waiting for a signal change must be woken here.
        let watch = self.ev.is_some() && !self.signals[i].in_yellow();
        let before = self.signals[i].phase();
        self.signals[i].request_phase(phase)?;
        if watch && !self.signals[i].in_yellow() && self.signals[i].phase() != before {
            self.unstall_signal_permitted(i);
        }
        Ok(())
    }

    /// Whether an active actuation fault swallows a phase command at
    /// `node` right now.
    fn command_dropped(&self, node: NodeId) -> bool {
        for (fi, f) in self.chaos.actuation().iter().enumerate() {
            if !f.window.contains(self.time) || !f.nodes.matches(node) {
                continue;
            }
            match f.kind {
                ActuationKind::StuckPhase => return true,
                ActuationKind::CommandLoss { p } => {
                    let u = chaos_uniform(fault_salt(self.chaos_seed, fi), self.time, node.index());
                    if u < p {
                        return true;
                    }
                }
                ActuationKind::AllRed => {}
            }
        }
        false
    }

    /// Whether an active all-red window blocks every discharge through
    /// `node` right now.
    fn forced_all_red(&self, node: NodeId) -> bool {
        forced_all_red_in(&self.chaos, self.time, node)
    }

    /// Vehicles currently on the network or in the insertion backlog.
    pub fn active_vehicles(&self) -> usize {
        self.active + self.backlog_len
    }

    /// Vehicles waiting in the insertion backlog.
    pub fn backlog_vehicles(&self) -> usize {
        self.backlog_len
    }

    /// Vehicles waiting in the insertion backlog of one entry link.
    pub fn link_backlog(&self, link: LinkId) -> usize {
        self.backlog.get(&link).map_or(0, VecDeque::len)
    }

    /// Sum of `now - depart` over every unfinished vehicle — the
    /// penalty term for average travel time under gridlock.
    pub fn unfinished_penalty(&self) -> f64 {
        self.vehicles
            .iter()
            .filter(|v| !v.is_finished())
            .map(|v| v.travel_time(self.time))
            .sum()
    }

    /// Network-average travel time (s) counting unfinished trips up to
    /// the current time (paper Table II metric).
    pub fn avg_travel_time(&self) -> f64 {
        self.metrics.avg_travel_time(self.unfinished_penalty())
    }

    /// Advances the simulation by one second.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DisconnectedRoute`] if a vehicle's route
    /// contains an illegal turn — possible only for scenarios whose
    /// routes were constructed by hand, since the router guarantees
    /// turn-connected routes. The simulation state is unspecified (but
    /// memory-safe) after an error; discard it.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.ev.is_some() {
            return self.step_event();
        }
        #[cfg(feature = "legacy-oracle")]
        return self.step_legacy();
        #[cfg(not(feature = "legacy-oracle"))]
        unreachable!("legacy stepper requested but the `legacy-oracle` feature is disabled");
    }

    /// The original per-second tick stepper, kept verbatim as the parity
    /// oracle for the event core (DESIGN.md §12).
    #[cfg(feature = "legacy-oracle")]
    fn step_legacy(&mut self) -> Result<(), SimError> {
        let _span = tsc_obs::span!("sim.tick");
        let t = f64::from(self.time);
        // 0. Chaos bookkeeping: freeze/unfreeze stuck-sensor readings.
        self.update_stuck_readings();
        // 1. Demand: spawn new vehicles into the insertion backlog.
        let spawns = self.demand.step(t, 1.0, &mut self.rng);
        for flow_idx in spawns {
            self.spawn_vehicle(flow_idx);
        }
        // 2. Insertion: move backlog vehicles onto entry links with space.
        self.insert_backlog();
        // 3. Discharge green queues through intersections.
        self.discharge()?;
        // 4. Advance running vehicles; join queues at the back.
        self.advance_running()?;
        // 5. Accrue waiting time for queued vehicles.
        self.accrue_waits();
        // 6. Tick signal state machines.
        for s in &mut self.signals {
            s.tick();
        }
        // 7. Sample the waiting-time statistic.
        let sample = self.mean_of_max_waits();
        self.metrics.record_wait_sample(sample);
        self.time += 1;
        Ok(())
    }

    pub(crate) fn spawn_vehicle(&mut self, flow_idx: usize) {
        let route = self.routes[flow_idx].clone();
        let id = VehicleId(self.vehicles.len());
        let v = Vehicle::new(id, route, self.time);
        let entry = v.current_link();
        self.vehicles.push(v);
        self.backlog.entry(entry).or_default().push_back(id);
        self.backlog_len += 1;
        self.metrics.record_spawn();
        if let Some(ev) = &mut self.ev {
            ev.on_spawn();
        }
    }

    #[cfg(feature = "legacy-oracle")]
    fn insert_backlog(&mut self) {
        for (link, queue) in self.backlog.iter_mut() {
            let state = &mut self.links[link.index()];
            while state.count < state.capacity {
                let Some(id) = queue.pop_front() else { break };
                let length = self.scenario.network.link(*link).length();
                self.vehicles[id.index()].mark_inserted(self.time, length);
                state.running.push(id);
                state.count += 1;
                self.backlog_len -= 1;
                self.active += 1;
                self.metrics.record_insert();
            }
        }
    }

    /// The movement the head vehicle needs, or `None` for a network
    /// exit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DisconnectedRoute`] when consecutive route
    /// links are not joined by a legal turn (a malformed hand-built
    /// scenario; router-produced routes are always turn-connected).
    fn head_step(&self, vehicle: &Vehicle) -> Result<Option<(Movement, LinkId)>, SimError> {
        head_step_in(&self.scenario.network, vehicle)
    }

    #[cfg(feature = "legacy-oracle")]
    fn discharge(&mut self) -> Result<(), SimError> {
        let rate = 1.0 / self.config.saturation_headway;
        // Iterate links in id order for determinism.
        for link_idx in 0..self.links.len() {
            let link_id = LinkId(link_idx);
            let to_node = self.scenario.network.link(link_id).to();
            let signal_idx = self.signal_index.get(&to_node).copied();
            for lane_idx in 0..self.links[link_idx].lanes.len() {
                // Accumulate budget (capped: no burst after red).
                {
                    let lane = &mut self.links[link_idx].lanes[lane_idx];
                    lane.budget = (lane.budget + rate).min(1.0);
                    if lane.vehicles.is_empty() {
                        continue;
                    }
                }
                loop {
                    let (budget_ok, head) = {
                        let lane = &self.links[link_idx].lanes[lane_idx];
                        (lane.budget >= 1.0, lane.vehicles.front().copied())
                    };
                    let Some(head) = head else { break };
                    if !budget_ok {
                        break;
                    }
                    let step = self.head_step(&self.vehicles[head.index()])?;
                    match step {
                        None => {
                            // Exit at a boundary terminal: always free.
                            let lane = &mut self.links[link_idx].lanes[lane_idx];
                            lane.vehicles.pop_front();
                            lane.budget -= 1.0;
                            self.links[link_idx].count -= 1;
                            self.active -= 1;
                            let v = &mut self.vehicles[head.index()];
                            v.mark_finished(self.time);
                            let tt = v.travel_time(self.time);
                            self.metrics.record_finish(tt);
                        }
                        Some((movement, next)) => {
                            let permitted = match signal_idx {
                                Some(i) => {
                                    self.signals[i].permits(link_id, movement)
                                        && !self.forced_all_red(to_node)
                                }
                                None => true,
                            };
                            if !permitted {
                                break; // red or yellow: head blocks lane
                            }
                            let next_state = &self.links[next.index()];
                            if next_state.count >= next_state.capacity {
                                break; // spillback: downstream full
                            }
                            let lane = &mut self.links[link_idx].lanes[lane_idx];
                            lane.vehicles.pop_front();
                            lane.budget -= 1.0;
                            self.links[link_idx].count -= 1;
                            let length = self.scenario.network.link(next).length();
                            let v = &mut self.vehicles[head.index()];
                            v.advance_route();
                            v.set_running(length);
                            self.links[next.index()].running.push(head);
                            self.links[next.index()].count += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    #[cfg(feature = "legacy-oracle")]
    fn advance_running(&mut self) -> Result<(), SimError> {
        let dt = 1.0;
        let speed = self.config.free_speed;
        let gap = self.config.vehicle_gap;
        for link_idx in 0..self.links.len() {
            if self.links[link_idx].running.is_empty() {
                continue;
            }
            let link_id = LinkId(link_idx);
            let num_lanes = self.links[link_idx].lanes.len();
            let lanes_meta: Vec<&crate::network::Lane> =
                self.scenario.network.link(link_id).lanes().iter().collect();
            // Process in arrival order so earlier vehicles queue first.
            let mut still_running = Vec::new();
            let running = std::mem::take(&mut self.links[link_idx].running);
            for id in running {
                let (new_pos, movement) = {
                    let v = &self.vehicles[id.index()];
                    let VehiclePosition::Running { distance } = v.position() else {
                        continue;
                    };
                    (distance - speed * dt, self.head_step(v)?.map(|s| s.0))
                };
                // Candidate lanes: those permitting the needed movement
                // (any lane for an exiting vehicle).
                let candidate = (0..num_lanes)
                    .filter(|&li| movement.is_none_or(|m| lanes_meta[li].permits(m)))
                    .min_by_key(|&li| self.links[link_idx].lanes[li].vehicles.len());
                // A route always uses legal turns, so a candidate lane
                // exists; fall back to lane 0 defensively.
                let lane_idx = candidate.unwrap_or(0);
                let queue_back = self.links[link_idx].lanes[lane_idx].vehicles.len() as f64 * gap;
                if new_pos <= queue_back {
                    self.links[link_idx].lanes[lane_idx].vehicles.push_back(id);
                    self.vehicles[id.index()].set_queued(lane_idx);
                } else {
                    self.vehicles[id.index()].set_running(new_pos);
                    still_running.push(id);
                }
            }
            self.links[link_idx].running = still_running;
        }
        Ok(())
    }

    #[cfg(feature = "legacy-oracle")]
    fn accrue_waits(&mut self) {
        for link in &self.links {
            for lane in &link.lanes {
                for &id in &lane.vehicles {
                    self.vehicles[id.index()].accrue_wait(1.0);
                }
            }
        }
    }

    #[cfg(feature = "legacy-oracle")]
    fn mean_of_max_waits(&self) -> f64 {
        if self.signals.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for s in &self.signals {
            let node = s.node();
            let mut max_wait: f64 = 0.0;
            for &l in self.scenario.network.incoming(node) {
                for lane in &self.links[l.index()].lanes {
                    if let Some(&head) = lane.vehicles.front() {
                        max_wait = max_wait.max(self.vehicles[head.index()].current_wait());
                    }
                }
            }
            sum += max_wait;
        }
        sum / self.signals.len() as f64
    }

    /// Observes `node` with the configured detectors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the network.
    pub fn observe(&self, node: NodeId) -> IntersectionObs {
        let range = self.config.detector.range;
        let network = &self.scenario.network;
        let mut incoming = Vec::new();
        for &l in network.incoming(node) {
            let mut obs = self.sense_link(l);
            self.degrade(&mut obs);
            self.apply_sensing_chaos(&mut obs);
            incoming.push(obs);
        }
        let mut outgoing_counts = Vec::with_capacity(network.outgoing(node).len());
        let mut outgoing_links = Vec::with_capacity(network.outgoing(node).len());
        for &l in network.outgoing(node) {
            let state = &self.links[l.index()];
            let length = network.link(l).length();
            let mut count = 0.0;
            for &id in &state.running {
                if let VehiclePosition::Running { distance } = self.vehicles[id.index()].position()
                {
                    if length - self.running_distance(id, distance) <= range {
                        count += 1.0;
                    }
                }
            }
            if length <= range {
                count += state
                    .lanes
                    .iter()
                    .map(|q| q.vehicles.len() as f64)
                    .sum::<f64>();
            }
            outgoing_counts.push(count);
            outgoing_links.push(l);
        }
        let (current_phase, num_phases) = match self.signal_index.get(&node) {
            Some(&i) => (self.signals[i].phase(), self.signals[i].plan().num_phases()),
            None => (0, 1),
        };
        IntersectionObs {
            node,
            time: self.time,
            incoming,
            outgoing_counts,
            outgoing_links,
            current_phase,
            num_phases,
        }
    }

    /// Stop-line distance of running vehicle `id`, materializing the
    /// event core's lazily-advanced position. `distance` is the stored
    /// [`VehiclePosition::Running`] value; the event core stores the
    /// position as of the vehicle's last advance pass and catches up
    /// with the same per-tick subtraction the legacy stepper performs,
    /// so both engines read bit-identical positions.
    #[inline]
    fn running_distance(&self, id: VehicleId, distance: f64) -> f64 {
        match &self.ev {
            Some(ev) => {
                let behind = i64::from(self.time) - 1 - ev.pos_tick[id.index()];
                let mut d = distance;
                for _ in 0..behind.max(0) {
                    d -= self.config.free_speed;
                }
                d
            }
            None => distance,
        }
    }

    /// The raw (fault-free) detector reading for one incoming link.
    fn sense_link(&self, l: LinkId) -> LinkObs {
        let range = self.config.detector.range;
        let gap = self.config.vehicle_gap;
        let state = &self.links[l.index()];
        let ev = self.ev.as_deref();
        let mut count = 0.0;
        let mut halting = 0.0;
        let mut halting_by_movement = [0.0f64; 3];
        let mut head_wait: f64 = 0.0;
        for lane in &state.lanes {
            for (pos_idx, &id) in lane.vehicles.iter().enumerate() {
                if (pos_idx as f64) * gap > range {
                    // Queue positions grow back from the stop line, so
                    // everything deeper is out of range too.
                    break;
                }
                count += 1.0;
                halting += 1.0;
                // Attribute the vehicle to the movement it is queued
                // for (exits — and, defensively, broken routes, which
                // only the step path reports — count as through). The
                // event core caches the movement at queue-join time;
                // the route cannot change while the vehicle queues.
                let mi = match ev {
                    Some(ev) => usize::from(ev.queued_move[id.index()]),
                    None => self
                        .head_step(&self.vehicles[id.index()])
                        .ok()
                        .flatten()
                        .map(|(m, _)| m)
                        .unwrap_or(Movement::Through)
                        .index(),
                };
                halting_by_movement[mi] += 1.0;
                if pos_idx == 0 {
                    // Head wait: seconds since the head joined this
                    // queue. The legacy stepper accrues it 1 s at a
                    // time; the event core derives the identical
                    // integer from the join tick.
                    let w = match ev {
                        Some(ev) => f64::from(self.time.saturating_sub(ev.join_tick[id.index()])),
                        None => self.vehicles[id.index()].current_wait(),
                    };
                    head_wait = head_wait.max(w);
                }
            }
        }
        for &id in &state.running {
            if let VehiclePosition::Running { distance } = self.vehicles[id.index()].position() {
                if self.running_distance(id, distance) <= range {
                    count += 1.0;
                }
            }
        }
        LinkObs {
            link: l,
            direction: self.scenario.network.link(l).direction(),
            count,
            halting,
            halting_by_movement,
            head_wait,
        }
    }

    /// Applies the active sensing faults of the chaos plan to one link
    /// reading, in plan order. A dropout that fires zeroes the reading
    /// and wins over everything scheduled after it (a dead detector
    /// reports nothing, however miscalibrated). Deterministic in
    /// `(fault, time, link)`; consumes no RNG state.
    fn apply_sensing_chaos(&self, obs: &mut LinkObs) {
        for (fi, f) in self.chaos.sensing().iter().enumerate() {
            if !f.window.contains(self.time) || !f.links.matches(obs.link) {
                continue;
            }
            let salt = fault_salt(self.chaos_seed, fi);
            match f.kind {
                SensingKind::Dropout { p } => {
                    if chaos_uniform(salt, self.time, obs.link.index()) < p {
                        obs.count = 0.0;
                        obs.halting = 0.0;
                        obs.halting_by_movement = [0.0; 3];
                        obs.head_wait = 0.0;
                        return;
                    }
                }
                SensingKind::StuckAtLast => {
                    if let Some(frozen) = self.stuck_readings.get(&(fi, obs.link)) {
                        obs.count = frozen.count;
                        obs.halting = frozen.halting;
                        obs.halting_by_movement = frozen.halting_by_movement;
                        obs.head_wait = frozen.head_wait;
                    }
                }
                SensingKind::Noise { sigma } => {
                    let g = chaos_gaussian(salt, self.time, obs.link.index());
                    let factor = (1.0 + sigma * g).max(0.0);
                    obs.count *= factor;
                    obs.halting *= factor;
                    for h in &mut obs.halting_by_movement {
                        *h *= factor;
                    }
                }
                SensingKind::Bias { delta } => {
                    obs.count = (obs.count + delta).max(0.0);
                    obs.halting = (obs.halting + delta).max(0.0);
                    // The phantom/missing vehicles read as queued for
                    // the through movement.
                    obs.halting_by_movement[Movement::Through.index()] =
                        (obs.halting_by_movement[Movement::Through.index()] + delta).max(0.0);
                }
            }
        }
    }

    /// Captures raw readings for stuck-sensing windows entering their
    /// first second and discards captures of windows that have closed.
    /// Runs at the top of every [`step`](Self::step); free when the
    /// plan schedules no sensing faults.
    pub(crate) fn update_stuck_readings(&mut self) {
        if self.chaos.sensing().is_empty() {
            return;
        }
        let mut captures: Vec<((usize, LinkId), LinkObs)> = Vec::new();
        for (fi, f) in self.chaos.sensing().iter().enumerate() {
            if !matches!(f.kind, SensingKind::StuckAtLast) || !f.window.contains(self.time) {
                continue;
            }
            for link_idx in 0..self.links.len() {
                let l = LinkId(link_idx);
                if f.links.matches(l) && !self.stuck_readings.contains_key(&(fi, l)) {
                    captures.push(((fi, l), self.sense_link(l)));
                }
            }
        }
        let chaos = &self.chaos;
        let time = self.time;
        self.stuck_readings
            .retain(|&(fi, _), _| chaos.sensing()[fi].window.contains(time));
        for (k, v) in captures {
            self.stuck_readings.insert(k, v);
        }
    }

    /// Applies the configured sensor degradation (noise, dropout) to
    /// one link reading, deterministically in `(time, link)`.
    fn degrade(&self, obs: &mut LinkObs) {
        let d = &self.config.detector;
        if d.dropout > 0.0 {
            let u = crate::detector::degradation_uniform(
                self.degradation_seed,
                self.time,
                obs.link.index(),
            );
            if u < d.dropout {
                obs.count = 0.0;
                obs.halting = 0.0;
                obs.halting_by_movement = [0.0; 3];
                obs.head_wait = 0.0;
                return;
            }
        }
        if d.noise > 0.0 {
            let u = crate::detector::degradation_uniform(
                self.degradation_seed ^ 0xA5A5,
                self.time,
                obs.link.index(),
            );
            let factor = 1.0 + d.noise * (2.0 * u - 1.0);
            obs.count *= factor;
            obs.halting *= factor;
            for h in &mut obs.halting_by_movement {
                *h *= factor;
            }
        }
    }

    /// Observes every signalized intersection, in agent order.
    pub fn observe_all(&self) -> Vec<IntersectionObs> {
        // ~45% of wall time at 3025 agents (ROADMAP item 1) — spanned
        // so the hotspot shows up in `obs_report`'s flamegraph view.
        let _span = tsc_obs::span!("sim.observe_all");
        self.signals
            .iter()
            .map(|s| self.observe(s.node()))
            .collect()
    }

    /// Iterates over every vehicle ever spawned this run (finished and
    /// active), in spawn order — the raw material for
    /// [`TripStats`](crate::stats::TripStats).
    ///
    /// Under the event core (the default engine), the kinematic fields
    /// of vehicles still *on* the network are lazily materialized:
    /// a running vehicle's stored distance is its position as of its
    /// last advance pass, and a queued vehicle's wait counters are
    /// settled when it leaves the queue. Identifiers, routes, departure
    /// / insertion / finish times and every field of *finished*
    /// vehicles are always exact; waits and positions of in-flight
    /// vehicles should be read through the observation API
    /// ([`observe`](Self::observe)), which materializes them.
    pub fn vehicles(&self) -> impl Iterator<Item = &Vehicle> {
        self.vehicles.iter()
    }

    /// Total vehicles (running + queued) currently on `link`.
    pub fn link_occupancy(&self, link: LinkId) -> usize {
        self.links[link.index()].count
    }

    /// Queued vehicles currently on `link`.
    pub fn link_queue(&self, link: LinkId) -> usize {
        self.links[link.index()].queued()
    }
}

/// The movement the head vehicle needs, as a free function so the event
/// core can call it while holding disjoint field borrows of the
/// simulation. See [`Simulation`] internals.
///
/// # Errors
///
/// Returns [`SimError::DisconnectedRoute`] when consecutive route links
/// are not joined by a legal turn (a malformed hand-built scenario;
/// router-produced routes are always turn-connected).
pub(crate) fn head_step_in(
    network: &crate::network::Network,
    vehicle: &Vehicle,
) -> Result<Option<(Movement, LinkId)>, SimError> {
    let cur = vehicle.current_link();
    match vehicle.next_link() {
        None => Ok(None),
        Some(next) => match network.movement_between(cur, next) {
            Some(m) => Ok(Some((m, next))),
            None => Err(SimError::DisconnectedRoute {
                from: cur,
                to: next,
            }),
        },
    }
}

/// Whether an all-red actuation window covers `node` at `time` (free
/// function twin of `Simulation::forced_all_red`, for the event core).
pub(crate) fn forced_all_red_in(chaos: &ChaosPlan, time: u32, node: NodeId) -> bool {
    chaos.actuation().iter().any(|f| {
        matches!(f.kind, ActuationKind::AllRed) && f.window.contains(time) && f.nodes.matches(node)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{FlowProfile, OdFlow};
    use crate::ids::Direction;
    use crate::network::{Lane, NetworkBuilder};
    use crate::scenario::Scenario;
    use crate::signal::SignalPlan;

    /// One signalized intersection with four terminals and a single
    /// west -> east flow.
    fn cross_scenario(rate: f64) -> Scenario {
        let mut b = NetworkBuilder::new();
        let c = b.add_node(0.0, 0.0, true);
        let n = b.add_node(0.0, 200.0, false);
        let e = b.add_node(200.0, 0.0, false);
        let s = b.add_node(0.0, -200.0, false);
        let w = b.add_node(-200.0, 0.0, false);
        for (t, d) in [
            (n, Direction::South),
            (e, Direction::West),
            (s, Direction::North),
            (w, Direction::East),
        ] {
            b.add_link(t, c, d, vec![Lane::all_movements()]).unwrap();
            b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
                .unwrap();
        }
        let network = b.build().unwrap();
        let plan = SignalPlan::four_phase(&network, c).unwrap();
        let flows = vec![OdFlow::new(
            NodeId(4),
            NodeId(2),
            FlowProfile::constant(rate, 0.0, 600.0),
        )];
        Scenario::new("cross", network, vec![plan], flows).unwrap()
    }

    fn sim(rate: f64) -> Simulation {
        let cfg = SimConfig {
            arrival_model: ArrivalModel::Deterministic,
            ..SimConfig::default()
        };
        Simulation::new(&cross_scenario(rate), cfg, 1).unwrap()
    }

    #[test]
    fn vehicles_flow_through_on_green() {
        let mut s = sim(360.0);
        // Hold the east-west through phase (index 2 in the 4-phase plan).
        s.request_phase(NodeId(0), 2).unwrap();
        for _ in 0..600 {
            s.step().unwrap();
        }
        assert!(s.metrics().finished() > 0, "vehicles complete trips");
        // 360 veh/h for 600 s = 60 vehicles; most should finish.
        assert!(
            s.metrics().finished() >= 50,
            "finished = {}",
            s.metrics().finished()
        );
    }

    #[test]
    fn red_light_blocks_and_queues_grow() {
        let mut s = sim(720.0);
        // Hold a north-south phase: the west approach stays red.
        s.request_phase(NodeId(0), 0).unwrap();
        for _ in 0..300 {
            s.step().unwrap();
        }
        assert_eq!(s.metrics().finished(), 0, "nothing crosses on red");
        let obs = s.observe(NodeId(0));
        let west_approach = obs
            .incoming
            .iter()
            .find(|l| l.direction == Direction::East)
            .unwrap();
        assert!(west_approach.halting > 0.0, "queue forms on red");
        assert!(west_approach.head_wait > 100.0, "head wait accumulates");
    }

    #[test]
    fn discharge_respects_saturation_flow() {
        let mut s = sim(1800.0);
        s.request_phase(NodeId(0), 0).unwrap(); // red for the flow
        for _ in 0..200 {
            s.step().unwrap();
        }
        assert!(s.link_queue(LinkId(6)) > 10); // w -> c queue built up
        let downstream_before = s.link_occupancy(LinkId(3)); // c -> e
        let finished_before = s.metrics().finished();
        s.request_phase(NodeId(0), 2).unwrap(); // green
        for _ in 0..20 {
            s.step().unwrap();
        }
        // Everything that crossed the stop line is now on c -> e or done.
        let crossed = s.link_occupancy(LinkId(3)) - downstream_before
            + (s.metrics().finished() - finished_before);
        // 20 s at 2 s headway = at most 10 vehicles (+1 for the budget
        // carried in, minus the 2 s yellow).
        assert!(crossed <= 11, "crossed {crossed} in 20 s");
        assert!(crossed >= 5, "green actually discharges, crossed {crossed}");
    }

    #[test]
    fn deterministic_runs_are_identical() {
        let run = |seed| {
            let mut s = sim(900.0);
            let _ = seed;
            s.request_phase(NodeId(0), 2).unwrap();
            for _ in 0..400 {
                s.step().unwrap();
            }
            (
                s.metrics().finished(),
                s.metrics().spawned(),
                s.avg_travel_time(),
            )
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn conservation_spawned_equals_active_plus_finished() {
        let mut s = sim(1200.0);
        s.request_phase(NodeId(0), 2).unwrap();
        for _ in 0..500 {
            s.step().unwrap();
            assert_eq!(
                s.metrics().spawned(),
                s.active_vehicles() + s.metrics().finished(),
                "vehicle conservation at t={}",
                s.time()
            );
        }
    }

    #[test]
    fn entry_link_saturates_into_backlog() {
        // 200 m link, 7.5 m gap, 1 lane => capacity 26. Feed far more
        // than it can hold against a red light.
        let mut s = sim(3600.0);
        s.request_phase(NodeId(0), 0).unwrap();
        for _ in 0..120 {
            s.step().unwrap();
        }
        assert!(s.backlog_vehicles() > 0, "backlog forms once link is full");
        assert!(s.link_occupancy(LinkId(6)) <= 26);
    }

    #[test]
    fn observation_counts_respect_detector_range() {
        let mut s = sim(1800.0);
        s.request_phase(NodeId(0), 0).unwrap();
        for _ in 0..240 {
            s.step().unwrap();
        }
        let obs = s.observe(NodeId(0));
        let west = obs
            .incoming
            .iter()
            .find(|l| l.direction == Direction::East)
            .unwrap();
        // 50 m range at 7.5 m per vehicle: positions 0..=6 are in range.
        assert!(west.halting <= 7.0, "halting = {}", west.halting);
        let queued = s.link_queue(LinkId(6));
        assert!(queued > 7, "actual queue exceeds detector range");
    }

    #[test]
    fn avg_travel_time_penalizes_gridlock() {
        let mut blocked = sim(720.0);
        blocked.request_phase(NodeId(0), 0).unwrap();
        let mut flowing = sim(720.0);
        flowing.request_phase(NodeId(0), 2).unwrap();
        for _ in 0..400 {
            blocked.step().unwrap();
            flowing.step().unwrap();
        }
        assert!(blocked.avg_travel_time() > 2.0 * flowing.avg_travel_time());
    }
}
