//! Vehicle entities and their kinematic state.
//!
//! The simulator is a discrete-time (1 s) queue model: on each link a
//! vehicle first *runs* at free-flow speed towards the stop line, then
//! *queues* in a lane chosen among those permitting its next turning
//! movement, and finally discharges through the intersection at the
//! lane's saturation flow when its movement has green. This reproduces
//! the quantities the paper's controllers observe — queue lengths,
//! halting counts, head waits, pressure — including head-of-line
//! blocking on shared lanes.

use crate::ids::{LinkId, VehicleId};
use crate::network::Movement;

/// Where a vehicle currently is on its link.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum VehiclePosition {
    /// Travelling at free-flow speed; `distance` meters remain to the
    /// stop line.
    Running {
        /// Meters to the stop line.
        distance: f64,
    },
    /// Standing in the FIFO queue of lane `lane` on the current link.
    Queued {
        /// Lane index on the current link.
        lane: usize,
    },
}

/// A single vehicle with a fixed route.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Vehicle {
    id: VehicleId,
    route: Vec<LinkId>,
    route_idx: usize,
    depart_time: u32,
    inserted_time: Option<u32>,
    finish_time: Option<u32>,
    position: VehiclePosition,
    /// Seconds continuously halted (reset when the vehicle moves).
    current_wait: f64,
    /// Total halted seconds over the trip.
    total_wait: f64,
}

impl Vehicle {
    /// Creates a vehicle that wants to depart at `depart_time` along
    /// `route` (a non-empty sequence of connected links).
    pub(crate) fn new(id: VehicleId, route: Vec<LinkId>, depart_time: u32) -> Self {
        debug_assert!(!route.is_empty());
        Vehicle {
            id,
            route,
            route_idx: 0,
            depart_time,
            inserted_time: None,
            finish_time: None,
            position: VehiclePosition::Running { distance: 0.0 },
            current_wait: 0.0,
            total_wait: 0.0,
        }
    }

    /// This vehicle's identifier.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// The planned route.
    pub fn route(&self) -> &[LinkId] {
        &self.route
    }

    /// The link the vehicle currently occupies (or will enter next if it
    /// is still waiting to be inserted).
    pub fn current_link(&self) -> LinkId {
        self.route[self.route_idx]
    }

    /// The link after the current one, if any.
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.route_idx + 1).copied()
    }

    /// The turning movement required at the end of the current link, or
    /// `None` when the vehicle exits at the end of this link. The
    /// movement is computed by the simulator from the network and cached
    /// there; this accessor exists for tests and diagnostics.
    pub fn requires_exit(&self) -> bool {
        self.route_idx + 1 >= self.route.len()
    }

    /// Requested departure time (simulation seconds).
    pub fn depart_time(&self) -> u32 {
        self.depart_time
    }

    /// When the vehicle actually entered the network, if it has.
    pub fn inserted_time(&self) -> Option<u32> {
        self.inserted_time
    }

    /// When the vehicle left the network, if it has.
    pub fn finish_time(&self) -> Option<u32> {
        self.finish_time
    }

    /// Current position on the link.
    pub fn position(&self) -> VehiclePosition {
        self.position
    }

    /// Seconds this vehicle has been continuously halted.
    pub fn current_wait(&self) -> f64 {
        self.current_wait
    }

    /// Total halted seconds over the whole trip so far.
    pub fn total_wait(&self) -> f64 {
        self.total_wait
    }

    /// Whether the vehicle is standing in a queue.
    pub fn is_halted(&self) -> bool {
        matches!(self.position, VehiclePosition::Queued { .. })
    }

    /// Whether the vehicle has left the network.
    pub fn is_finished(&self) -> bool {
        self.finish_time.is_some()
    }

    /// Travel time: from *requested* departure (insertion backlog counts,
    /// as in SUMO's `waitingToBeInserted` accounting) until exit, or
    /// until `now` for unfinished trips.
    pub fn travel_time(&self, now: u32) -> f64 {
        let end = self.finish_time.unwrap_or(now);
        f64::from(end.saturating_sub(self.depart_time))
    }

    // -- internal state transitions used by the simulator ---------------

    pub(crate) fn mark_inserted(&mut self, now: u32, link_length: f64) {
        self.inserted_time = Some(now);
        self.position = VehiclePosition::Running {
            distance: link_length,
        };
    }

    pub(crate) fn set_running(&mut self, distance: f64) {
        self.position = VehiclePosition::Running { distance };
        self.current_wait = 0.0;
    }

    pub(crate) fn set_queued(&mut self, lane: usize) {
        self.position = VehiclePosition::Queued { lane };
    }

    pub(crate) fn accrue_wait(&mut self, dt: f64) {
        self.current_wait += dt;
        self.total_wait += dt;
    }

    pub(crate) fn advance_route(&mut self) -> Option<LinkId> {
        self.route_idx += 1;
        self.current_wait = 0.0;
        self.route.get(self.route_idx).copied()
    }

    pub(crate) fn mark_finished(&mut self, now: u32) {
        self.finish_time = Some(now);
    }
}

/// The movement a vehicle needs at the end of a link: either a turn onto
/// the next route link or an exit at a boundary terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextStep {
    /// Turn with the given movement onto the vehicle's next link.
    Turn(Movement, LinkId),
    /// Leave the network at the end of the current link.
    Exit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_time_counts_insertion_backlog() {
        let mut v = Vehicle::new(VehicleId(0), vec![LinkId(0)], 10);
        v.mark_inserted(25, 200.0);
        v.mark_finished(60);
        assert_eq!(v.travel_time(1000), 50.0);
    }

    #[test]
    fn unfinished_travel_time_runs_to_now() {
        let v = Vehicle::new(VehicleId(0), vec![LinkId(0)], 10);
        assert_eq!(v.travel_time(110), 100.0);
    }

    #[test]
    fn wait_accrues_and_resets_on_motion() {
        let mut v = Vehicle::new(VehicleId(0), vec![LinkId(0), LinkId(1)], 0);
        v.mark_inserted(0, 100.0);
        v.set_queued(0);
        v.accrue_wait(1.0);
        v.accrue_wait(1.0);
        assert_eq!(v.current_wait(), 2.0);
        assert_eq!(v.total_wait(), 2.0);
        assert!(v.is_halted());
        v.advance_route();
        assert_eq!(v.current_wait(), 0.0);
        assert_eq!(v.total_wait(), 2.0);
        assert_eq!(v.current_link(), LinkId(1));
        assert!(v.requires_exit());
    }
}
