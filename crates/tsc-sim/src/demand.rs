//! Traffic demand: time-varying origin–destination flows and vehicle
//! arrival generation.
//!
//! The paper drives its experiments with staggered, time-varying OD
//! flows (Fig. 6): flow groups start at different times, ramp to a peak
//! rate, and overlap to create oversaturation. [`FlowProfile`] expresses
//! such rates as a piecewise-linear function of time; [`OdFlow`] binds a
//! profile to an origin/destination pair.

use rand::Rng;

use crate::ids::NodeId;

/// A piecewise-linear flow rate profile in vehicles per hour.
///
/// Between control points the rate is linearly interpolated; before the
/// first and after the last point it is zero.
///
/// # Examples
///
/// ```
/// use tsc_sim::FlowProfile;
/// // Ramp 100 -> 500 veh/h over [0, 900], back down to 100 at 1800, then stop.
/// let p = FlowProfile::new(vec![(0.0, 100.0), (900.0, 500.0), (1800.0, 100.0)]);
/// assert_eq!(p.rate_at(450.0), 300.0);
/// assert_eq!(p.rate_at(2000.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowProfile {
    /// `(time seconds, rate veh/h)` control points, strictly increasing
    /// in time.
    points: Vec<(f64, f64)>,
}

impl FlowProfile {
    /// Creates a profile from `(time, veh/h)` control points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, times are not strictly increasing,
    /// or any rate is negative. Profiles are authored by scenario code,
    /// so this is a programming error, not a runtime condition.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "profile needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "profile times must strictly increase");
        }
        assert!(points.iter().all(|p| p.1 >= 0.0), "rates must be >= 0");
        FlowProfile { points }
    }

    /// A constant `rate` veh/h profile over `[start, end]` seconds.
    pub fn constant(rate: f64, start: f64, end: f64) -> Self {
        assert!(end > start);
        FlowProfile::new(vec![(start, rate), (end, rate)])
    }

    /// A triangular ramp: zero-anchored at `start`, peaking at
    /// `peak_time` with `peak_rate`, back to zero at `end`. This is the
    /// shape of the paper's staggered flow groups (e.g. start at 0,
    /// peak 500 veh/h at 900 s, drain by 1800 s).
    pub fn ramp(start: f64, peak_time: f64, end: f64, peak_rate: f64, base_rate: f64) -> Self {
        assert!(start < peak_time && peak_time < end);
        FlowProfile::new(vec![
            (start, base_rate),
            (peak_time, peak_rate),
            (end, base_rate),
        ])
    }

    /// The rate (veh/h) at time `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if t < first.0 || t > last.0 {
            return 0.0;
        }
        for w in self.points.windows(2) {
            let (t0, r0) = w[0];
            let (t1, r1) = w[1];
            if t <= t1 {
                let f = (t - t0) / (t1 - t0);
                return r0 + f * (r1 - r0);
            }
        }
        last.1
    }

    /// The `(time seconds, rate veh/h)` control points, strictly
    /// increasing in time (read access for fingerprinting and spec
    /// serialization).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Last control-point time: no vehicles are generated after it.
    pub fn end_time(&self) -> f64 {
        self.points.last().expect("non-empty").0
    }

    /// Total expected vehicles over the profile (trapezoid integral).
    pub fn expected_vehicles(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0 / 3600.0)
            .sum()
    }
}

/// One origin–destination demand stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OdFlow {
    /// Entry terminal node.
    pub origin: NodeId,
    /// Exit terminal node.
    pub destination: NodeId,
    /// Time-varying rate.
    pub profile: FlowProfile,
}

impl OdFlow {
    /// Creates an OD flow.
    pub fn new(origin: NodeId, destination: NodeId, profile: FlowProfile) -> Self {
        OdFlow {
            origin,
            destination,
            profile,
        }
    }
}

/// How arrival events are drawn from the flow rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalModel {
    /// Deterministic fluid accumulation: exactly `rate·dt` expected
    /// vehicles, spawned whenever the accumulator crosses 1. Fully
    /// reproducible and smooth.
    Deterministic,
    /// Bernoulli thinning per second (Poisson-like): each second spawns
    /// a vehicle with probability `rate·dt` (rates < 3600 veh/h).
    Stochastic,
}

/// Generates departure events for a set of OD flows.
#[derive(Debug, Clone)]
pub struct DemandGenerator {
    flows: Vec<OdFlow>,
    accumulators: Vec<f64>,
    model: ArrivalModel,
}

impl DemandGenerator {
    /// Creates a generator over `flows`.
    pub fn new(flows: Vec<OdFlow>, model: ArrivalModel) -> Self {
        let n = flows.len();
        DemandGenerator {
            flows,
            accumulators: vec![0.0; n],
            model,
        }
    }

    /// The flows being generated.
    pub fn flows(&self) -> &[OdFlow] {
        &self.flows
    }

    /// Latest time any flow still produces vehicles.
    pub fn end_time(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| f.profile.end_time())
            .fold(0.0, f64::max)
    }

    /// Resets the internal accumulators (call between episodes).
    pub fn reset(&mut self) {
        for a in &mut self.accumulators {
            *a = 0.0;
        }
    }

    /// Advances one step of `dt` seconds at time `t` and returns the
    /// flow indices that spawn a vehicle this step (one entry per
    /// vehicle; a flow may appear multiple times at very high rates).
    pub fn step<R: Rng>(&mut self, t: f64, dt: f64, rng: &mut R) -> Vec<usize> {
        let mut spawns = Vec::new();
        for (i, flow) in self.flows.iter().enumerate() {
            let expected = flow.profile.rate_at(t) * dt / 3600.0;
            match self.model {
                ArrivalModel::Deterministic => {
                    self.accumulators[i] += expected;
                    while self.accumulators[i] >= 1.0 {
                        self.accumulators[i] -= 1.0;
                        spawns.push(i);
                    }
                }
                ArrivalModel::Stochastic => {
                    // Bernoulli thinning with carry for rates near/above
                    // one vehicle per step.
                    let mut p = expected;
                    while p > 0.0 {
                        let q = p.min(1.0);
                        if rng.gen::<f64>() < q {
                            spawns.push(i);
                        }
                        p -= 1.0;
                    }
                }
            }
        }
        spawns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_interpolates_linearly() {
        let p = FlowProfile::new(vec![(0.0, 0.0), (100.0, 360.0)]);
        assert!((p.rate_at(50.0) - 180.0).abs() < 1e-9);
        assert_eq!(p.rate_at(-1.0), 0.0);
        assert_eq!(p.rate_at(101.0), 0.0);
    }

    #[test]
    fn constant_profile_holds_rate() {
        let p = FlowProfile::constant(300.0, 0.0, 3600.0);
        assert_eq!(p.rate_at(0.0), 300.0);
        assert_eq!(p.rate_at(1800.0), 300.0);
        assert_eq!(p.rate_at(3600.0), 300.0);
    }

    #[test]
    fn ramp_peaks_at_peak_time() {
        let p = FlowProfile::ramp(0.0, 900.0, 1800.0, 500.0, 100.0);
        assert_eq!(p.rate_at(900.0), 500.0);
        assert_eq!(p.rate_at(0.0), 100.0);
        assert_eq!(p.rate_at(1800.0), 100.0);
        assert!(p.rate_at(450.0) > 100.0 && p.rate_at(450.0) < 500.0);
    }

    #[test]
    fn deterministic_generator_matches_expected_count() {
        let flow = OdFlow::new(
            NodeId(0),
            NodeId(1),
            FlowProfile::constant(720.0, 0.0, 600.0),
        );
        let expected = flow.profile.expected_vehicles();
        let mut g = DemandGenerator::new(vec![flow], ArrivalModel::Deterministic);
        let mut rng = StdRng::seed_from_u64(0);
        let mut n = 0;
        for t in 0..600 {
            n += g.step(f64::from(t), 1.0, &mut rng).len();
        }
        // 720 veh/h over 600 s = 120 vehicles.
        assert_eq!(n, expected.round() as usize);
        assert_eq!(n, 120);
    }

    #[test]
    fn stochastic_generator_is_close_to_expected_count() {
        let flow = OdFlow::new(
            NodeId(0),
            NodeId(1),
            FlowProfile::constant(720.0, 0.0, 3600.0),
        );
        let mut g = DemandGenerator::new(vec![flow], ArrivalModel::Stochastic);
        let mut rng = StdRng::seed_from_u64(7);
        let mut n = 0usize;
        for t in 0..3600 {
            n += g.step(f64::from(t), 1.0, &mut rng).len();
        }
        // 720 expected; allow 5 sigma (~sqrt(720)*5 ≈ 134).
        assert!((n as f64 - 720.0).abs() < 134.0, "n = {n}");
    }

    #[test]
    fn generator_reset_clears_accumulators() {
        let flow = OdFlow::new(
            NodeId(0),
            NodeId(1),
            FlowProfile::constant(1800.0, 0.0, 10.0),
        );
        let mut g = DemandGenerator::new(vec![flow], ArrivalModel::Deterministic);
        let mut rng = StdRng::seed_from_u64(0);
        let a: usize = (0..10)
            .map(|t| g.step(f64::from(t), 1.0, &mut rng).len())
            .sum();
        g.reset();
        let b: usize = (0..10)
            .map(|t| g.step(f64::from(t), 1.0, &mut rng).len())
            .sum();
        assert_eq!(a, b, "reset restores identical deterministic schedule");
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn profile_rejects_non_monotonic_times() {
        let _ = FlowProfile::new(vec![(10.0, 1.0), (5.0, 2.0)]);
    }
}
