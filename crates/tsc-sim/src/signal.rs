//! Signal phases and per-intersection signal state machines.
//!
//! A [`Phase`] is a set of permitted `(incoming link, movement)` pairs
//! (paper §IV-B, Fig. 3). A [`SignalPlan`] is the ordered phase set of
//! one intersection. The [`SignalState`] machine inserts a fixed yellow
//! clearance interval whenever the active phase changes; during yellow no
//! movement is permitted, modelling the safe-clearance interval of the
//! paper (§VI-A: 5 s green per decision plus 2 s yellow).

use std::collections::HashSet;

use crate::error::SimError;
use crate::ids::{LinkId, NodeId};
use crate::network::{Movement, Network};

/// A signal phase: the set of permitted `(incoming link, movement)`
/// pairs while the phase is green.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Phase {
    permitted: HashSet<(LinkId, Movement)>,
}

impl Phase {
    /// Creates a phase permitting exactly the given pairs.
    pub fn new<I: IntoIterator<Item = (LinkId, Movement)>>(pairs: I) -> Self {
        Phase {
            permitted: pairs.into_iter().collect(),
        }
    }

    /// Returns `true` if the phase permits `movement` from `link`.
    pub fn permits(&self, link: LinkId, movement: Movement) -> bool {
        self.permitted.contains(&(link, movement))
    }

    /// The permitted pairs (unordered).
    pub fn permitted(&self) -> impl Iterator<Item = (LinkId, Movement)> + '_ {
        self.permitted.iter().copied()
    }

    /// Number of permitted pairs.
    pub fn len(&self) -> usize {
        self.permitted.len()
    }

    /// Whether the phase permits nothing (an all-red phase).
    pub fn is_empty(&self) -> bool {
        self.permitted.is_empty()
    }
}

/// The ordered phase set of one signalized intersection.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SignalPlan {
    node: NodeId,
    phases: Vec<Phase>,
}

impl SignalPlan {
    /// Creates a plan for `node` with the given phases.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `phases` is empty.
    pub fn new(node: NodeId, phases: Vec<Phase>) -> Result<Self, SimError> {
        if phases.is_empty() {
            return Err(SimError::InvalidConfig(format!(
                "signal plan for {node} has no phases"
            )));
        }
        Ok(SignalPlan { node, phases })
    }

    /// The intersection this plan controls.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The phases in selection order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Builds the standard four-phase plan of the paper's Fig. 3 for a
    /// four-way intersection in `network`:
    ///
    /// 1. north–south through + right,
    /// 2. north–south left,
    /// 3. west–east through + right,
    /// 4. west–east left.
    ///
    /// Approaches that do not exist (three-way intersections) simply
    /// contribute nothing to the affected phases; phases that end up
    /// empty are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the node has no incoming
    /// links or every phase would be empty.
    pub fn four_phase(network: &Network, node: NodeId) -> Result<Self, SimError> {
        let incoming = network.incoming(node);
        if incoming.is_empty() {
            return Err(SimError::InvalidConfig(format!(
                "node {node} has no incoming links"
            )));
        }
        let is_ns = |l: &LinkId| {
            let d = network.link(*l).direction();
            d.index().is_multiple_of(2) // North or South travel
        };
        let mut phases = Vec::new();
        for (ns, movements) in [
            (true, vec![Movement::Through, Movement::Right]),
            (true, vec![Movement::Left]),
            (false, vec![Movement::Through, Movement::Right]),
            (false, vec![Movement::Left]),
        ] {
            let mut pairs = Vec::new();
            for l in incoming.iter().filter(|l| is_ns(l) == ns) {
                for &m in &movements {
                    if network.turn_target(*l, m).is_some() {
                        pairs.push((*l, m));
                    }
                }
            }
            if !pairs.is_empty() {
                phases.push(Phase::new(pairs));
            }
        }
        SignalPlan::new(node, phases)
    }
}

/// The runtime signal state of one intersection.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
enum LightState {
    /// The phase at `phase` is green.
    Green,
    /// Clearing towards `next`; `remaining` seconds of yellow left.
    Yellow { next: usize, remaining: u32 },
}

/// Per-intersection signal state machine with yellow-clearance handling.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SignalState {
    plan: SignalPlan,
    phase: usize,
    state: LightState,
    yellow_time: u32,
    /// Seconds the current phase has been held (green only).
    green_elapsed: u32,
}

impl SignalState {
    /// Creates a state machine starting green on phase 0.
    pub fn new(plan: SignalPlan, yellow_time: u32) -> Self {
        SignalState {
            plan,
            phase: 0,
            state: LightState::Green,
            yellow_time,
            green_elapsed: 0,
        }
    }

    /// The controlled intersection.
    pub fn node(&self) -> NodeId {
        self.plan.node()
    }

    /// The plan driving this state machine.
    pub fn plan(&self) -> &SignalPlan {
        &self.plan
    }

    /// Index of the active (or, during yellow, upcoming) phase.
    pub fn phase(&self) -> usize {
        match self.state {
            LightState::Green => self.phase,
            LightState::Yellow { next, .. } => next,
        }
    }

    /// Whether the intersection is in its yellow clearance interval.
    pub fn in_yellow(&self) -> bool {
        matches!(self.state, LightState::Yellow { .. })
    }

    /// Seconds the current green has been held (0 during yellow).
    pub fn green_elapsed(&self) -> u32 {
        self.green_elapsed
    }

    /// Requests phase `phase`. A change inserts `yellow_time` seconds of
    /// all-red/yellow clearance before the new green; requesting the
    /// active phase extends the green.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPhase`] if out of range.
    pub fn request_phase(&mut self, phase: usize) -> Result<(), SimError> {
        self.validate_phase(phase)?;
        match self.state {
            LightState::Green if phase != self.phase => {
                if self.yellow_time == 0 {
                    self.phase = phase;
                    self.green_elapsed = 0;
                } else {
                    self.state = LightState::Yellow {
                        next: phase,
                        remaining: self.yellow_time,
                    };
                }
            }
            LightState::Yellow { remaining, .. } => {
                // Redirect the in-flight switch; keep the clearance timer.
                self.state = LightState::Yellow {
                    next: phase,
                    remaining,
                };
            }
            LightState::Green => {}
        }
        Ok(())
    }

    /// Checks that `phase` exists in this plan without acting on it —
    /// the validation half of [`request_phase`](Self::request_phase),
    /// used when an actuation fault swallows the command itself but
    /// the request must still be range-checked.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPhase`] if out of range.
    pub fn validate_phase(&self, phase: usize) -> Result<(), SimError> {
        if phase >= self.plan.num_phases() {
            return Err(SimError::InvalidPhase {
                node: self.plan.node(),
                phase,
                num_phases: self.plan.num_phases(),
            });
        }
        Ok(())
    }

    /// Advances the state machine by one second.
    pub fn tick(&mut self) {
        match &mut self.state {
            LightState::Green => {
                self.green_elapsed += 1;
            }
            LightState::Yellow { next, remaining } => {
                // Saturating: a zero-remaining yellow (possible only in
                // a hand-built or deserialized state) resolves to green
                // instead of underflowing.
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    self.phase = *next;
                    self.state = LightState::Green;
                    self.green_elapsed = 0;
                }
            }
        }
    }

    /// Whether `movement` from `link` may discharge right now (green on
    /// a permitting phase; nothing discharges during yellow). An
    /// out-of-range phase index (impossible via [`request_phase`]
    /// (Self::request_phase), which validates) reads as all-red rather
    /// than panicking mid-step.
    pub fn permits(&self, link: LinkId, movement: Movement) -> bool {
        match self.state {
            LightState::Green => self
                .plan
                .phases()
                .get(self.phase)
                .is_some_and(|p| p.permits(link, movement)),
            LightState::Yellow { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;
    use crate::network::{Lane, NetworkBuilder};

    fn cross() -> (Network, NodeId) {
        let mut b = NetworkBuilder::new();
        let c = b.add_node(0.0, 0.0, true);
        let n = b.add_node(0.0, 200.0, false);
        let e = b.add_node(200.0, 0.0, false);
        let s = b.add_node(0.0, -200.0, false);
        let w = b.add_node(-200.0, 0.0, false);
        for (t, d) in [
            (n, Direction::South),
            (e, Direction::West),
            (s, Direction::North),
            (w, Direction::East),
        ] {
            b.add_link(t, c, d, vec![Lane::all_movements()]).unwrap();
            b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
                .unwrap();
        }
        (b.build().unwrap(), c)
    }
    use crate::network::Network;

    #[test]
    fn four_phase_plan_has_four_disjoint_phases() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        assert_eq!(plan.num_phases(), 4);
        // Through/right NS phase must not permit any EW movement.
        let ew_links: Vec<LinkId> = net
            .incoming(c)
            .iter()
            .copied()
            .filter(|&l| net.link(l).direction().index() % 2 == 1)
            .collect();
        for (l, _) in plan.phases()[0].permitted() {
            assert!(!ew_links.contains(&l));
        }
    }

    #[test]
    fn phase_change_goes_through_yellow() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        let sample = plan.phases()[2].permitted().next().unwrap();
        let mut st = SignalState::new(plan, 2);
        assert!(!st.in_yellow());
        st.request_phase(2).unwrap();
        assert!(st.in_yellow());
        assert!(!st.permits(sample.0, sample.1), "yellow blocks discharge");
        st.tick();
        assert!(st.in_yellow());
        st.tick();
        assert!(!st.in_yellow());
        assert_eq!(st.phase(), 2);
        assert!(st.permits(sample.0, sample.1));
    }

    #[test]
    fn requesting_active_phase_keeps_green() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        let mut st = SignalState::new(plan, 2);
        st.tick();
        st.request_phase(0).unwrap();
        assert!(!st.in_yellow());
        assert_eq!(st.green_elapsed(), 1);
    }

    #[test]
    fn invalid_phase_is_rejected() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        let mut st = SignalState::new(plan, 2);
        assert!(matches!(
            st.request_phase(99),
            Err(SimError::InvalidPhase { phase: 99, .. })
        ));
    }

    #[test]
    fn zero_yellow_switches_immediately() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        let mut st = SignalState::new(plan, 0);
        st.request_phase(3).unwrap();
        assert!(!st.in_yellow());
        assert_eq!(st.phase(), 3);
    }

    #[test]
    fn redirect_during_yellow_lands_on_latest_request() {
        let (net, c) = cross();
        let plan = SignalPlan::four_phase(&net, c).unwrap();
        let mut st = SignalState::new(plan, 2);
        st.request_phase(1).unwrap();
        st.tick();
        st.request_phase(3).unwrap();
        st.tick();
        assert_eq!(st.phase(), 3);
        assert!(!st.in_yellow());
    }
}
