//! Static shortest-path routing over the link graph.
//!
//! Routes are computed once per OD pair on free-flow travel times
//! (length / free speed), matching the static route assignment used by
//! the paper's SUMO scenarios. The search runs on *links* rather than
//! nodes so that turn restrictions (no U-turns, missing turn targets)
//! are respected exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::SimError;
use crate::ids::{LinkId, NodeId};
use crate::network::{Movement, Network};

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    link: LinkId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by link id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.link.index().cmp(&self.link.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a shortest link-sequence route from node `origin` to node
/// `destination` using free-flow time as the edge cost.
///
/// The returned route starts with a link leaving `origin` and ends with
/// a link entering `destination`; consecutive links are always joined by
/// a legal turning movement.
///
/// # Errors
///
/// Returns [`SimError::NoRoute`] when `destination` is unreachable,
/// [`SimError::UnknownNode`] for out-of-range node ids, and
/// [`SimError::InvalidConfig`] for a non-positive/non-finite
/// `free_speed` or a network with non-finite link lengths (either would
/// otherwise poison every downstream cost comparison).
pub fn shortest_route(
    network: &Network,
    origin: NodeId,
    destination: NodeId,
    free_speed: f64,
) -> Result<Vec<LinkId>, SimError> {
    if !free_speed.is_finite() || free_speed <= 0.0 {
        return Err(SimError::InvalidConfig(format!(
            "free_speed must be finite and > 0, got {free_speed}"
        )));
    }
    if origin.index() >= network.num_nodes() {
        return Err(SimError::UnknownNode(origin));
    }
    if destination.index() >= network.num_nodes() {
        return Err(SimError::UnknownNode(destination));
    }
    let link_cost = |l: LinkId| -> Result<f64, SimError> {
        let cost = network.link(l).length() / free_speed;
        if cost.is_finite() {
            Ok(cost)
        } else {
            Err(SimError::InvalidConfig(format!(
                "link {l} has non-finite travel time {cost}"
            )))
        }
    };
    let n_links = network.num_links();
    let mut dist = vec![f64::INFINITY; n_links];
    let mut prev: Vec<Option<LinkId>> = vec![None; n_links];
    let mut heap = BinaryHeap::new();

    for &l in network.outgoing(origin) {
        let cost = link_cost(l)?;
        if cost < dist[l.index()] {
            dist[l.index()] = cost;
            heap.push(HeapEntry { cost, link: l });
        }
    }

    let mut best_terminal: Option<(f64, LinkId)> = None;
    while let Some(HeapEntry { cost, link }) = heap.pop() {
        if cost > dist[link.index()] {
            continue;
        }
        if network.link(link).to() == destination {
            best_terminal = Some((cost, link));
            break; // Dijkstra: first settled terminal link is optimal.
        }
        for m in Movement::ALL {
            if let Some(next) = network.turn_target(link, m) {
                let c = cost + link_cost(next)?;
                if c < dist[next.index()] {
                    dist[next.index()] = c;
                    prev[next.index()] = Some(link);
                    heap.push(HeapEntry {
                        cost: c,
                        link: next,
                    });
                }
            }
        }
    }

    let (_, mut cur) = best_terminal.ok_or(SimError::NoRoute {
        from: origin,
        to: destination,
    })?;
    let mut route = vec![cur];
    while let Some(p) = prev[cur.index()] {
        route.push(p);
        cur = p;
    }
    route.reverse();
    Ok(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;
    use crate::network::{Lane, NetworkBuilder};

    /// 3-node corridor west -> center -> east plus a detour.
    fn corridor() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let w = b.add_node(0.0, 0.0, false);
        let c = b.add_node(200.0, 0.0, true);
        let e = b.add_node(400.0, 0.0, false);
        let n = b.add_node(200.0, 200.0, false);
        b.add_link(w, c, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(c, e, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(c, n, Direction::North, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(n, c, Direction::South, vec![Lane::all_movements()])
            .unwrap();
        (b.build().unwrap(), w, e)
    }

    #[test]
    fn straight_route_is_found() {
        let (net, w, e) = corridor();
        let route = shortest_route(&net, w, e, 13.89).unwrap();
        assert_eq!(route.len(), 2);
        assert_eq!(net.link(route[0]).from(), w);
        assert_eq!(net.link(*route.last().unwrap()).to(), e);
    }

    #[test]
    fn consecutive_route_links_are_connected_by_legal_turns() {
        let (net, w, e) = corridor();
        let route = shortest_route(&net, w, e, 13.89).unwrap();
        for pair in route.windows(2) {
            assert!(net.movement_between(pair[0], pair[1]).is_some());
        }
    }

    #[test]
    fn unreachable_destination_errors() {
        let (net, _, e) = corridor();
        // Nothing leaves `e`, so e -> w has no route.
        let err = shortest_route(&net, e, NodeId(0), 13.89).unwrap_err();
        assert!(matches!(err, SimError::NoRoute { .. }));
    }

    #[test]
    fn unknown_nodes_error() {
        let (net, w, _) = corridor();
        assert!(matches!(
            shortest_route(&net, NodeId(99), w, 13.89),
            Err(SimError::UnknownNode(_))
        ));
        assert!(matches!(
            shortest_route(&net, w, NodeId(99), 13.89),
            Err(SimError::UnknownNode(_))
        ));
    }

    #[test]
    fn route_prefers_shorter_path() {
        // Grid square: two paths from a to d; one is shorter.
        let mut b = NetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, false);
        let bb = b.add_node(100.0, 0.0, false);
        let c = b.add_node(0.0, 300.0, false);
        let d = b.add_node(100.0, 300.0, false);
        // Short: a -> b -> d (100 + 300). Long: a -> c -> d (300 + 100)
        // equal length; tie broken deterministically. Make long longer.
        let cc = b.add_node(-50.0, 300.0, false);
        b.add_link(a, bb, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(bb, d, Direction::North, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(a, cc, Direction::North, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(cc, c, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        b.add_link(c, d, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        let net = b.build().unwrap();
        let route = shortest_route(&net, a, d, 10.0).unwrap();
        assert_eq!(route.len(), 2, "short path has two links");
    }
}
