//! Strongly-typed identifiers for network entities.
//!
//! Newtypes keep node, link, and vehicle indices from being confused with
//! one another (C-NEWTYPE). All identifiers are dense indices into the
//! owning container and are cheap to copy.

use std::fmt;

/// Identifier of a node (intersection or boundary terminal) in a
/// [`Network`](crate::network::Network).
///
/// # Examples
///
/// ```
/// use tsc_sim::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the dense index backing this identifier.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed link (road segment between two nodes).
///
/// # Examples
///
/// ```
/// use tsc_sim::LinkId;
/// let l = LinkId(7);
/// assert_eq!(l.index(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Returns the dense index backing this identifier.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a vehicle. Indices are assigned in spawn order and are
/// never reused within one simulation run.
///
/// # Examples
///
/// ```
/// use tsc_sim::VehicleId;
/// let v = VehicleId(42);
/// assert_eq!(v.index(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct VehicleId(pub usize);

impl VehicleId {
    /// Returns the dense index backing this identifier.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Compass direction of travel, used to orient approaches at an
/// intersection and to derive turning movements between links.
///
/// # Examples
///
/// ```
/// use tsc_sim::Direction;
/// assert_eq!(Direction::North.opposite(), Direction::South);
/// assert_eq!(Direction::East.left_of(), Direction::North);
/// assert_eq!(Direction::East.right_of(), Direction::South);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Direction {
    /// Travelling towards increasing `y`.
    North,
    /// Travelling towards increasing `x`.
    East,
    /// Travelling towards decreasing `y`.
    South,
    /// Travelling towards decreasing `x`.
    West,
}

impl Direction {
    /// All four directions in clockwise order starting at north.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// Returns the direction of travel after a U-turn.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Returns the direction of travel after a left turn.
    pub fn left_of(self) -> Direction {
        match self {
            Direction::North => Direction::West,
            Direction::West => Direction::South,
            Direction::South => Direction::East,
            Direction::East => Direction::North,
        }
    }

    /// Returns the direction of travel after a right turn.
    pub fn right_of(self) -> Direction {
        match self {
            Direction::North => Direction::East,
            Direction::East => Direction::South,
            Direction::South => Direction::West,
            Direction::West => Direction::North,
        }
    }

    /// A stable dense index (0 = north, 1 = east, 2 = south, 3 = west),
    /// used to order approaches in fixed-size observation vectors.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }

    /// Unit displacement `(dx, dy)` of this direction of travel.
    pub fn delta(self) -> (f64, f64) {
        match self {
            Direction::North => (0.0, 1.0),
            Direction::East => (1.0, 0.0),
            Direction::South => (0.0, -1.0),
            Direction::West => (-1.0, 0.0),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn left_then_right_is_identity() {
        for d in Direction::ALL {
            assert_eq!(d.left_of().right_of(), d);
            assert_eq!(d.right_of().left_of(), d);
        }
    }

    #[test]
    fn four_lefts_make_a_circle() {
        for d in Direction::ALL {
            assert_eq!(d.left_of().left_of().left_of().left_of(), d);
        }
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(LinkId(9).to_string(), "l9");
        assert_eq!(VehicleId(1).to_string(), "v1");
        assert_eq!(Direction::West.to_string(), "W");
    }
}
