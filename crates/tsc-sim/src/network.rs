//! Road-network topology: nodes, directed links, lanes, and turning
//! movements.
//!
//! A [`Network`] is an immutable directed multigraph built once by a
//! scenario generator and shared by the simulator, the observation layer,
//! and the controllers. Nodes are intersections or boundary terminals
//! (vehicle sources/sinks); links are directed road segments carrying one
//! or more lanes; each lane permits a set of turning [`Movement`]s, which
//! is how shared through/right (or fully shared single-lane) approaches —
//! and the resulting head-of-line blocking — are modelled.

use std::collections::HashMap;

use crate::error::SimError;
use crate::ids::{Direction, LinkId, NodeId};

/// A turning movement relative to the incoming approach direction.
///
/// # Examples
///
/// ```
/// use tsc_sim::{Direction, Movement};
/// assert_eq!(Movement::between(Direction::East, Direction::East), Some(Movement::Through));
/// assert_eq!(Movement::between(Direction::East, Direction::North), Some(Movement::Left));
/// assert_eq!(Movement::between(Direction::East, Direction::South), Some(Movement::Right));
/// assert_eq!(Movement::between(Direction::East, Direction::West), None); // U-turn
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Movement {
    /// Turn towards the left of the travel direction.
    Left,
    /// Continue straight.
    Through,
    /// Turn towards the right of the travel direction.
    Right,
}

impl Movement {
    /// All movements in left-to-right order.
    pub const ALL: [Movement; 3] = [Movement::Left, Movement::Through, Movement::Right];

    /// Derives the movement that takes a vehicle travelling in `from`
    /// onto a link travelling in `to`. Returns `None` for U-turns,
    /// which the simulator forbids.
    pub fn between(from: Direction, to: Direction) -> Option<Movement> {
        if to == from {
            Some(Movement::Through)
        } else if to == from.left_of() {
            Some(Movement::Left)
        } else if to == from.right_of() {
            Some(Movement::Right)
        } else {
            None
        }
    }

    /// Stable dense index (left = 0, through = 1, right = 2).
    pub fn index(self) -> usize {
        match self {
            Movement::Left => 0,
            Movement::Through => 1,
            Movement::Right => 2,
        }
    }
}

/// A single lane on a link together with the set of movements it permits.
///
/// Lanes whose `movements` set has more than one element are *shared*
/// lanes (e.g. a combined through/right lane, or the fully shared lane of
/// a one-lane avenue); the queue model in the simulator exhibits
/// head-of-line blocking on such lanes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Lane {
    movements: Vec<Movement>,
}

impl Lane {
    /// Creates a lane permitting exactly the given movements.
    ///
    /// Duplicate movements are collapsed.
    pub fn new(movements: &[Movement]) -> Self {
        let mut ms: Vec<Movement> = movements.to_vec();
        ms.sort();
        ms.dedup();
        Lane { movements: ms }
    }

    /// A lane permitting every movement (one-lane avenue).
    pub fn all_movements() -> Self {
        Lane::new(&Movement::ALL)
    }

    /// Returns `true` if this lane may serve `movement`.
    pub fn permits(&self, movement: Movement) -> bool {
        self.movements.contains(&movement)
    }

    /// The permitted movements, sorted left-to-right.
    pub fn movements(&self) -> &[Movement] {
        &self.movements
    }
}

/// A directed road segment between two nodes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Link {
    id: LinkId,
    from: NodeId,
    to: NodeId,
    length: f64,
    direction: Direction,
    lanes: Vec<Lane>,
}

impl Link {
    /// Identifier of this link.
    pub fn id(&self) -> LinkId {
        self.id
    }
    /// Upstream node.
    pub fn from(&self) -> NodeId {
        self.from
    }
    /// Downstream node.
    pub fn to(&self) -> NodeId {
        self.to
    }
    /// Length in meters.
    pub fn length(&self) -> f64 {
        self.length
    }
    /// Direction of travel (orientation of the approach at `to`).
    pub fn direction(&self) -> Direction {
        self.direction
    }
    /// The lanes on this link, leftmost first.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }
    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }
}

/// A node: a signalized intersection, an unsignalized junction, or a
/// boundary terminal where vehicles enter/leave the network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Node {
    id: NodeId,
    x: f64,
    y: f64,
    signalized: bool,
}

impl Node {
    /// Identifier of this node.
    pub fn id(&self) -> NodeId {
        self.id
    }
    /// Position (meters).
    pub fn position(&self) -> (f64, f64) {
        (self.x, self.y)
    }
    /// Whether this node carries a traffic signal.
    pub fn is_signalized(&self) -> bool {
        self.signalized
    }
}

/// Immutable road-network topology.
///
/// Built with [`NetworkBuilder`]; validated on construction so the
/// simulator can index without bounds failures.
///
/// # Examples
///
/// ```
/// use tsc_sim::{Direction, Lane, Movement, NetworkBuilder};
///
/// # fn main() -> Result<(), tsc_sim::SimError> {
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node(0.0, 0.0, false);
/// let c = b.add_node(200.0, 0.0, true);
/// let l = b.add_link(a, c, Direction::East, vec![Lane::all_movements()])?;
/// let net = b.build()?;
/// assert_eq!(net.link(l).length(), 200.0);
/// assert_eq!(net.incoming(c), &[l]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    incoming: Vec<Vec<LinkId>>,
    outgoing: Vec<Vec<LinkId>>,
    /// `(incoming link, movement) -> outgoing link`, per node.
    turns: HashMap<(LinkId, Movement), LinkId>,
}

impl Network {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this network.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this network.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Links terminating at `node`, sorted by approach direction index.
    pub fn incoming(&self, node: NodeId) -> &[LinkId] {
        &self.incoming[node.index()]
    }

    /// Links departing from `node`, sorted by direction index.
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        &self.outgoing[node.index()]
    }

    /// The outgoing link a vehicle reaches when performing `movement`
    /// from incoming link `link`, if that turn exists.
    pub fn turn_target(&self, link: LinkId, movement: Movement) -> Option<LinkId> {
        self.turns.get(&(link, movement)).copied()
    }

    /// The movement connecting incoming `from` to outgoing `to` at the
    /// shared node, if they are connected there.
    pub fn movement_between(&self, from: LinkId, to: LinkId) -> Option<Movement> {
        let a = self.link(from);
        let b = self.link(to);
        if a.to() != b.from() {
            return None;
        }
        Movement::between(a.direction(), b.direction())
    }

    /// Signalized intersections in id order.
    pub fn signalized_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_signalized())
            .map(|n| n.id())
            .collect()
    }

    /// One-hop neighboring *signalized* intersections of `node`: the
    /// signalized endpoints of its incident links.
    pub fn signalized_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &l in self.incoming(node) {
            let n = self.link(l).from();
            if self.node(n).is_signalized() && !out.contains(&n) {
                out.push(n);
            }
        }
        for &l in self.outgoing(node) {
            let n = self.link(l).to();
            if self.node(n).is_signalized() && !out.contains(&n) {
                out.push(n);
            }
        }
        out.sort();
        out
    }

    /// Two-hop signalized neighbors: neighbors of neighbors, excluding
    /// `node` itself and its one-hop neighbors. Used by the centralized
    /// critic; edge intersections yield shorter lists, which callers pad.
    pub fn two_hop_signalized_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let one_hop = self.signalized_neighbors(node);
        let mut out = Vec::new();
        for &n in &one_hop {
            for m in self.signalized_neighbors(n) {
                if m != node && !one_hop.contains(&m) && !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        out.sort();
        out
    }

    /// *Upstream* signalized neighbors of `node`: signalized upstream
    /// endpoints of its incoming links, paired with the connecting link.
    /// This is the candidate set for PairUpLight's communication pairing.
    pub fn upstream_signalized(&self, node: NodeId) -> Vec<(NodeId, LinkId)> {
        let mut out = Vec::new();
        for &l in self.incoming(node) {
            let n = self.link(l).from();
            if self.node(n).is_signalized() {
                out.push((n, l));
            }
        }
        out
    }
}

/// Incremental builder for [`Network`] (C-BUILDER).
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `(x, y)` meters and returns its id.
    pub fn add_node(&mut self, x: f64, y: f64, signalized: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            x,
            y,
            signalized,
        });
        id
    }

    /// Adds a directed link from `from` to `to` travelling in
    /// `direction`, with the given lanes (leftmost first). Length is the
    /// Euclidean distance between the endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if either endpoint is missing,
    /// [`SimError::SelfLoop`] if the endpoints coincide, and
    /// [`SimError::InvalidConfig`] if `lanes` is empty.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        direction: Direction,
        lanes: Vec<Lane>,
    ) -> Result<LinkId, SimError> {
        if from.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(from));
        }
        if to.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(to));
        }
        if from == to {
            return Err(SimError::SelfLoop(from));
        }
        if lanes.is_empty() {
            return Err(SimError::InvalidConfig(
                "link must have at least one lane".into(),
            ));
        }
        let (x0, y0) = self.nodes[from.index()].position();
        let (x1, y1) = self.nodes[to.index()].position();
        let length = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            from,
            to,
            length,
            direction,
            lanes,
        });
        Ok(id)
    }

    /// Finalizes the network, computing adjacency and the turn map.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if two outgoing links at one
    /// node would claim the same turning movement from one incoming link.
    pub fn build(self) -> Result<Network, SimError> {
        let mut incoming = vec![Vec::new(); self.nodes.len()];
        let mut outgoing = vec![Vec::new(); self.nodes.len()];
        for link in &self.links {
            incoming[link.to().index()].push(link.id());
            outgoing[link.from().index()].push(link.id());
        }
        // Stable ordering by approach direction then id keeps observation
        // vectors deterministic.
        let links = &self.links;
        for list in incoming.iter_mut().chain(outgoing.iter_mut()) {
            list.sort_by_key(|l| (links[l.index()].direction().index(), l.index()));
        }
        let mut turns = HashMap::new();
        for node in &self.nodes {
            for &in_l in &incoming[node.id().index()] {
                for &out_l in &outgoing[node.id().index()] {
                    let from_dir = links[in_l.index()].direction();
                    let to_dir = links[out_l.index()].direction();
                    if let Some(m) = Movement::between(from_dir, to_dir) {
                        if turns.insert((in_l, m), out_l).is_some() {
                            return Err(SimError::InvalidConfig(format!(
                                "duplicate {m:?} turn from {in_l} at {}",
                                node.id()
                            )));
                        }
                    }
                }
            }
        }
        Ok(Network {
            nodes: self.nodes,
            links: self.links,
            incoming,
            outgoing,
            turns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross() -> Network {
        // A four-way intersection: center signalized, four terminals.
        let mut b = NetworkBuilder::new();
        let c = b.add_node(0.0, 0.0, true);
        let n = b.add_node(0.0, 200.0, false);
        let e = b.add_node(200.0, 0.0, false);
        let s = b.add_node(0.0, -200.0, false);
        let w = b.add_node(-200.0, 0.0, false);
        for (t, d) in [
            (n, Direction::South),
            (e, Direction::West),
            (s, Direction::North),
            (w, Direction::East),
        ] {
            b.add_link(t, c, d, vec![Lane::all_movements()]).unwrap();
            b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn cross_has_four_approaches() {
        let net = cross();
        let c = NodeId(0);
        assert_eq!(net.incoming(c).len(), 4);
        assert_eq!(net.outgoing(c).len(), 4);
    }

    #[test]
    fn turn_map_covers_all_non_uturn_movements() {
        let net = cross();
        let c = NodeId(0);
        for &in_l in net.incoming(c) {
            for m in Movement::ALL {
                let target = net.turn_target(in_l, m).expect("turn exists");
                let expect_dir = match m {
                    Movement::Left => net.link(in_l).direction().left_of(),
                    Movement::Through => net.link(in_l).direction(),
                    Movement::Right => net.link(in_l).direction().right_of(),
                };
                assert_eq!(net.link(target).direction(), expect_dir);
            }
        }
    }

    #[test]
    fn movement_between_rejects_uturn() {
        let net = cross();
        let c = NodeId(0);
        for &in_l in net.incoming(c) {
            let back = net
                .outgoing(c)
                .iter()
                .copied()
                .find(|&o| net.link(o).to() == net.link(in_l).from())
                .unwrap();
            assert_eq!(net.movement_between(in_l, back), None);
        }
    }

    #[test]
    fn builder_rejects_self_loop_and_unknown_nodes() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, false);
        assert_eq!(
            b.add_link(a, a, Direction::East, vec![Lane::all_movements()]),
            Err(SimError::SelfLoop(a))
        );
        assert!(matches!(
            b.add_link(a, NodeId(9), Direction::East, vec![Lane::all_movements()]),
            Err(SimError::UnknownNode(_))
        ));
    }

    #[test]
    fn builder_rejects_empty_lanes() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, false);
        let c = b.add_node(100.0, 0.0, false);
        assert!(matches!(
            b.add_link(a, c, Direction::East, vec![]),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn link_length_is_euclidean() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, false);
        let c = b.add_node(300.0, 400.0, false);
        let l = b
            .add_link(a, c, Direction::East, vec![Lane::all_movements()])
            .unwrap();
        let net = b.build().unwrap();
        assert!((net.link(l).length() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn shared_lane_permits_multiple_movements() {
        let lane = Lane::new(&[Movement::Through, Movement::Right, Movement::Through]);
        assert!(lane.permits(Movement::Through));
        assert!(lane.permits(Movement::Right));
        assert!(!lane.permits(Movement::Left));
        assert_eq!(lane.movements().len(), 2);
    }

    #[test]
    fn neighbors_on_cross_are_empty_terminals() {
        let net = cross();
        // Terminals are unsignalized, so the center has no signalized
        // neighbors.
        assert!(net.signalized_neighbors(NodeId(0)).is_empty());
        assert!(net.two_hop_signalized_neighbors(NodeId(0)).is_empty());
    }
}
