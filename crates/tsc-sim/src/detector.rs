//! Road-side sensing with bounded coverage.
//!
//! The paper stresses that real deployments only see a *finite* range
//! around the stop line (loop detectors / cameras covering ~50 m,
//! §VI-A), and builds its state from link-level **pressure** and the
//! **head vehicle's accumulated waiting time** (Eq. 5) rather than raw
//! queue lengths. This module defines the detector configuration and the
//! per-intersection observation snapshot the simulator produces.

use crate::ids::{Direction, LinkId, NodeId};

/// Detector configuration shared by all intersections.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectorConfig {
    /// Coverage from the stop line (and from the upstream end of
    /// outgoing links), in meters. The paper uses 50 m.
    pub range: f64,
    /// Multiplicative count-noise amplitude: each link's counts are
    /// scaled by a deterministic pseudo-random factor in
    /// `[1 - noise, 1 + noise]`. 0 disables noise. Used by the
    /// robustness experiments (sensor degradation).
    pub noise: f64,
    /// Probability that a link's detector has failed for a given
    /// second (readings all zero). 0 disables dropout. Failures are
    /// deterministic in `(time, link)` for reproducibility.
    pub dropout: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            range: 50.0,
            noise: 0.0,
            dropout: 0.0,
        }
    }
}

impl DetectorConfig {
    /// A perfect detector with the given range.
    pub fn with_range(range: f64) -> Self {
        DetectorConfig {
            range,
            ..DetectorConfig::default()
        }
    }
}

/// Deterministic per-(time, entity) uniform sample in `[0, 1)` used for
/// reproducible sensor-degradation experiments (splitmix64 hash).
pub(crate) fn degradation_uniform(seed: u64, time: u32, entity: usize) -> f64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(time) + 1))
        .wrapping_add((entity as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Sensor reading for one link as seen from an intersection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkObs {
    /// The observed link.
    pub link: LinkId,
    /// Travel direction of the link (orients the approach).
    pub direction: Direction,
    /// Vehicles detected within range.
    pub count: f64,
    /// Vehicles detected within range that are halted.
    pub halting: f64,
    /// Halted vehicles within range broken down by the movement they
    /// are queued for (`[left, through, right]`) — the paper's
    /// per-movement queues ("vehicles entering input link in order to
    /// make movement join a queue dedicated to that movement", §IV-A).
    pub halting_by_movement: [f64; 3],
    /// Accumulated waiting time (s) of the head vehicle, 0 if none.
    pub head_wait: f64,
}

/// Snapshot of one intersection's local sensing at a time step —
/// everything Eq. 5 needs: per-link detections on input links `L` and
/// output links `M`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IntersectionObs {
    /// The observed intersection.
    pub node: NodeId,
    /// Simulation time of the snapshot (s).
    pub time: u32,
    /// Readings for incoming links, ordered by approach direction index.
    pub incoming: Vec<LinkObs>,
    /// Vehicle counts near the upstream end of outgoing links, ordered
    /// by direction index (parallel to `outgoing_links`).
    pub outgoing_counts: Vec<f64>,
    /// The outgoing links (parallel to `outgoing_counts`).
    pub outgoing_links: Vec<LinkId>,
    /// Index of the active (or upcoming, during yellow) phase.
    pub current_phase: usize,
    /// Number of phases in this intersection's plan.
    pub num_phases: usize,
}

impl IntersectionObs {
    /// Intersection pressure: vehicles detected on input links minus
    /// vehicles detected on output links (paper §III-A / Fig. 2).
    pub fn pressure(&self) -> f64 {
        let inflow: f64 = self.incoming.iter().map(|l| l.count).sum();
        let outflow: f64 = self.outgoing_counts.iter().sum();
        inflow - outflow
    }

    /// Total halting vehicles over all incoming links — the queue term
    /// of the reward (Eq. 6).
    pub fn total_halting(&self) -> f64 {
        self.incoming.iter().map(|l| l.halting).sum()
    }

    /// Maximum head-vehicle wait over all incoming links — the delay
    /// term of the reward (Eq. 6) and of the paper's "average waiting
    /// time" metric.
    pub fn max_wait(&self) -> f64 {
        self.incoming
            .iter()
            .map(|l| l.head_wait)
            .fold(0.0, f64::max)
    }

    /// The reward of Eq. 6: `-(Σ halting + max wait)`.
    pub fn reward(&self) -> f64 {
        -(self.total_halting() + self.max_wait())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> IntersectionObs {
        IntersectionObs {
            node: NodeId(0),
            time: 10,
            incoming: vec![
                LinkObs {
                    link: LinkId(0),
                    direction: Direction::South,
                    count: 4.0,
                    halting: 3.0,
                    halting_by_movement: [1.0, 2.0, 0.0],
                    head_wait: 12.0,
                },
                LinkObs {
                    link: LinkId(1),
                    direction: Direction::West,
                    count: 2.0,
                    halting: 0.0,
                    halting_by_movement: [0.0, 0.0, 0.0],
                    head_wait: 5.0,
                },
            ],
            outgoing_counts: vec![1.0, 2.0],
            outgoing_links: vec![LinkId(2), LinkId(3)],
            current_phase: 1,
            num_phases: 4,
        }
    }

    #[test]
    fn pressure_is_in_minus_out() {
        assert_eq!(obs().pressure(), 6.0 - 3.0);
    }

    #[test]
    fn reward_penalizes_halting_and_max_wait() {
        let o = obs();
        assert_eq!(o.total_halting(), 3.0);
        assert_eq!(o.max_wait(), 12.0);
        assert_eq!(o.reward(), -15.0);
    }

    #[test]
    fn empty_intersection_has_zero_reward() {
        let o = IntersectionObs {
            node: NodeId(0),
            time: 0,
            incoming: vec![],
            outgoing_counts: vec![],
            outgoing_links: vec![],
            current_phase: 0,
            num_phases: 4,
        };
        assert_eq!(o.reward(), 0.0);
        assert_eq!(o.pressure(), 0.0);
    }
}
