//! Deterministic chaos injection for the controller-facing surfaces.
//!
//! A [`ChaosPlan`] is a schedule of faults perturbing the three
//! boundaries between a controller and the world:
//!
//! * **sensing** — per-detector dropout, stuck-at-last-value freezes,
//!   Gaussian count noise, and additive bias (generalizing the ad-hoc
//!   dropout/noise knobs of [`DetectorConfig`](crate::DetectorConfig)
//!   into scheduled, targetable faults);
//! * **actuation** — lost phase commands (the signal holds its current
//!   phase), stuck-phase windows (every command ignored), and forced
//!   all-red windows (nothing discharges);
//! * **communication** — per-edge message drop, delay-by-k decision
//!   steps, and value corruption on the partner-message channel
//!   (consumed by the controller-side channel model in the core crate;
//!   the simulator itself carries no messages).
//!
//! Every fault is active on a half-open [`Window`] of simulation
//! seconds and draws its probabilistic decisions from a splitmix64
//! hash of `(seed, fault index, time, entity)` — the same scheme as
//! detector degradation — so the plan consumes **no RNG state** and a
//! run under `seed + plan` is bit-for-bit reproducible. An empty plan
//! is free: every hook checks an empty list and leaves the simulation
//! byte-identical to a chaos-free build. This mirrors the `FaultPlan`
//! design of the training stack, except that chaos faults are windows
//! rather than consume-once events: the surface keeps misbehaving for
//! as long as the window lasts.

use crate::ids::{LinkId, NodeId};

/// Half-open window `[start, end)` of simulation seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First second the fault is active.
    pub start: u32,
    /// First second the fault is no longer active.
    pub end: u32,
}

impl Window {
    /// A window covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Window { start, end }
    }

    /// A window covering the whole run.
    pub fn always() -> Self {
        Window {
            start: 0,
            end: u32::MAX,
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: u32) -> bool {
        self.start <= t && t < self.end
    }
}

/// Which links a sensing fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSel {
    /// Every link.
    All,
    /// One specific link.
    One(LinkId),
}

impl LinkSel {
    /// Whether `link` is targeted.
    pub fn matches(&self, link: LinkId) -> bool {
        match self {
            LinkSel::All => true,
            LinkSel::One(l) => *l == link,
        }
    }
}

/// Which intersections an actuation fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSel {
    /// Every signalized intersection.
    All,
    /// One specific intersection.
    One(NodeId),
}

impl NodeSel {
    /// Whether `node` is targeted.
    pub fn matches(&self, node: NodeId) -> bool {
        match self {
            NodeSel::All => true,
            NodeSel::One(n) => *n == node,
        }
    }
}

/// Which receiving agents a communication fault targets (an "edge" of
/// the pairing graph is identified by its receiver: every agent reads
/// exactly one partner message per decision step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentSel {
    /// Every agent.
    All,
    /// One specific agent index.
    One(usize),
}

impl AgentSel {
    /// Whether `agent` is targeted.
    pub fn matches(&self, agent: usize) -> bool {
        match self {
            AgentSel::All => true,
            AgentSel::One(a) => *a == agent,
        }
    }
}

/// A detector fault mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensingKind {
    /// Each second inside the window, the detector reads all-zero with
    /// probability `p` (deterministic in `(time, link)`).
    Dropout {
        /// Per-second failure probability in `[0, 1]`.
        p: f64,
    },
    /// The reading freezes at its value from the window's first second.
    StuckAtLast,
    /// Counts are scaled by `1 + sigma · g` with `g` a deterministic
    /// standard Gaussian (clamped so counts stay non-negative).
    Noise {
        /// Gaussian amplitude.
        sigma: f64,
    },
    /// A constant miscalibration: `delta` vehicles are added to the
    /// count/halting readings (clamped at zero; negative `delta`
    /// under-counts, positive `delta` reports phantom vehicles).
    Bias {
        /// Additive count offset (vehicles).
        delta: f64,
    },
}

/// A scheduled detector fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingFault {
    /// When the fault is active.
    pub window: Window,
    /// Which links it hits.
    pub links: LinkSel,
    /// What it does.
    pub kind: SensingKind,
}

/// A signal-actuation fault mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuationKind {
    /// Each phase command is dropped with probability `p` (the signal
    /// holds its current phase).
    CommandLoss {
        /// Per-command loss probability in `[0, 1]`.
        p: f64,
    },
    /// Every phase command is ignored for the window's duration.
    StuckPhase,
    /// Nothing discharges through the intersection (forced all-red),
    /// regardless of the displayed phase.
    AllRed,
}

/// A scheduled actuation fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActuationFault {
    /// When the fault is active.
    pub window: Window,
    /// Which intersections it hits.
    pub nodes: NodeSel,
    /// What it does.
    pub kind: ActuationKind,
}

/// A communication fault mode on the partner-message channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommsKind {
    /// Each delivery is lost with probability `p`; what the receiver
    /// sees instead is the channel's loss policy (zero-fill or
    /// hold-last).
    Drop {
        /// Per-delivery loss probability in `[0, 1]`.
        p: f64,
    },
    /// Deliveries arrive `steps` decision steps late (the receiver
    /// reads the message its partner emitted `steps` steps earlier;
    /// zeros before any message was sent).
    Delay {
        /// Delivery delay in decision steps.
        steps: u32,
    },
    /// Uniform value corruption of amplitude `amp`, clamped back into
    /// the message range `[0, 1]`.
    Corrupt {
        /// Corruption amplitude.
        amp: f64,
    },
}

/// A scheduled communication fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommsFault {
    /// When the fault is active.
    pub window: Window,
    /// Which receiving agents it hits.
    pub receivers: AgentSel,
    /// What it does.
    pub kind: CommsKind,
}

/// A deterministic schedule of sensing/actuation/communication faults.
///
/// Built with the same chained-builder style as the training stack's
/// `FaultPlan`; installed into a simulation via
/// [`Simulation::with_chaos`](crate::Simulation::with_chaos) /
/// [`TscEnv::set_chaos`](crate::TscEnv::set_chaos) and into a serving
/// runtime's message channel by the serving crate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    sensing: Vec<SensingFault>,
    actuation: Vec<ActuationFault>,
    comms: Vec<CommsFault>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing; simulation behavior is
    /// bit-identical to not installing a plan at all).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Detector dropout: targeted links read all-zero with probability
    /// `p` each second of `window`.
    pub fn sensor_dropout(mut self, window: Window, links: LinkSel, p: f64) -> Self {
        self.sensing.push(SensingFault {
            window,
            links,
            kind: SensingKind::Dropout { p },
        });
        self
    }

    /// Stuck detector: targeted links freeze at their reading from the
    /// window's first second.
    pub fn sensor_stuck(mut self, window: Window, links: LinkSel) -> Self {
        self.sensing.push(SensingFault {
            window,
            links,
            kind: SensingKind::StuckAtLast,
        });
        self
    }

    /// Gaussian count noise of amplitude `sigma` on targeted links.
    pub fn sensor_noise(mut self, window: Window, links: LinkSel, sigma: f64) -> Self {
        self.sensing.push(SensingFault {
            window,
            links,
            kind: SensingKind::Noise { sigma },
        });
        self
    }

    /// Constant additive count bias of `delta` vehicles on targeted
    /// links.
    pub fn sensor_bias(mut self, window: Window, links: LinkSel, delta: f64) -> Self {
        self.sensing.push(SensingFault {
            window,
            links,
            kind: SensingKind::Bias { delta },
        });
        self
    }

    /// Command loss: each phase request at targeted intersections is
    /// dropped with probability `p` (the phase holds).
    pub fn command_loss(mut self, window: Window, nodes: NodeSel, p: f64) -> Self {
        self.actuation.push(ActuationFault {
            window,
            nodes,
            kind: ActuationKind::CommandLoss { p },
        });
        self
    }

    /// Stuck signal: every phase request at targeted intersections is
    /// ignored for the window's duration.
    pub fn stuck_phase(mut self, window: Window, nodes: NodeSel) -> Self {
        self.actuation.push(ActuationFault {
            window,
            nodes,
            kind: ActuationKind::StuckPhase,
        });
        self
    }

    /// Forced all-red: nothing discharges through targeted
    /// intersections for the window's duration.
    pub fn all_red(mut self, window: Window, nodes: NodeSel) -> Self {
        self.actuation.push(ActuationFault {
            window,
            nodes,
            kind: ActuationKind::AllRed,
        });
        self
    }

    /// Message drop: each partner-message delivery to targeted
    /// receivers is lost with probability `p`.
    pub fn message_drop(mut self, window: Window, receivers: AgentSel, p: f64) -> Self {
        self.comms.push(CommsFault {
            window,
            receivers,
            kind: CommsKind::Drop { p },
        });
        self
    }

    /// Message delay: deliveries to targeted receivers arrive `steps`
    /// decision steps late.
    pub fn message_delay(mut self, window: Window, receivers: AgentSel, steps: u32) -> Self {
        self.comms.push(CommsFault {
            window,
            receivers,
            kind: CommsKind::Delay { steps },
        });
        self
    }

    /// Message corruption of amplitude `amp` on deliveries to targeted
    /// receivers.
    pub fn message_corrupt(mut self, window: Window, receivers: AgentSel, amp: f64) -> Self {
        self.comms.push(CommsFault {
            window,
            receivers,
            kind: CommsKind::Corrupt { amp },
        });
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.sensing.is_empty() && self.actuation.is_empty() && self.comms.is_empty()
    }

    /// The scheduled sensing faults.
    pub fn sensing(&self) -> &[SensingFault] {
        &self.sensing
    }

    /// The scheduled actuation faults.
    pub fn actuation(&self) -> &[ActuationFault] {
        &self.actuation
    }

    /// The scheduled communication faults.
    pub fn comms(&self) -> &[CommsFault] {
        &self.comms
    }

    /// A stable FNV-1a fingerprint of the full fault schedule (windows,
    /// selectors, kinds, parameter bits). An empty plan hashes to a
    /// fixed value; combined with [`Scenario::fingerprint`]
    /// (crate::Scenario::fingerprint) it identifies a compiled world
    /// including its injected incidents.
    pub fn fingerprint(&self) -> u64 {
        use crate::scenario::Fnv64;
        let mut h = Fnv64::new();
        let window = |h: &mut Fnv64, w: &Window| {
            h.write_u64(u64::from(w.start));
            h.write_u64(u64::from(w.end));
        };
        h.write_usize(self.sensing.len());
        for f in &self.sensing {
            window(&mut h, &f.window);
            match f.links {
                LinkSel::All => h.write_u64(u64::MAX),
                LinkSel::One(l) => h.write_usize(l.index()),
            }
            match f.kind {
                SensingKind::Dropout { p } => {
                    h.write_u64(0);
                    h.write_f64(p);
                }
                SensingKind::StuckAtLast => h.write_u64(1),
                SensingKind::Noise { sigma } => {
                    h.write_u64(2);
                    h.write_f64(sigma);
                }
                SensingKind::Bias { delta } => {
                    h.write_u64(3);
                    h.write_f64(delta);
                }
            }
        }
        h.write_usize(self.actuation.len());
        for f in &self.actuation {
            window(&mut h, &f.window);
            match f.nodes {
                NodeSel::All => h.write_u64(u64::MAX),
                NodeSel::One(n) => h.write_usize(n.index()),
            }
            match f.kind {
                ActuationKind::CommandLoss { p } => {
                    h.write_u64(0);
                    h.write_f64(p);
                }
                ActuationKind::StuckPhase => h.write_u64(1),
                ActuationKind::AllRed => h.write_u64(2),
            }
        }
        h.write_usize(self.comms.len());
        for f in &self.comms {
            window(&mut h, &f.window);
            match f.receivers {
                AgentSel::All => h.write_u64(u64::MAX),
                AgentSel::One(a) => h.write_usize(a),
            }
            match f.kind {
                CommsKind::Drop { p } => {
                    h.write_u64(0);
                    h.write_f64(p);
                }
                CommsKind::Delay { steps } => {
                    h.write_u64(1);
                    h.write_u64(u64::from(steps));
                }
                CommsKind::Corrupt { amp } => {
                    h.write_u64(2);
                    h.write_f64(amp);
                }
            }
        }
        h.finish()
    }
}

/// Per-fault seed salt: decorrelates the streams of distinct faults in
/// the same plan while staying fully deterministic.
pub fn fault_salt(seed: u64, fault_idx: usize) -> u64 {
    seed ^ 0x94D0_49BB_1331_11EBu64.wrapping_mul(fault_idx as u64 + 1)
}

/// Deterministic per-`(time, entity)` uniform sample in `[0, 1)`
/// (splitmix64 hash) — the same family the detector-degradation path
/// uses. Consumes no RNG state.
pub fn chaos_uniform(seed: u64, time: u32, entity: usize) -> f64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(time) + 1))
        .wrapping_add((entity as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic per-`(time, entity)` standard Gaussian (Box–Muller
/// over two [`chaos_uniform`] streams).
pub fn chaos_gaussian(seed: u64, time: u32, entity: usize) -> f64 {
    let u1 = chaos_uniform(seed, time, entity).max(1e-12);
    let u2 = chaos_uniform(seed ^ 0xA5A5_A5A5_A5A5_A5A5, time, entity);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_half_open() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(Window::always().contains(u32::MAX - 1));
    }

    #[test]
    fn selectors_match() {
        assert!(LinkSel::All.matches(LinkId(3)));
        assert!(LinkSel::One(LinkId(3)).matches(LinkId(3)));
        assert!(!LinkSel::One(LinkId(3)).matches(LinkId(4)));
        assert!(NodeSel::One(NodeId(1)).matches(NodeId(1)));
        assert!(AgentSel::All.matches(7));
        assert!(!AgentSel::One(0).matches(7));
    }

    #[test]
    fn builder_accumulates_and_empty_is_empty() {
        assert!(ChaosPlan::new().is_empty());
        let plan = ChaosPlan::new()
            .sensor_dropout(Window::always(), LinkSel::All, 0.5)
            .all_red(Window::new(0, 10), NodeSel::All)
            .message_drop(Window::always(), AgentSel::One(2), 1.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.sensing().len(), 1);
        assert_eq!(plan.actuation().len(), 1);
        assert_eq!(plan.comms().len(), 1);
    }

    #[test]
    fn chaos_uniform_is_deterministic_and_in_range() {
        for t in 0..200 {
            for e in 0..8 {
                let u = chaos_uniform(42, t, e);
                assert!((0.0..1.0).contains(&u));
                assert_eq!(u.to_bits(), chaos_uniform(42, t, e).to_bits());
            }
        }
        assert_ne!(
            chaos_uniform(1, 5, 0).to_bits(),
            chaos_uniform(2, 5, 0).to_bits()
        );
    }

    #[test]
    fn chaos_gaussian_is_roughly_centered() {
        let n = 4000;
        let mean: f64 = (0..n).map(|t| chaos_gaussian(9, t, 0)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn fault_salts_decorrelate_streams() {
        assert_ne!(fault_salt(7, 0), fault_salt(7, 1));
        assert_ne!(
            chaos_uniform(fault_salt(7, 0), 3, 1).to_bits(),
            chaos_uniform(fault_salt(7, 1), 3, 1).to_bits()
        );
    }
}
