//! The monotonic event queue at the heart of the discrete-event core.
//!
//! The event engine ([`crate::sim::Simulation`]'s default stepper, see
//! DESIGN.md §12) schedules *wake-ups* instead of polling every entity
//! every second: a freeflow vehicle is inert until its link's next
//! possible queue-join tick, a blocked lane is inert until the signal
//! or the downstream link changes. Time-based wake-ups live in this
//! queue; state-based wake-ups (signal changes, spillback clearing)
//! are delivered directly by the state transition that causes them.
//!
//! The queue is a binary min-heap keyed by `(time, key)`. The `key` is
//! a stable entity identifier (e.g. a link index), which makes the pop
//! order of same-tick events fully deterministic: two runs that
//! schedule the same multiset of events pop them in the same order,
//! independent of insertion order. This is load-bearing for the
//! bit-for-bit reproducibility contract of the simulator.
//!
//! Invariants (property-tested below):
//!
//! * popped times never decrease (monotonic progress);
//! * an event can never be scheduled in the past (`schedule` checks
//!   against the queue's current frontier);
//! * equal-time events pop in ascending `key` order regardless of the
//!   order they were scheduled in.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled wake-up: `time` is the simulation second the event is
/// due, `key` a stable tie-break identifier (entity index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Simulation second the event fires.
    pub time: u32,
    /// Stable tie-break identifier (orders same-tick events).
    pub key: u64,
}

/// A monotonic event queue: a binary min-heap over [`Event`]s with a
/// deterministic `(time, key)` pop order and a past-scheduling guard.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    /// Highest time handed out by [`pop_due`](Self::pop_due) so far —
    /// the monotonic frontier events may not be scheduled behind.
    frontier: u32,
}

impl EventQueue {
    /// An empty queue with its frontier at time 0.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time below which no event may be scheduled (the largest
    /// `now` ever passed to [`pop_due`](Self::pop_due)).
    pub fn frontier(&self) -> u32 {
        self.frontier
    }

    /// Schedules an event. Scheduling strictly in the past (before the
    /// pop frontier) is a logic error; it debug-panics and is clamped
    /// to the frontier in release builds so the event still fires.
    pub fn schedule(&mut self, time: u32, key: u64) {
        debug_assert!(
            time >= self.frontier,
            "event (t={time}, key={key}) scheduled behind frontier {}",
            self.frontier
        );
        let time = time.max(self.frontier);
        self.heap.push(Reverse(Event { time, key }));
    }

    /// The next pending event without removing it.
    pub fn peek(&self) -> Option<Event> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Pops the next event due at or before `now`, advancing the
    /// frontier to `now`. Returns `None` when nothing is due.
    pub fn pop_due(&mut self, now: u32) -> Option<Event> {
        self.frontier = self.frontier.max(now);
        match self.heap.peek() {
            Some(Reverse(e)) if e.time <= now => {
                let Reverse(e) = self.heap.pop().expect("peeked");
                Some(e)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 2);
        q.schedule(3, 9);
        q.schedule(5, 1);
        q.schedule(3, 0);
        let mut out = Vec::new();
        while let Some(e) = q.pop_due(u32::MAX) {
            out.push((e.time, e.key));
        }
        assert_eq!(out, vec![(3, 0), (3, 9), (5, 1), (5, 2)]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(4, 0);
        q.schedule(10, 0);
        assert_eq!(q.pop_due(4).map(|e| e.time), Some(4));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(10).map(|e| e.time), Some(10));
    }

    #[test]
    fn frontier_tracks_pops_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(7, 0);
        assert_eq!(q.pop_due(7).map(|e| e.time), Some(7));
        assert_eq!(q.frontier(), 7);
        // Release behavior: a past schedule is clamped, not lost.
        if cfg!(not(debug_assertions)) {
            q.schedule(3, 1);
            assert_eq!(q.peek().map(|e| e.time), Some(7));
        }
    }

    #[test]
    #[should_panic(expected = "behind frontier")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(5, 0);
        let _ = q.pop_due(5);
        q.schedule(4, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Popped times never decrease and same-time events pop in key
        /// order, for any interleaving of schedules and pops.
        #[test]
        fn pop_stream_is_monotone_and_tie_broken(
            ops in collection::vec(0u64..4000, 1..80),
        ) {
            let mut q = EventQueue::new();
            let mut now = 0u32;
            let mut last_time = 0u32;
            // Decode each op: low bits pick schedule-vs-pop, a time
            // offset in 0..50 and a key in 0..8.
            for op in ops {
                let do_pop = op % 2 == 1;
                let dt = ((op / 2) % 50) as u32;
                let key = (op / 100) % 8;
                if do_pop {
                    now = now.saturating_add(dt % 5);
                    // Key order is guaranteed among the events pending
                    // together in one drain burst; time monotonicity is
                    // global (the frontier forbids scheduling into the
                    // past).
                    let mut last: Option<Event> = None;
                    while let Some(e) = q.pop_due(now) {
                        prop_assert!(e.time <= now);
                        prop_assert!(last_time <= e.time, "time went backwards");
                        last_time = e.time;
                        if let Some(prev) = last {
                            prop_assert!(
                                (prev.time, prev.key) <= (e.time, e.key),
                                "pop order violated within a burst"
                            );
                        }
                        last = Some(e);
                    }
                } else {
                    // Never schedule behind the frontier.
                    q.schedule(now.saturating_add(dt), key);
                }
            }
        }

        /// Pop order is independent of insertion order: any permutation
        /// of the same events drains identically.
        #[test]
        fn drain_order_is_insertion_invariant(
            raw in collection::vec(0u64..20_000, 1..40),
        ) {
            let mut events: Vec<(u32, u64)> =
                raw.iter().map(|&x| ((x % 20) as u32, x / 20)).collect();
            let drain = |evs: &[(u32, u64)]| {
                let mut q = EventQueue::new();
                for &(t, k) in evs {
                    q.schedule(t, k);
                }
                let mut out = Vec::new();
                while let Some(e) = q.pop_due(u32::MAX) {
                    out.push((e.time, e.key));
                }
                out
            };
            let a = drain(&events);
            events.reverse();
            let b = drain(&events);
            prop_assert_eq!(a, b);
        }
    }
}
